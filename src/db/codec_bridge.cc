#include "db/codec_bridge.h"

#include <algorithm>

#include "base/macros.h"
#include "codec/adpcm.h"
#include "codec/tjpeg.h"
#include "codec/tmpeg.h"
#include "interp/capture.h"
#include "obs/trace.h"

namespace tbm {

namespace {

Result<ColorModel> ParseColorModel(const std::string& name) {
  if (name == "RGB") return ColorModel::kRgb24;
  if (name == "GRAY") return ColorModel::kGray8;
  if (name == "YUV 4:4:4") return ColorModel::kYuv444;
  if (name == "YUV 4:2:2") return ColorModel::kYuv422;
  if (name == "YUV 4:2:0") return ColorModel::kYuv420;
  if (name == "CMYK") return ColorModel::kCmyk32;
  return Status::InvalidArgument("unknown color model \"" + name + "\"");
}

Result<MediaValue> DecodePcm(const TimedStream& stream) {
  TBM_ASSIGN_OR_RETURN(int64_t rate,
                       stream.descriptor().attrs.GetInt("sample rate"));
  TBM_ASSIGN_OR_RETURN(
      int64_t channels,
      stream.descriptor().attrs.GetInt("number of channels"));
  Bytes bytes;
  for (const StreamElement& element : stream) {
    bytes.insert(bytes.end(), element.data.begin(), element.data.end());
  }
  TBM_ASSIGN_OR_RETURN(
      AudioBuffer audio,
      AudioBuffer::FromBytes(bytes, rate, static_cast<int32_t>(channels)));
  return MediaValue(std::move(audio));
}

Result<MediaValue> DecodeAdpcm(const TimedStream& stream) {
  TBM_ASSIGN_OR_RETURN(int64_t rate,
                       stream.descriptor().attrs.GetInt("sample rate"));
  TBM_ASSIGN_OR_RETURN(
      int64_t channels,
      stream.descriptor().attrs.GetInt("number of channels"));
  std::vector<AdpcmBlock> blocks;
  for (const StreamElement& element : stream) {
    AdpcmBlock block;
    block.data = element.data;
    block.frames = element.duration;
    for (int32_t c = 0; c < channels; ++c) {
      std::string suffix = c == 0 ? "" : std::to_string(c);
      TBM_ASSIGN_OR_RETURN(int64_t predictor,
                           element.descriptor.GetInt("predictor" + suffix));
      TBM_ASSIGN_OR_RETURN(int64_t step,
                           element.descriptor.GetInt("step index" + suffix));
      block.predictor.push_back(static_cast<int16_t>(predictor));
      block.step_index.push_back(static_cast<uint8_t>(step));
    }
    blocks.push_back(std::move(block));
  }
  TBM_ASSIGN_OR_RETURN(
      AudioBuffer audio,
      AdpcmDecode(blocks, rate, static_cast<int32_t>(channels)));
  return MediaValue(std::move(audio));
}

// Elements arrive in presentation order; decoding needs reference
// frames first, i.e. storage order. Sort: keys and deltas by
// presentation, bidirectional frames after their references.
void SortTmpegForDecode(std::vector<TmpegFrame>* frames) {
  std::stable_sort(frames->begin(), frames->end(),
                   [](const TmpegFrame& a, const TmpegFrame& b) {
                     auto order_key = [](const TmpegFrame& f) {
                       return f.kind == FrameKind::kBidirectional
                                  ? f.ref_after
                                  : f.presentation_index;
                     };
                     if (order_key(a) != order_key(b)) {
                       return order_key(a) < order_key(b);
                     }
                     return (a.kind != FrameKind::kBidirectional) &&
                            (b.kind == FrameKind::kBidirectional);
                   });
}

Result<MediaValue> DecodeVideo(const TimedStream& stream,
                               const std::string& type) {
  TBM_ASSIGN_OR_RETURN(Rational rate,
                       stream.descriptor().attrs.GetRational("frame rate"));
  VideoValue video;
  video.frame_rate = rate;
  if (type == "video/raw") {
    TBM_ASSIGN_OR_RETURN(int64_t width,
                         stream.descriptor().attrs.GetInt("frame width"));
    TBM_ASSIGN_OR_RETURN(int64_t height,
                         stream.descriptor().attrs.GetInt("frame height"));
    for (const StreamElement& element : stream) {
      Image frame;
      frame.width = static_cast<int32_t>(width);
      frame.height = static_cast<int32_t>(height);
      frame.model = ColorModel::kRgb24;
      frame.data = element.data;
      TBM_RETURN_IF_ERROR(frame.Validate());
      video.frames.push_back(std::move(frame));
    }
  } else if (type == "video/tjpeg") {
    for (const StreamElement& element : stream) {
      TBM_ASSIGN_OR_RETURN(Image frame, TjpegDecode(element.data));
      video.frames.push_back(std::move(frame));
    }
  } else if (type == "video/tmpeg") {
    std::vector<TmpegFrame> frames;
    for (const StreamElement& element : stream) {
      TBM_ASSIGN_OR_RETURN(TmpegFrame frame, TmpegParseFrame(element.data));
      frames.push_back(std::move(frame));
    }
    SortTmpegForDecode(&frames);
    TBM_ASSIGN_OR_RETURN(video.frames, TmpegDecodeSequence(frames));
  } else {
    return Status::Unsupported("unknown video type " + type);
  }
  return MediaValue(std::move(video));
}

Result<MediaValue> DecodeImage(const TimedStream& stream,
                               const std::string& type) {
  if (stream.size() != 1) {
    return Status::InvalidArgument("image stream must hold one element");
  }
  if (type == "image/tjpeg") {
    TBM_ASSIGN_OR_RETURN(Image image, TjpegDecode(stream.at(0).data));
    return MediaValue(std::move(image));
  }
  TBM_ASSIGN_OR_RETURN(int64_t width, stream.descriptor().attrs.GetInt("width"));
  TBM_ASSIGN_OR_RETURN(int64_t height,
                       stream.descriptor().attrs.GetInt("height"));
  TBM_ASSIGN_OR_RETURN(std::string model_name,
                       stream.descriptor().attrs.GetString("color model"));
  TBM_ASSIGN_OR_RETURN(ColorModel model, ParseColorModel(model_name));
  Image image;
  image.width = static_cast<int32_t>(width);
  image.height = static_cast<int32_t>(height);
  image.model = model;
  image.data = stream.at(0).data;
  TBM_RETURN_IF_ERROR(image.Validate());
  return MediaValue(std::move(image));
}

}  // namespace

Result<MediaValue> DecodeStream(const TimedStream& stream) {
  obs::ScopedSpan span("codec.decode_stream");
  const std::string& type = stream.descriptor().type_name;
  if (type == "audio/pcm" || type == "audio/pcm-block") {
    return DecodePcm(stream);
  }
  if (type == "audio/adpcm") return DecodeAdpcm(stream);
  if (type == "video/raw" || type == "video/tjpeg" || type == "video/tmpeg") {
    return DecodeVideo(stream, type);
  }
  if (type == "image/raw" || type == "image/tjpeg") {
    return DecodeImage(stream, type);
  }
  if (type == "music/midi") {
    TBM_ASSIGN_OR_RETURN(MidiSequence midi,
                         MidiSequence::FromEventStream(stream));
    return MediaValue(std::move(midi));
  }
  if (type == "animation/scene") {
    TBM_ASSIGN_OR_RETURN(AnimationScene scene,
                         AnimationScene::FromSceneStream(stream));
    return MediaValue(std::move(scene));
  }
  if (type == "text/captions" || type == "text/plain") {
    // Timed text needs no decoding: the stream is its working form.
    return MediaValue(stream);
  }
  return Status::Unsupported("no decoder for media type \"" + type + "\"");
}

namespace {

Result<MediaValue> DecodePcmStreamed(ElementStream* stream) {
  TBM_ASSIGN_OR_RETURN(int64_t rate,
                       stream->descriptor().attrs.GetInt("sample rate"));
  TBM_ASSIGN_OR_RETURN(
      int64_t channels,
      stream->descriptor().attrs.GetInt("number of channels"));
  Bytes bytes;
  while (!stream->Done()) {
    TBM_ASSIGN_OR_RETURN(StreamElement element, stream->Next());
    bytes.insert(bytes.end(), element.data.begin(), element.data.end());
  }
  TBM_ASSIGN_OR_RETURN(
      AudioBuffer audio,
      AudioBuffer::FromBytes(bytes, rate, static_cast<int32_t>(channels)));
  return MediaValue(std::move(audio));
}

Result<MediaValue> DecodeAdpcmStreamed(ElementStream* stream) {
  TBM_ASSIGN_OR_RETURN(int64_t rate,
                       stream->descriptor().attrs.GetInt("sample rate"));
  TBM_ASSIGN_OR_RETURN(
      int64_t channels,
      stream->descriptor().attrs.GetInt("number of channels"));
  std::vector<AdpcmBlock> blocks;
  while (!stream->Done()) {
    TBM_ASSIGN_OR_RETURN(StreamElement element, stream->Next());
    AdpcmBlock block;
    block.data = std::move(element.data);
    block.frames = element.duration;
    for (int32_t c = 0; c < channels; ++c) {
      std::string suffix = c == 0 ? "" : std::to_string(c);
      TBM_ASSIGN_OR_RETURN(int64_t predictor,
                           element.descriptor.GetInt("predictor" + suffix));
      TBM_ASSIGN_OR_RETURN(int64_t step,
                           element.descriptor.GetInt("step index" + suffix));
      block.predictor.push_back(static_cast<int16_t>(predictor));
      block.step_index.push_back(static_cast<uint8_t>(step));
    }
    blocks.push_back(std::move(block));
  }
  TBM_ASSIGN_OR_RETURN(
      AudioBuffer audio,
      AdpcmDecode(blocks, rate, static_cast<int32_t>(channels)));
  return MediaValue(std::move(audio));
}

Result<MediaValue> DecodeVideoStreamed(ElementStream* stream,
                                       const std::string& type) {
  TBM_ASSIGN_OR_RETURN(Rational rate,
                       stream->descriptor().attrs.GetRational("frame rate"));
  VideoValue video;
  video.frame_rate = rate;
  if (type == "video/raw") {
    TBM_ASSIGN_OR_RETURN(int64_t width,
                         stream->descriptor().attrs.GetInt("frame width"));
    TBM_ASSIGN_OR_RETURN(int64_t height,
                         stream->descriptor().attrs.GetInt("frame height"));
    while (!stream->Done()) {
      TBM_ASSIGN_OR_RETURN(StreamElement element, stream->Next());
      Image frame;
      frame.width = static_cast<int32_t>(width);
      frame.height = static_cast<int32_t>(height);
      frame.model = ColorModel::kRgb24;
      frame.data = std::move(element.data);
      TBM_RETURN_IF_ERROR(frame.Validate());
      video.frames.push_back(std::move(frame));
    }
  } else if (type == "video/tjpeg") {
    // Each frame decodes as soon as its bytes arrive — the decode of
    // frame i overlaps the prefetch of frames i+1..i+depth.
    while (!stream->Done()) {
      TBM_ASSIGN_OR_RETURN(StreamElement element, stream->Next());
      TBM_ASSIGN_OR_RETURN(Image frame, TjpegDecode(element.data));
      video.frames.push_back(std::move(frame));
    }
  } else if (type == "video/tmpeg") {
    // Interframe coding needs references before dependents, so only
    // the parse is incremental; the sequence decode runs at the end.
    std::vector<TmpegFrame> frames;
    while (!stream->Done()) {
      TBM_ASSIGN_OR_RETURN(StreamElement element, stream->Next());
      TBM_ASSIGN_OR_RETURN(TmpegFrame frame, TmpegParseFrame(element.data));
      frames.push_back(std::move(frame));
    }
    SortTmpegForDecode(&frames);
    TBM_ASSIGN_OR_RETURN(video.frames, TmpegDecodeSequence(frames));
  } else {
    return Status::Unsupported("unknown video type " + type);
  }
  return MediaValue(std::move(video));
}

}  // namespace

Result<MediaValue> DecodeStreamed(const BlobStore& store,
                                  const Interpretation& interpretation,
                                  const std::string& name,
                                  const StreamReadOptions& options,
                                  ElementStreamStats* stats) {
  obs::ScopedSpan span("codec.decode_streamed");
  TBM_ASSIGN_OR_RETURN(
      std::unique_ptr<ElementStream> stream,
      ElementStream::Open(store, interpretation, name, options));

  const std::string type = stream->descriptor().type_name;
  Result<MediaValue> value = [&]() -> Result<MediaValue> {
    if (type == "audio/pcm" || type == "audio/pcm-block") {
      return DecodePcmStreamed(stream.get());
    }
    if (type == "audio/adpcm") return DecodeAdpcmStreamed(stream.get());
    if (type == "video/raw" || type == "video/tjpeg" ||
        type == "video/tmpeg") {
      return DecodeVideoStreamed(stream.get(), type);
    }
    // Whole-stream decoders (images, MIDI, scenes, timed text) still
    // benefit from the chunked, prefetched read path.
    TimedStream assembled(stream->descriptor(), stream->time_system());
    while (!stream->Done()) {
      TBM_ASSIGN_OR_RETURN(StreamElement element, stream->Next());
      TBM_RETURN_IF_ERROR(assembled.Append(std::move(element)));
    }
    return DecodeStream(assembled);
  }();
  if (stats != nullptr) *stats = stream->stats();
  return value;
}

namespace {

constexpr int64_t kPcmFramesPerElement = 4096;

Result<Interpretation> StoreAudio(BlobStore* store, const AudioBuffer& audio,
                                  const std::string& name,
                                  const StoreOptions& options) {
  TBM_RETURN_IF_ERROR(audio.Validate());
  TBM_ASSIGN_OR_RETURN(CaptureSession session, CaptureSession::Begin(store));
  MediaDescriptor desc;
  desc.type_name = "audio/pcm-block";
  desc.kind = MediaKind::kAudio;
  desc.attrs.SetInt("sample rate", audio.sample_rate);
  desc.attrs.SetInt("sample size", 16);
  desc.attrs.SetInt("number of channels", audio.channels);
  desc.attrs.SetString("encoding", "PCM");
  if (!options.quality_factor.empty()) {
    desc.attrs.SetString("quality factor", options.quality_factor);
  }
  TBM_ASSIGN_OR_RETURN(size_t handle,
                       session.DeclareObject(name, desc,
                                             TimeSystem(audio.sample_rate)));
  const int64_t total = audio.FrameCount();
  for (int64_t f = 0; f < total; f += kPcmFramesPerElement) {
    int64_t frames = std::min(kPcmFramesPerElement, total - f);
    Bytes bytes(static_cast<size_t>(frames) * audio.channels * 2);
    for (size_t i = 0; i < bytes.size(); i += 2) {
      uint16_t u = static_cast<uint16_t>(
          audio.samples[f * audio.channels + i / 2]);
      bytes[i] = static_cast<uint8_t>(u);
      bytes[i + 1] = static_cast<uint8_t>(u >> 8);
    }
    TBM_RETURN_IF_ERROR(session.CaptureContiguous(handle, bytes, frames));
  }
  return session.Finish();
}

Result<Interpretation> StoreVideo(BlobStore* store, const VideoValue& video,
                                  const std::string& name,
                                  const StoreOptions& options) {
  TBM_RETURN_IF_ERROR(video.Validate());
  if (video.frames.empty()) {
    return Status::InvalidArgument("cannot store an empty video");
  }
  const Image& first = video.frames.front();

  MediaDescriptor desc;
  desc.kind = MediaKind::kVideo;
  desc.attrs.SetRational("frame rate", video.frame_rate);
  desc.attrs.SetInt("frame width", first.width);
  desc.attrs.SetInt("frame height", first.height);
  desc.attrs.SetInt("frame depth", 24);
  desc.attrs.SetString("color model", "RGB");
  if (!options.quality_factor.empty()) {
    desc.attrs.SetString("quality factor", options.quality_factor);
  }

  if (options.video_codec == "tmpeg") {
    desc.type_name = "video/tmpeg";
    desc.attrs.SetString("encoding", "YUV 4:2:0, TMPEG");
    desc.attrs.SetInt("key interval", options.key_interval);
    desc.attrs.SetInt("codec quality", options.video_quality);
    TmpegConfig config;
    config.quality = options.video_quality;
    config.key_interval = options.key_interval;
    config.bidirectional = options.bidirectional;
    config.motion_compensation = options.motion_compensation;
    TBM_ASSIGN_OR_RETURN(std::vector<TmpegFrame> encoded,
                         TmpegEncodeSequence(video.frames, config));
    // Append in STORAGE order (keys before the intermediates that need
    // them — the paper's out-of-order placement), but expose elements
    // in presentation order in the interpretation table.
    TBM_ASSIGN_OR_RETURN(std::unique_ptr<PushHandle> push, store->StartPush());
    uint64_t offset = 0;
    std::vector<ElementPlacement> by_presentation(encoded.size());
    for (const TmpegFrame& frame : encoded) {
      TBM_RETURN_IF_ERROR(push->Push(frame.data));
      ElementPlacement placement;
      placement.element_number = frame.presentation_index;
      placement.start = frame.presentation_index;
      placement.duration = 1;
      placement.placement = ByteRange{offset, frame.data.size()};
      placement.descriptor.SetString(
          "frame kind", std::string(FrameKindToString(frame.kind)));
      by_presentation[frame.presentation_index] = std::move(placement);
      offset += frame.data.size();
    }
    InterpretedObject object;
    object.name = name;
    object.descriptor = desc;
    object.time_system = TimeSystem(video.frame_rate);
    object.elements = std::move(by_presentation);
    TBM_ASSIGN_OR_RETURN(BlobId blob, push->Finish());
    Interpretation interp(blob);
    TBM_RETURN_IF_ERROR(interp.AddObject(std::move(object)));
    return interp;
  }

  TBM_ASSIGN_OR_RETURN(CaptureSession session, CaptureSession::Begin(store));
  size_t handle = 0;
  if (options.video_codec == "tjpeg") {
    desc.type_name = "video/tjpeg";
    desc.attrs.SetString("encoding", "YUV 4:2:0, TJPEG");
    desc.attrs.SetInt("codec quality", options.video_quality);
    TBM_ASSIGN_OR_RETURN(handle,
                         session.DeclareObject(name, desc,
                                               TimeSystem(video.frame_rate)));
    for (const Image& frame : video.frames) {
      TBM_ASSIGN_OR_RETURN(Bytes encoded,
                           TjpegEncode(frame, options.video_quality));
      TBM_RETURN_IF_ERROR(session.CaptureContiguous(handle, encoded, 1));
    }
  } else if (options.video_codec == "raw") {
    desc.type_name = "video/raw";
    TBM_ASSIGN_OR_RETURN(handle,
                         session.DeclareObject(name, desc,
                                               TimeSystem(video.frame_rate)));
    for (const Image& frame : video.frames) {
      if (frame.model != ColorModel::kRgb24) {
        return Status::InvalidArgument("raw video storage expects RGB");
      }
      TBM_RETURN_IF_ERROR(session.CaptureContiguous(handle, frame.data, 1));
    }
  } else {
    return Status::InvalidArgument("unknown video codec \"" +
                                   options.video_codec + "\"");
  }
  return session.Finish();
}

Result<Interpretation> StoreImage(BlobStore* store, const Image& image,
                                  const std::string& name,
                                  const StoreOptions& options) {
  TBM_RETURN_IF_ERROR(image.Validate());
  TBM_ASSIGN_OR_RETURN(CaptureSession session, CaptureSession::Begin(store));
  MediaDescriptor desc;
  desc.kind = MediaKind::kImage;
  desc.attrs.SetInt("width", image.width);
  desc.attrs.SetInt("height", image.height);
  desc.attrs.SetInt("depth", BitsPerPixel(image.model));
  desc.attrs.SetString("color model",
                       std::string(ColorModelToString(image.model)));
  if (options.video_codec == "tjpeg" &&
      (image.model == ColorModel::kRgb24 ||
       image.model == ColorModel::kGray8)) {
    desc.type_name = "image/tjpeg";
    desc.attrs.SetString("encoding", "TJPEG");
    desc.attrs.SetInt("codec quality", options.video_quality);
    TBM_ASSIGN_OR_RETURN(size_t handle,
                         session.DeclareObject(name, desc, TimeSystem(1)));
    TBM_ASSIGN_OR_RETURN(Bytes encoded,
                         TjpegEncode(image, options.video_quality));
    TBM_RETURN_IF_ERROR(session.CaptureContiguous(handle, encoded, 0));
  } else {
    desc.type_name = "image/raw";
    TBM_ASSIGN_OR_RETURN(size_t handle,
                         session.DeclareObject(name, desc, TimeSystem(1)));
    TBM_RETURN_IF_ERROR(session.CaptureContiguous(handle, image.data, 0));
  }
  return session.Finish();
}

Result<Interpretation> StoreStreamVerbatim(BlobStore* store,
                                           const TimedStream& stream,
                                           const std::string& name) {
  TBM_ASSIGN_OR_RETURN(CaptureSession session, CaptureSession::Begin(store));
  TBM_ASSIGN_OR_RETURN(size_t handle,
                       session.DeclareObject(name, stream.descriptor(),
                                             stream.time_system()));
  for (const StreamElement& element : stream) {
    TBM_RETURN_IF_ERROR(session.CaptureElement(handle, element.data,
                                               element.start, element.duration,
                                               element.descriptor));
  }
  return session.Finish();
}

}  // namespace

Result<Interpretation> StoreValue(BlobStore* store, const MediaValue& value,
                                  const std::string& name,
                                  const StoreOptions& options) {
  obs::ScopedSpan span("codec.store_value");
  struct Visitor {
    BlobStore* store;
    const std::string& name;
    const StoreOptions& options;

    Result<Interpretation> operator()(const AudioBuffer& audio) {
      return StoreAudio(store, audio, name, options);
    }
    Result<Interpretation> operator()(const VideoValue& video) {
      return StoreVideo(store, video, name, options);
    }
    Result<Interpretation> operator()(const Image& image) {
      return StoreImage(store, image, name, options);
    }
    Result<Interpretation> operator()(const MidiSequence& midi) {
      auto stream = midi.ToEventStream();
      if (!stream.ok()) return stream.status();
      return StoreStreamVerbatim(store, *stream, name);
    }
    Result<Interpretation> operator()(const AnimationScene& scene) {
      auto stream = scene.ToSceneStream();
      if (!stream.ok()) return stream.status();
      return StoreStreamVerbatim(store, *stream, name);
    }
    Result<Interpretation> operator()(const TimedStream& stream) {
      return StoreStreamVerbatim(store, stream, name);
    }
  };
  return std::visit(Visitor{store, name, options}, value);
}

}  // namespace tbm

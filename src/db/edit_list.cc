#include "db/edit_list.h"

#include "base/macros.h"
#include "db/database.h"

namespace tbm {

Status EditList::AddSelection(ObjectId source, int64_t in_frame,
                              int64_t out_frame, Join join,
                              int64_t transition_frames) {
  if (in_frame < 0 || out_frame <= in_frame) {
    return Status::InvalidArgument(
        "selection [" + std::to_string(in_frame) + ", " +
        std::to_string(out_frame) + ") must be non-empty and non-negative");
  }
  if (join != Join::kCut && transition_frames <= 0) {
    return Status::InvalidArgument(
        "a transition join needs positive transition_frames");
  }
  if (join != Join::kCut && entries_.empty()) {
    return Status::InvalidArgument(
        "the first selection cannot carry a transition");
  }
  if (join != Join::kCut) {
    // The transition consumes frames from both neighbours.
    if (out_frame - in_frame < transition_frames) {
      return Status::InvalidArgument("selection shorter than its transition");
    }
    const Entry& prev = entries_.back();
    if (prev.out_frame - prev.in_frame < transition_frames) {
      return Status::InvalidArgument(
          "previous selection shorter than the transition");
    }
  }
  entries_.push_back(
      Entry{source, in_frame, out_frame, join, transition_frames});
  return Status::OK();
}

Status EditList::AddSelectionTimecode(ObjectId source,
                                      const std::string& in_tc,
                                      const std::string& out_tc,
                                      int nominal_fps, Join join,
                                      int64_t transition_frames) {
  TBM_ASSIGN_OR_RETURN(Timecode in_code, ParseTimecode(in_tc, nominal_fps));
  TBM_ASSIGN_OR_RETURN(Timecode out_code, ParseTimecode(out_tc, nominal_fps));
  TBM_ASSIGN_OR_RETURN(int64_t in_frame, TimecodeToFrame(in_code));
  TBM_ASSIGN_OR_RETURN(int64_t out_frame, TimecodeToFrame(out_code));
  return AddSelection(source, in_frame, out_frame, join, transition_frames);
}

int64_t EditList::OutputFrames() const {
  int64_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.out_frame - entry.in_frame;
    if (entry.join != Join::kCut) total -= entry.transition_frames;
  }
  return total;
}

Result<ObjectId> EditList::Compile(MediaDatabase* db,
                                   const std::string& name) const {
  if (entries_.empty()) {
    return Status::FailedPrecondition("cannot compile an empty edit list");
  }
  ObjectId current = kInvalidObjectId;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    AttrMap cut_params;
    cut_params.SetInt("start frame", entry.in_frame);
    cut_params.SetInt("frame count", entry.out_frame - entry.in_frame);
    TBM_ASSIGN_OR_RETURN(
        ObjectId selection,
        db->AddDerivedObject(name + "_sel" + std::to_string(i), "video edit",
                             {entry.source}, cut_params));
    if (current == kInvalidObjectId) {
      current = selection;
      continue;
    }
    std::string join_name = name + "_join" + std::to_string(i);
    if (entry.join == Join::kCut) {
      TBM_ASSIGN_OR_RETURN(
          current, db->AddDerivedObject(join_name, "video concat",
                                        {current, selection}, AttrMap{}));
    } else {
      AttrMap transition_params;
      transition_params.SetString(
          "kind", entry.join == Join::kFade ? "fade" : "wipe");
      transition_params.SetInt("duration frames", entry.transition_frames);
      TBM_ASSIGN_OR_RETURN(
          current,
          db->AddDerivedObject(join_name, "video transition",
                               {current, selection}, transition_params));
    }
  }
  // Alias the chain head under the requested name via an identity edit.
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* head, db->Get(current));
  (void)head;
  AttrMap identity;
  identity.SetInt("start frame", 0);
  identity.SetInt("frame count", OutputFrames());
  return db->AddDerivedObject(name, "video edit", {current}, identity);
}

}  // namespace tbm

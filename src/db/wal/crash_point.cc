#include "db/wal/crash_point.h"

namespace tbm::wal {

void CrashSchedule::ArmAtHit(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_hit_ = n;
}

void CrashSchedule::ArmAtPoint(std::string point, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_point_ = std::move(point);
  armed_point_nth_ = nth == 0 ? 1 : nth;
  point_hits_ = 0;
}

bool CrashSchedule::ShouldCrash(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return true;  // Stay down once killed.
  ++hits_;
  trace_.emplace_back(point);
  if (armed_hit_ != 0 && hits_ == armed_hit_) {
    crashed_ = true;
    return true;
  }
  if (!armed_point_.empty() && armed_point_ == point) {
    if (++point_hits_ == armed_point_nth_) {
      crashed_ = true;
      return true;
    }
  }
  return false;
}

bool CrashSchedule::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t CrashSchedule::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::vector<std::string> CrashSchedule::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

void CrashSchedule::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  armed_hit_ = 0;
  armed_point_.clear();
  armed_point_nth_ = 0;
  point_hits_ = 0;
  crashed_ = false;
  trace_.clear();
}

}  // namespace tbm::wal

#include "db/wal/wal.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "base/crc32.h"
#include "base/io.h"
#include "base/macros.h"
#include "obs/metrics.h"

namespace tbm::wal {

namespace {

constexpr uint32_t kSegmentMagic = 0x5442'574Cu;  // "TBWL".
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 16;  // magic + version + start LSN.
constexpr size_t kRecordHeaderBytes = 16;   // len + crc + LSN.
/// Sanity bound on one record's payload — anything larger is treated
/// as corruption, not an allocation request.
constexpr uint64_t kMaxPayloadBytes = 1ull << 30;

struct WalMetrics {
  obs::Counter* records;
  obs::Counter* appended_bytes;
  obs::Counter* fsyncs;
  obs::Counter* checkpoints;
  obs::Counter* replayed;
  obs::Counter* discarded_bytes;
  obs::Histogram* fsync_us;
  obs::Histogram* group_records;
  obs::Histogram* checkpoint_us;
  obs::Histogram* recovery_us;

  static WalMetrics& Get() {
    static WalMetrics m = [] {
      auto& r = obs::Registry::Global();
      return WalMetrics{r.counter("wal.records"),
                        r.counter("wal.appended_bytes"),
                        r.counter("wal.fsyncs"),
                        r.counter("wal.checkpoints"),
                        r.counter("wal.replayed_records"),
                        r.counter("wal.discarded_bytes"),
                        r.histogram("wal.fsync_us"),
                        r.histogram("wal.group_records"),
                        r.histogram("wal.checkpoint_us"),
                        r.histogram("wal.recovery_us")};
    }();
    return m;
  }
};

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EncodeRecord(uint64_t lsn, ByteSpan payload, Bytes* out) {
  BinaryWriter header;
  header.WriteU32(static_cast<uint32_t>(payload.size()));
  // The checksum covers the LSN and the payload so a record can never
  // be replayed under the wrong sequence number.
  BinaryWriter checked;
  checked.WriteU64(lsn);
  checked.WriteRaw(payload);
  header.WriteU32(Crc32(checked.buffer()));
  out->insert(out->end(), header.buffer().begin(), header.buffer().end());
  out->insert(out->end(), checked.buffer().begin(), checked.buffer().end());
}

}  // namespace

std::string WalManager::SegmentPath(const std::string& dir,
                                    uint64_t start_lsn) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.tbm",
                static_cast<unsigned long long>(start_lsn));
  return dir + "/" + name;
}

WalManager::WalManager(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options), open_epoch_us_(NowMicros()) {
  flight_.set_label("wal " + dir_);
}

WalManager::~WalManager() = default;

Result<std::unique_ptr<WalManager>> WalManager::Open(const std::string& dir,
                                                     WalOptions options) {
  auto wal = std::unique_ptr<WalManager>(new WalManager(dir, options));
  auto super = LoadSuperblock(dir);
  if (super.ok()) {
    wal->has_superblock_ = true;
    wal->superblock_ = *super;
  } else if (!super.status().IsNotFound()) {
    return super.status();  // Corrupt or unreadable superblock is fatal.
  }
  TBM_RETURN_IF_ERROR(wal->ScanSegments());
  return wal;
}

Status WalManager::ScanSegments() {
  namespace fs = std::filesystem;
  // Collect wal-<16 hex>.tbm files, ordered by their start LSN.
  std::vector<Segment> found;
  std::vector<std::string> stale_ckpts;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      // Temp snapshot of a checkpoint that crashed before its rename;
      // never authoritative (the commit point is the superblock).
      stale_ckpts.push_back(entry.path().string());
      continue;
    }
    if (name.size() != 24 || name.rfind("wal-", 0) != 0 ||
        name.substr(20) != ".tbm") {
      continue;
    }
    uint64_t start = 0;
    bool hex = true;
    for (char c : name.substr(4, 16)) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else { hex = false; break; }
      start = (start << 4) | static_cast<uint64_t>(digit);
    }
    if (!hex) continue;
    found.push_back({start, entry.path().string(), 0});
  }
  for (const std::string& path : stale_ckpts) std::remove(path.c_str());
  std::sort(found.begin(), found.end(),
            [](const Segment& a, const Segment& b) {
              return a.start_lsn < b.start_lsn;
            });

  uint64_t expected_lsn = 0;  // 0 = accept the first segment's start.
  bool stop_all = false;
  for (Segment& segment : found) {
    if (stop_all) {
      // A sequence gap upstream means nothing later can be trusted;
      // drop the stranded segment so its name can never collide with a
      // future live segment.
      std::error_code size_ec;
      uint64_t size = fs::file_size(segment.path, size_ec);
      if (!size_ec) recovery_stats_.discarded_bytes += size;
      std::remove(segment.path.c_str());
      continue;
    }
    TBM_ASSIGN_OR_RETURN(Bytes bytes, ReadFileBytes(segment.path));
    segment.bytes = bytes.size();
    BinaryReader reader(bytes);
    if (bytes.size() < kSegmentHeaderBytes) {
      // Crash between segment creation and its header write: no record
      // ever made it in. Unlink so the name is free for reuse.
      recovery_stats_.discarded_bytes += bytes.size();
      recovery_stats_.torn_tail = true;
      std::remove(segment.path.c_str());
      continue;
    }
    TBM_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
    TBM_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
    TBM_ASSIGN_OR_RETURN(uint64_t start_lsn, reader.ReadU64());
    if (magic != kSegmentMagic || version == 0 ||
        version > kSegmentVersion || start_lsn != segment.start_lsn) {
      return Status::Corruption("bad WAL segment header: " + segment.path);
    }
    if (expected_lsn != 0 && start_lsn > expected_lsn) {
      // Gap in the sequence: a whole segment vanished. Records beyond
      // the gap cannot be applied without it.
      recovery_stats_.discarded_bytes +=
          bytes.size() - kSegmentHeaderBytes;
      recovery_stats_.torn_tail = true;
      stop_all = true;
      std::remove(segment.path.c_str());
      continue;
    }
    uint64_t lsn_cursor = start_lsn;
    size_t tear_at = bytes.size();  // First torn byte; == size when clean.
    while (!reader.AtEnd()) {
      size_t record_start = reader.position();
      if (reader.remaining() < kRecordHeaderBytes) {
        tear_at = record_start;
        break;
      }
      uint32_t len = *reader.ReadU32();
      uint32_t crc = *reader.ReadU32();
      uint64_t lsn = *reader.ReadU64();
      if (len > kMaxPayloadBytes || reader.remaining() < len ||
          lsn != lsn_cursor) {
        tear_at = record_start;
        break;
      }
      BinaryWriter checked;
      checked.WriteU64(lsn);
      checked.WriteRaw(ByteSpan(bytes.data() + reader.position(), len));
      if (Crc32(checked.buffer()) != crc) {
        tear_at = record_start;
        break;
      }
      WalRecord record;
      record.lsn = lsn;
      record.payload = *reader.ReadRaw(len);
      if (expected_lsn == 0 || lsn >= expected_lsn) {
        recovered_.push_back(std::move(record));
      }
      lsn_cursor = lsn + 1;
    }
    if (tear_at < bytes.size()) {
      // Physically discard the torn tail so the segment only ever
      // contains valid records and new appends cannot land after
      // garbage.
      recovery_stats_.discarded_bytes += bytes.size() - tear_at;
      recovery_stats_.torn_tail = true;
      TBM_RETURN_IF_ERROR(TruncateFile(segment.path, tear_at));
      segment.bytes = tear_at;
    }
    // max(): a segment that overlaps its predecessor but holds fewer
    // records must not move the cursor backwards — that would
    // misclassify the next legitimate segment as a sequence gap and
    // delete its valid records.
    expected_lsn = std::max(expected_lsn, lsn_cursor);
    segments_.push_back(segment);
  }

  uint64_t last = recovered_.empty() ? superblock_.checkpoint_lsn
                                     : recovered_.back().lsn;
  last = std::max(last, superblock_.checkpoint_lsn);
  next_lsn_ = last + 1;
  durable_lsn_ = last;
  // New records go to a fresh segment; torn bytes in old segments are
  // skipped by every future scan and reclaimed at the next checkpoint.
  live_start_lsn_ = next_lsn_;
  return Status::OK();
}

void WalManager::FinishRecovery(uint64_t snapshot_lsn, uint64_t replayed,
                                uint64_t skipped) {
  recovery_stats_.snapshot_lsn = snapshot_lsn;
  recovery_stats_.replayed = replayed;
  recovery_stats_.skipped = skipped;
  recovery_stats_.recovery_us =
      static_cast<uint64_t>(NowMicros() - open_epoch_us_);
  recovered_.clear();
  recovered_.shrink_to_fit();
  auto& m = WalMetrics::Get();
  m.replayed->Add(replayed);
  m.discarded_bytes->Add(recovery_stats_.discarded_bytes);
  m.recovery_us->Record(recovery_stats_.recovery_us);
  flight_.Record(obs::FlightEventType::kRecovery, "open", replayed,
                 recovery_stats_.discarded_bytes);
}

// ---------------------------------------------------------------------------
// Commit path

bool WalManager::CrashHereLocked(const char* point) {
  if (options_.crash != nullptr && options_.crash->ShouldCrash(point)) {
    FreezeLocked(point);
    return true;
  }
  return false;
}

void WalManager::FreezeLocked(const char* why) {
  frozen_ = true;
  sticky_ = Status::IOError(std::string("wal frozen (crashed at ") + why +
                            "); reopen the database to recover");
  pending_.clear();
  pending_records_ = 0;
  flight_.Record(obs::FlightEventType::kNote, "frozen");
  cv_.notify_all();
}

Result<uint64_t> WalManager::Append(ByteSpan payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_) return sticky_;
  uint64_t lsn = next_lsn_++;
  EncodeRecord(lsn, payload, &pending_);
  ++pending_records_;
  last_buffered_lsn_ = lsn;
  if (CrashHereLocked("wal.append")) return sticky_;
  return lsn;
}

Status WalManager::EnsureLiveSegmentLocked() {
  if (live_ != nullptr) return Status::OK();
  std::string path = SegmentPath(dir_, live_start_lsn_);
  TBM_ASSIGN_OR_RETURN(live_, AppendOnlyFile::Open(path));
  if (live_->size() == 0) {
    BinaryWriter header;
    header.WriteU32(kSegmentMagic);
    header.WriteU32(kSegmentVersion);
    header.WriteU64(live_start_lsn_);
    TBM_RETURN_IF_ERROR(live_->Append(header.buffer()));
  }
  // Recovery may have left a (truncated) segment with this exact start
  // LSN; continue it instead of tracking a duplicate.
  if (segments_.empty() || segments_.back().start_lsn != live_start_lsn_) {
    segments_.push_back({live_start_lsn_, path, live_->size()});
  } else {
    segments_.back().bytes = live_->size();
  }
  return Status::OK();
}

Status WalManager::WriteBatchLocked(std::unique_lock<std::mutex>& lk,
                                    Bytes batch, uint64_t batch_last_lsn,
                                    uint64_t batch_records) {
  sync_in_progress_ = true;
  Status status = EnsureLiveSegmentLocked();
  AppendOnlyFile* file = live_.get();
  bool teared = false;
  if (status.ok() && options_.crash != nullptr &&
      options_.crash->ShouldCrash("wal.sync_begin")) {
    // A kill mid-write: half the batch reaches the file, unsynced —
    // the torn-tail case recovery must stop cleanly at.
    ByteSpan half(batch.data(), batch.size() / 2);
    (void)file->Append(half);
    FreezeLocked("wal.sync_begin");
    teared = true;
    status = sticky_;
  }
  if (status.ok() && !teared) {
    lk.unlock();
    status = file->Append(batch);
    if (status.ok() && options_.sync == SyncMode::kSync) {
      auto& m = WalMetrics::Get();
      obs::ScopedTimerUs timer(m.fsync_us);
      status = file->Sync();
      m.fsyncs->Add();
    }
    lk.lock();
  }
  sync_in_progress_ = false;
  if (!frozen_ && status.ok()) {
    CrashHereLocked("wal.sync_end");  // Durable but unacknowledged.
  }
  if (frozen_) {
    status = sticky_;
  } else if (!status.ok()) {
    FreezeLocked("io error");
    sticky_ = status;  // Keep the real I/O error as the sticky status.
  } else {
    durable_lsn_ = std::max(durable_lsn_, batch_last_lsn);
    if (!segments_.empty()) segments_.back().bytes = file->size();
    auto& m = WalMetrics::Get();
    m.records->Add(batch_records);
    m.appended_bytes->Add(batch.size());
    m.group_records->Record(batch_records);
  }
  cv_.notify_all();
  return status;
}

Status WalManager::WaitDurable(uint64_t lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (durable_lsn_ >= lsn) return Status::OK();
    if (frozen_) return sticky_;
    if (!sync_in_progress_) break;
    cv_.wait(lk);
  }
  // Leader: take everything buffered so far under one fsync.
  Bytes batch = std::move(pending_);
  pending_ = Bytes();
  uint64_t batch_last = last_buffered_lsn_;
  uint64_t batch_records = pending_records_;
  pending_records_ = 0;
  TBM_RETURN_IF_ERROR(WriteBatchLocked(lk, std::move(batch), batch_last,
                                       batch_records));
  return durable_lsn_ >= lsn
             ? Status::OK()
             : Status::Internal("group commit lost lsn " +
                                std::to_string(lsn));
}

// ---------------------------------------------------------------------------
// Checkpoint protocol

Result<uint64_t> WalManager::RotateForCheckpoint() {
  std::unique_lock<std::mutex> lk(mu_);
  while (sync_in_progress_) cv_.wait(lk);
  if (frozen_) return sticky_;
  uint64_t checkpoint_lsn = next_lsn_ - 1;
  if (!pending_.empty()) {
    Bytes batch = std::move(pending_);
    pending_ = Bytes();
    uint64_t batch_records = pending_records_;
    pending_records_ = 0;
    TBM_RETURN_IF_ERROR(WriteBatchLocked(lk, std::move(batch),
                                         last_buffered_lsn_, batch_records));
  }
  live_.reset();  // Subsequent commits open a fresh segment.
  live_start_lsn_ = checkpoint_lsn + 1;
  if (CrashHereLocked("wal.rotate")) return sticky_;
  return checkpoint_lsn;
}

Status WalManager::InstallCheckpoint(const std::string& snapshot_path,
                                     ByteSpan snapshot,
                                     uint64_t checkpoint_lsn) {
  auto& m = WalMetrics::Get();
  obs::ScopedTimerUs timer(m.checkpoint_us);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (frozen_) return sticky_;
  }
  // 1. Snapshot to a temp sibling, fsynced. Truncate on open: a
  // checkpoint that crashed after writing this file leaves it behind,
  // and appending after those stale bytes would publish a
  // concatenation whose CRC never matches the superblock's.
  const std::string tmp = snapshot_path + ".ckpt";
  {
    TBM_ASSIGN_OR_RETURN(std::unique_ptr<AppendOnlyFile> file,
                         AppendOnlyFile::Open(tmp, /*truncate=*/true));
    TBM_RETURN_IF_ERROR(file->Append(snapshot));
    TBM_RETURN_IF_ERROR(file->Sync());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (CrashHereLocked("ckpt.temp_written")) return sticky_;
  }
  // 2. Atomic publish of the snapshot.
  if (std::rename(tmp.c_str(), snapshot_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename snapshot into place: " +
                           snapshot_path);
  }
  TBM_RETURN_IF_ERROR(FsyncDir(dir_));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (CrashHereLocked("ckpt.renamed")) return sticky_;
  }
  // 3. Superblock publish — the checkpoint's commit point.
  Superblock super;
  super.checkpoint_lsn = checkpoint_lsn;
  super.snapshot_crc = Crc32(snapshot);
  super.snapshot_bytes = snapshot.size();
  super.checkpoint_count = superblock_.checkpoint_count + 1;
  TBM_RETURN_IF_ERROR(StoreSuperblock(dir_, super));
  {
    std::lock_guard<std::mutex> lock(mu_);
    superblock_ = super;
    has_superblock_ = true;
    if (CrashHereLocked("ckpt.super_written")) return sticky_;
  }
  // 4. Truncate the log: every segment the snapshot superseded goes.
  // Partition entirely under mu_ — a concurrent committer can grow
  // segments_ (invalidating iterators) the moment the lock drops — and
  // only unlink the collected paths once it is released.
  uint64_t truncated = 0;
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Segment> keep;
    for (Segment& segment : segments_) {
      bool is_live = live_ != nullptr && segment.start_lsn == live_start_lsn_;
      if (!is_live && segment.start_lsn <= checkpoint_lsn) {
        truncated += segment.bytes;
        doomed.push_back(std::move(segment.path));
      } else {
        keep.push_back(std::move(segment));
      }
    }
    segments_ = std::move(keep);
  }
  for (const std::string& path : doomed) std::remove(path.c_str());
  TBM_RETURN_IF_ERROR(FsyncDir(dir_));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (CrashHereLocked("ckpt.done")) return sticky_;
  }
  m.checkpoints->Add();
  flight_.Record(obs::FlightEventType::kCheckpoint, "install",
                 checkpoint_lsn, truncated);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Introspection

WalStatus WalManager::GetStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStatus status;
  status.enabled = true;
  status.last_lsn = next_lsn_ - 1;
  status.durable_lsn = durable_lsn_;
  status.checkpoint_lsn = superblock_.checkpoint_lsn;
  status.checkpoint_count = superblock_.checkpoint_count;
  status.segments = segments_.size();
  for (const Segment& segment : segments_) status.wal_bytes += segment.bytes;
  return status;
}

uint64_t WalManager::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

uint64_t WalManager::bytes_since_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const Segment& segment : segments_) bytes += segment.bytes;
  return bytes;
}

bool WalManager::frozen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frozen_;
}

}  // namespace tbm::wal

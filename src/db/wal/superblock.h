#ifndef TBM_DB_WAL_SUPERBLOCK_H_
#define TBM_DB_WAL_SUPERBLOCK_H_

/// The durability superblock (`super.tbm`): a tiny, self-checksummed,
/// atomically-replaced file recording where the last checkpoint left
/// off. It is the commit point of a checkpoint — the snapshot rename
/// happens first, the superblock publish second, so on recovery the
/// superblock's LSN is always <= the snapshot's own applied LSN and
/// replay trusts the snapshot (see DESIGN.md §16 for the protocol).

#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/status.h"

namespace tbm::wal {

struct Superblock {
  /// Every catalog mutation with LSN <= checkpoint_lsn is contained in
  /// the snapshot this superblock points at; replay starts after it.
  uint64_t checkpoint_lsn = 0;

  /// CRC32 of the snapshot file as written by the checkpoint. Only
  /// binding when the snapshot's applied LSN equals checkpoint_lsn —
  /// a newer snapshot (crash between rename and superblock publish)
  /// legitimately differs.
  uint32_t snapshot_crc = 0;

  /// Size in bytes of that snapshot file (diagnostic, shown by
  /// `tbmctl db status`).
  uint64_t snapshot_bytes = 0;

  /// Monotonic count of checkpoints taken over this database's life.
  uint64_t checkpoint_count = 0;
};

/// Path of the superblock inside a database directory.
std::string SuperblockPath(const std::string& dir);

/// Atomically publishes `super` (temp + fsync + rename + dir fsync).
Status StoreSuperblock(const std::string& dir, const Superblock& super);

/// Loads and verifies the superblock. NotFound when the file does not
/// exist (fresh or pre-WAL database), Corruption when magic or
/// checksum fail.
Result<Superblock> LoadSuperblock(const std::string& dir);

}  // namespace tbm::wal

#endif  // TBM_DB_WAL_SUPERBLOCK_H_

#include "db/wal/superblock.h"

#include <filesystem>

#include "base/crc32.h"
#include "base/durable.h"
#include "base/io.h"
#include "base/macros.h"

namespace tbm::wal {

namespace {
constexpr uint32_t kSuperMagic = 0x5442'5342u;  // "TBSB".
constexpr uint32_t kSuperVersion = 1;
}  // namespace

std::string SuperblockPath(const std::string& dir) {
  return dir + "/super.tbm";
}

Status StoreSuperblock(const std::string& dir, const Superblock& super) {
  BinaryWriter body;
  body.WriteU64(super.checkpoint_lsn);
  body.WriteU32(super.snapshot_crc);
  body.WriteU64(super.snapshot_bytes);
  body.WriteU64(super.checkpoint_count);
  BinaryWriter file;
  file.WriteU32(kSuperMagic);
  file.WriteU32(kSuperVersion);
  file.WriteU32(Crc32(body.buffer()));
  file.WriteRaw(body.buffer());
  return AtomicWriteFile(SuperblockPath(dir), file.buffer());
}

Result<Superblock> LoadSuperblock(const std::string& dir) {
  std::string path = SuperblockPath(dir);
  if (!std::filesystem::exists(path)) {
    return Status::NotFound("no superblock: " + path);
  }
  TBM_ASSIGN_OR_RETURN(Bytes bytes, ReadFileBytes(path));
  BinaryReader header(bytes);
  TBM_ASSIGN_OR_RETURN(uint32_t magic, header.ReadU32());
  if (magic != kSuperMagic) {
    return Status::Corruption("not a superblock: " + path);
  }
  TBM_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
  if (version == 0 || version > kSuperVersion) {
    return Status::Unsupported("superblock version " +
                               std::to_string(version));
  }
  TBM_ASSIGN_OR_RETURN(uint32_t crc, header.ReadU32());
  ByteSpan body(bytes.data() + header.position(),
                bytes.size() - header.position());
  if (Crc32(body) != crc) {
    return Status::Corruption("superblock checksum mismatch: " + path);
  }
  BinaryReader reader(body);
  Superblock super;
  TBM_ASSIGN_OR_RETURN(super.checkpoint_lsn, reader.ReadU64());
  TBM_ASSIGN_OR_RETURN(super.snapshot_crc, reader.ReadU32());
  TBM_ASSIGN_OR_RETURN(super.snapshot_bytes, reader.ReadU64());
  TBM_ASSIGN_OR_RETURN(super.checkpoint_count, reader.ReadU64());
  return super;
}

}  // namespace tbm::wal

#ifndef TBM_DB_WAL_WAL_H_
#define TBM_DB_WAL_WAL_H_

/// The catalog's write-ahead log (DESIGN.md §16).
///
/// Every mutating MediaDatabase call appends one checksummed,
/// length-prefixed, monotonically-sequenced record here and waits for
/// it to be fsynced before acknowledging. Concurrent writers are
/// batched under a single fsync (group commit: the first waiter
/// becomes the leader, writes everything buffered, and wakes the
/// rest). A checkpoint serializes the whole catalog to a temp file,
/// fsyncs, atomically renames it over `catalog.tbm`, publishes the
/// checkpoint LSN in the superblock, and deletes the WAL segments the
/// snapshot made redundant. Recovery on open verifies the superblock
/// and snapshot, replays records past the snapshot's LSN, and stops
/// cleanly at a torn or corrupt tail.
///
/// On-disk layout inside a database directory:
///   super.tbm            superblock (checkpoint LSN, snapshot CRC)
///   catalog.tbm          snapshot (self-checksummed, carries its LSN)
///   wal-<16 hex>.tbm     log segments, named by their first LSN
///   LOCK                 flock'd single-writer guard
///
/// Segment format: header {u32 magic, u32 version, u64 start_lsn},
/// then records {u32 payload_len, u32 crc32(lsn || payload), u64 lsn,
/// payload}. The payload is opaque to this layer — the database
/// encodes its transaction ops into it.
///
/// Crash discipline: a WalManager that hits an I/O error or an armed
/// CrashPoint freezes — un-synced buffers are discarded and every
/// further operation fails with the sticky status, modeling a killed
/// process. The caller reopens the directory to recover.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "base/durable.h"
#include "base/result.h"
#include "base/status.h"
#include "db/wal/crash_point.h"
#include "db/wal/superblock.h"
#include "obs/flight.h"

namespace tbm::wal {

/// Durability of an acknowledged commit.
enum class SyncMode : uint8_t {
  kSync = 0,    ///< fsync before acknowledging (the default).
  kNoSync = 1,  ///< write() only — a crash may lose acked commits.
                ///< Bench knob for measuring the cost of the fsync.
};

struct WalOptions {
  SyncMode sync = SyncMode::kSync;

  /// When the live WAL grows past this many bytes, the database takes
  /// a checkpoint after the commit that crossed the line. 0 disables
  /// automatic checkpointing (manual Checkpoint()/Save() only).
  uint64_t checkpoint_threshold_bytes = 4ull << 20;

  /// Borrowed crash-point schedule for fault-injection tests; null in
  /// production. See db/wal/crash_point.h.
  CrashSchedule* crash = nullptr;
};

/// What recovery-on-open found and did.
struct RecoveryStats {
  uint64_t snapshot_lsn = 0;     ///< Applied LSN of the loaded snapshot.
  uint64_t replayed = 0;         ///< WAL records applied past the snapshot.
  uint64_t skipped = 0;          ///< Records at or below the snapshot LSN.
  uint64_t discarded_bytes = 0;  ///< Torn/corrupt tail bytes dropped.
  bool torn_tail = false;        ///< A torn or corrupt record ended the scan.
  uint64_t recovery_us = 0;      ///< Wall time of open-with-recovery.
};

/// Point-in-time durability status (tbmctl `db status`).
struct WalStatus {
  bool enabled = false;
  uint64_t last_lsn = 0;          ///< Last assigned sequence number.
  uint64_t durable_lsn = 0;       ///< Highest fsynced sequence number.
  uint64_t checkpoint_lsn = 0;    ///< Superblock's checkpoint LSN.
  uint64_t checkpoint_count = 0;  ///< Checkpoints over the db's life.
  uint64_t segments = 0;          ///< Live WAL segment files.
  uint64_t wal_bytes = 0;         ///< Bytes across those segments.
};

/// One recovered record, handed back to the database for replay.
struct WalRecord {
  uint64_t lsn = 0;
  Bytes payload;
};

class WalManager {
 public:
  /// Opens the durability state of a database directory: loads the
  /// superblock (if any), scans every WAL segment in LSN order
  /// verifying checksums and sequence continuity, stops cleanly at a
  /// torn tail, and positions the appender after the last valid
  /// record. The scanned records are available via
  /// `recovered_records()` until `FinishRecovery` is called.
  static Result<std::unique_ptr<WalManager>> Open(const std::string& dir,
                                                  WalOptions options);

  ~WalManager();
  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  // -------------------------------------------------------------------------
  // Recovery handshake (between Open and FinishRecovery)

  const std::vector<WalRecord>& recovered_records() const {
    return recovered_;
  }
  bool has_superblock() const { return has_superblock_; }
  const Superblock& superblock() const { return superblock_; }

  /// Ends recovery: records stats, drops the record buffer, and emits
  /// the flight-recorder event. `snapshot_lsn` is the applied LSN of
  /// the snapshot the caller loaded; replayed/skipped are the caller's
  /// replay counts.
  void FinishRecovery(uint64_t snapshot_lsn, uint64_t replayed,
                      uint64_t skipped);

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // -------------------------------------------------------------------------
  // Commit path

  /// Assigns the next LSN and buffers one record. Callers serialize
  /// Append with the same lock that orders their in-memory apply, so
  /// LSN order equals apply order. Durable only after WaitDurable.
  Result<uint64_t> Append(ByteSpan payload);

  /// Blocks until every record up to `lsn` is durable. Group commit:
  /// the first waiter writes and fsyncs everything buffered; later
  /// waiters ride along on that one fsync.
  Status WaitDurable(uint64_t lsn);

  // -------------------------------------------------------------------------
  // Checkpoint protocol (driven by the database; see DESIGN.md §16)

  /// Step 1, called under the caller's catalog lock: flushes and
  /// fsyncs everything buffered, closes the live segment, and opens a
  /// fresh one for subsequent commits. Returns the LSN the snapshot
  /// must cover (the last assigned).
  Result<uint64_t> RotateForCheckpoint();

  /// Step 2, called with no locks held: publishes `snapshot` at
  /// `snapshot_path` (temp + fsync + rename + dir fsync), publishes
  /// the superblock with `checkpoint_lsn`, then deletes the WAL
  /// segments the snapshot superseded.
  Status InstallCheckpoint(const std::string& snapshot_path,
                           ByteSpan snapshot, uint64_t checkpoint_lsn);

  // -------------------------------------------------------------------------
  // Introspection

  WalStatus GetStatus() const;
  uint64_t last_lsn() const;
  uint64_t bytes_since_checkpoint() const;
  const WalOptions& options() const { return options_; }

  /// True once the manager froze (I/O error or injected crash); every
  /// operation fails with the sticky status from then on.
  bool frozen() const;

  /// Segment path for a starting LSN (16 hex digits).
  static std::string SegmentPath(const std::string& dir, uint64_t start_lsn);

 private:
  WalManager(std::string dir, WalOptions options);

  Status ScanSegments();
  /// Becomes the writer: appends `batch` to the live segment (creating
  /// it when absent) and fsyncs per the sync mode. Called with mu_
  /// HELD; unlocks for the I/O and relocks before returning.
  Status WriteBatchLocked(std::unique_lock<std::mutex>& lk, Bytes batch,
                          uint64_t batch_last_lsn, uint64_t batch_records);
  Status EnsureLiveSegmentLocked();
  bool CrashHereLocked(const char* point);
  void FreezeLocked(const char* why);

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool frozen_ = false;
  Status sticky_;                ///< The error every op returns once frozen.
  Bytes pending_;                ///< Encoded records awaiting the next sync.
  uint64_t pending_records_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t last_buffered_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  bool sync_in_progress_ = false;

  struct Segment {
    uint64_t start_lsn = 0;
    std::string path;
    uint64_t bytes = 0;
  };
  std::vector<Segment> segments_;  ///< Sorted by start LSN; live at back.
  std::unique_ptr<AppendOnlyFile> live_;  ///< Null until first write.
  uint64_t live_start_lsn_ = 1;    ///< Start LSN of the (next) live segment.

  bool has_superblock_ = false;
  Superblock superblock_;

  std::vector<WalRecord> recovered_;
  RecoveryStats recovery_stats_;
  int64_t open_epoch_us_ = 0;

  obs::FlightRecorder flight_;
};

}  // namespace tbm::wal

#endif  // TBM_DB_WAL_WAL_H_

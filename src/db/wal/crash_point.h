#ifndef TBM_DB_WAL_CRASH_POINT_H_
#define TBM_DB_WAL_CRASH_POINT_H_

/// Crash-point fault injection for the durability subsystem.
///
/// The WAL and checkpoint writers call `ShouldCrash("point")` at every
/// durability boundary — after buffering a record, before and after
/// each fsync, around the snapshot rename, after the superblock write.
/// A test arms a CrashSchedule at the k-th boundary (or the n-th hit
/// of a named point); when the armed boundary is crossed, ShouldCrash
/// returns true and the WalManager freezes: it discards un-synced
/// state and fails every further operation, exactly as if the process
/// had been killed at that instant. The test then reopens the
/// directory and asserts recovery lands on a consistent catalog.
///
/// This is the durability analogue of blob/fault_store.h's
/// FaultInjectingStore: deterministic (a counter, not a clock),
/// thread-safe, and scriptable. A dry run with nothing armed counts
/// the boundaries and records their names, which is how the crash
/// matrix test enumerates every kill site without hard-coding them.
///
/// Points currently emitted (see wal.cc):
///   wal.append         record buffered, nothing written yet
///   wal.sync_begin     pending batch about to be written (a crash
///                      here tears the batch: half its bytes reach the
///                      file, unsynced — the torn-tail case)
///   wal.sync_end       batch written and fsynced (durable, unacked)
///   wal.rotate         segment rotated at checkpoint start
///   ckpt.temp_written  snapshot temp file written + fsynced
///   ckpt.renamed       snapshot renamed over catalog.tbm
///   ckpt.super_written superblock published
///   ckpt.done          old WAL segments deleted

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tbm::wal {

class CrashSchedule {
 public:
  CrashSchedule() = default;

  /// Arms the schedule to crash at the `n`-th boundary crossing
  /// overall (1-based), whatever its name.
  void ArmAtHit(uint64_t n);

  /// Arms the schedule to crash at the `nth` crossing of the named
  /// point (1-based).
  void ArmAtPoint(std::string point, uint64_t nth = 1);

  /// Called by the WAL at each boundary. Returns true exactly once,
  /// when the armed boundary is crossed; the caller then freezes.
  /// With nothing armed it only counts (dry-run mode). Thread-safe.
  bool ShouldCrash(const char* point);

  /// True once an armed boundary fired.
  bool crashed() const;

  /// Boundaries crossed so far.
  uint64_t hits() const;

  /// Names of the boundaries crossed, in order — the dry run's output.
  std::vector<std::string> trace() const;

  /// Clears counters, trace and arming.
  void Reset();

 private:
  mutable std::mutex mu_;
  uint64_t hits_ = 0;
  uint64_t armed_hit_ = 0;       ///< 0 = not armed by index.
  std::string armed_point_;      ///< Empty = not armed by name.
  uint64_t armed_point_nth_ = 0;
  uint64_t point_hits_ = 0;      ///< Crossings of armed_point_ so far.
  bool crashed_ = false;
  std::vector<std::string> trace_;
};

}  // namespace tbm::wal

#endif  // TBM_DB_WAL_CRASH_POINT_H_

#include "db/catalog_io.h"

#include "base/macros.h"

namespace tbm {

void SerializeCatalogEntry(const CatalogEntry& entry, BinaryWriter* writer) {
  writer->WriteU64(entry.id);
  writer->WriteU8(static_cast<uint8_t>(entry.kind));
  writer->WriteString(entry.name);
  entry.attrs.Serialize(writer);
  switch (entry.kind) {
    case CatalogKind::kEntity:
      break;
    case CatalogKind::kInterpretation:
      entry.interpretation.Serialize(writer);
      break;
    case CatalogKind::kMediaObject:
      writer->WriteU64(entry.interpretation_ref);
      writer->WriteString(entry.stream_name);
      break;
    case CatalogKind::kDerivedObject:
      writer->WriteString(entry.op);
      writer->WriteVarU64(entry.inputs.size());
      for (ObjectId input : entry.inputs) writer->WriteU64(input);
      entry.params.Serialize(writer);
      break;
    case CatalogKind::kMultimediaObject:
      writer->WriteVarU64(entry.components.size());
      for (const StoredComponent& component : entry.components) {
        writer->WriteString(component.name);
        writer->WriteU64(component.media);
        writer->WriteVarI64(component.start_seconds.num());
        writer->WriteVarI64(component.start_seconds.den());
        writer->WriteU8(component.spatial.has_value() ? 1 : 0);
        if (component.spatial.has_value()) {
          writer->WriteI32(component.spatial->x);
          writer->WriteI32(component.spatial->y);
          writer->WriteI32(component.spatial->layer);
        }
      }
      break;
  }
}

Result<CatalogEntry> DeserializeCatalogEntry(BinaryReader* reader) {
  CatalogEntry entry;
  TBM_ASSIGN_OR_RETURN(entry.id, reader->ReadU64());
  TBM_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadU8());
  if (kind > static_cast<uint8_t>(CatalogKind::kMultimediaObject)) {
    return Status::Corruption("bad catalog kind");
  }
  entry.kind = static_cast<CatalogKind>(kind);
  TBM_ASSIGN_OR_RETURN(entry.name, reader->ReadString());
  TBM_ASSIGN_OR_RETURN(entry.attrs, AttrMap::Deserialize(reader));
  switch (entry.kind) {
    case CatalogKind::kEntity:
      break;
    case CatalogKind::kInterpretation: {
      TBM_ASSIGN_OR_RETURN(entry.interpretation,
                           Interpretation::Deserialize(reader));
      break;
    }
    case CatalogKind::kMediaObject: {
      TBM_ASSIGN_OR_RETURN(entry.interpretation_ref, reader->ReadU64());
      TBM_ASSIGN_OR_RETURN(entry.stream_name, reader->ReadString());
      break;
    }
    case CatalogKind::kDerivedObject: {
      TBM_ASSIGN_OR_RETURN(entry.op, reader->ReadString());
      TBM_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarU64());
      for (uint64_t i = 0; i < count; ++i) {
        TBM_ASSIGN_OR_RETURN(ObjectId input, reader->ReadU64());
        entry.inputs.push_back(input);
      }
      TBM_ASSIGN_OR_RETURN(entry.params, AttrMap::Deserialize(reader));
      break;
    }
    case CatalogKind::kMultimediaObject: {
      TBM_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarU64());
      for (uint64_t i = 0; i < count; ++i) {
        StoredComponent component;
        TBM_ASSIGN_OR_RETURN(component.name, reader->ReadString());
        TBM_ASSIGN_OR_RETURN(component.media, reader->ReadU64());
        TBM_ASSIGN_OR_RETURN(int64_t num, reader->ReadVarI64());
        TBM_ASSIGN_OR_RETURN(int64_t den, reader->ReadVarI64());
        if (den <= 0) return Status::Corruption("bad component start");
        component.start_seconds = Rational(num, den);
        TBM_ASSIGN_OR_RETURN(uint8_t has_spatial, reader->ReadU8());
        if (has_spatial) {
          SpatialPlacement spatial;
          TBM_ASSIGN_OR_RETURN(spatial.x, reader->ReadI32());
          TBM_ASSIGN_OR_RETURN(spatial.y, reader->ReadI32());
          TBM_ASSIGN_OR_RETURN(spatial.layer, reader->ReadI32());
          component.spatial = spatial;
        }
        entry.components.push_back(std::move(component));
      }
      break;
    }
  }
  return entry;
}

}  // namespace tbm

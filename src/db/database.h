#ifndef TBM_DB_DATABASE_H_
#define TBM_DB_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "base/durable.h"
#include "base/thread_pool.h"
#include "blob/blob_store.h"
#include "compose/multimedia.h"
#include "db/codec_bridge.h"
#include "db/rights.h"
#include "db/wal/wal.h"
#include "derive/graph.h"
#include "derive/scheduler.h"
#include "interp/interpretation.h"

namespace tbm {

/// Catalog object identifier (1-based; 0 is invalid).
using ObjectId = uint64_t;
inline constexpr ObjectId kInvalidObjectId = 0;

/// What a catalog entry is.
enum class CatalogKind : uint8_t {
  kEntity = 0,            ///< Domain object (e.g. a VideoClip record).
  kInterpretation = 1,    ///< A BLOB's permanently associated interpretation.
  kMediaObject = 2,       ///< Non-derived media object (within an
                          ///< interpretation).
  kDerivedObject = 3,     ///< Derivation object (op + inputs + params).
  kMultimediaObject = 4,  ///< Composition of components.
};

std::string_view CatalogKindToString(CatalogKind kind);

/// A component record of a stored multimedia object.
struct StoredComponent {
  std::string name;  ///< Relationship name, e.g. "c1".
  ObjectId media = kInvalidObjectId;
  Rational start_seconds;
  std::optional<SpatialPlacement> spatial;
};

/// One row of the catalog. Only the fields for its `kind` are
/// meaningful.
struct CatalogEntry {
  ObjectId id = kInvalidObjectId;
  CatalogKind kind = CatalogKind::kEntity;
  std::string name;  ///< Unique across the catalog.
  AttrMap attrs;     ///< Domain attributes (title, director, language...).

  // kInterpretation:
  Interpretation interpretation;
  // kMediaObject:
  ObjectId interpretation_ref = kInvalidObjectId;
  std::string stream_name;  ///< Object name inside the interpretation.
  // kDerivedObject:
  std::string op;
  std::vector<ObjectId> inputs;
  AttrMap params;
  // kMultimediaObject:
  std::vector<StoredComponent> components;
};

/// A materialized multimedia object together with the derivation graph
/// its components evaluate in. Keep the view alive while using the
/// object.
struct ComposedView {
  ComposedView() : graph(), object("", &graph) {}
  DerivationGraph graph;
  MultimediaObject object;
};

/// The multimedia database: BLOB storage plus a catalog of
/// interpretations, media objects (derived and non-derived),
/// multimedia objects and domain entities — the full Figure 5 stack
/// behind one API.
///
/// A database opened with `Open(dir)` is durable and transactional
/// (DESIGN.md §16): every catalog mutation is appended to a
/// write-ahead log and fsynced before the call returns, so an
/// acknowledged mutation survives a crash with no explicit Save().
/// Concurrent writers share one fsync (group commit). A checkpoint —
/// taken automatically when the log grows past
/// `WalOptions::checkpoint_threshold_bytes`, or explicitly via
/// Checkpoint()/Save() — folds the log into the snapshot
/// (`catalog.tbm`, atomically replaced) and truncates it. Opening the
/// directory replays any log records past the snapshot, stopping
/// cleanly at a torn tail. A `LOCK` file makes the directory
/// single-writer: a second Open fails with FailedPrecondition.
///
/// A mutator that returns an error leaves no visible change in this
/// handle: the in-memory apply is rolled back. After a WAL I/O error
/// the handle is frozen (every further mutation fails with the same
/// status) and should be reopened; a failed commit whose record had in
/// fact reached disk before the error (durable but unacknowledged) is
/// replayed by that reopen, so it may legitimately reappear — the same
/// ambiguity as any client whose commit request times out.
///
/// `CreateInMemory()` keeps everything in RAM for tests and scratch
/// work; it has no log and Save() fails.
///
/// Thread model (unchanged from pre-WAL behavior for readers):
/// mutators are serialized by an internal lock and may run concurrently
/// with each other; readers take no lock, so the caller must not read
/// an object while another thread mutates that same object. Entry
/// pointers from Get() are copy-on-write: valid until the next mutation
/// of that object.
class MediaDatabase {
 public:
  /// Opens (creating if needed) a file-backed database. Convenience
  /// for `Open(dir, FileBlobStore::Open(dir))`.
  static Result<std::unique_ptr<MediaDatabase>> Open(const std::string& dir);

  /// Opens a database over an injected BLOB store — the store is the
  /// composition point: wrap a FileBlobStore in a FaultInjectingStore
  /// for robustness testing, or substitute a PagedBlobStore, without
  /// the database knowing. The catalog still persists in `dir`.
  static Result<std::unique_ptr<MediaDatabase>> Open(
      const std::string& dir, std::unique_ptr<BlobStore> store);

  /// Full-control open: WAL sync mode, checkpoint threshold, and the
  /// crash-injection schedule (tests) come from `options`.
  static Result<std::unique_ptr<MediaDatabase>> Open(
      const std::string& dir, std::unique_ptr<BlobStore> store,
      wal::WalOptions options);

  /// Creates a volatile in-memory database. Convenience for
  /// `CreateWithStore(std::make_unique<MemoryBlobStore>())`.
  static std::unique_ptr<MediaDatabase> CreateInMemory();

  /// Creates a database over an injected store with no catalog
  /// persistence (Save is a no-op).
  static std::unique_ptr<MediaDatabase> CreateWithStore(
      std::unique_ptr<BlobStore> store);

  BlobStore* blob_store() { return store_.get(); }
  const BlobStore* blob_store() const { return store_.get(); }

  // -------------------------------------------------------------------------
  // Catalog writes (each is one durable transaction on file-backed
  // databases: logged, fsynced, then acknowledged)

  /// Adds a domain entity (a VideoClip-style record). Media-valued
  /// attributes are references to media objects: use SetMediaAttr.
  Result<ObjectId> AddEntity(const std::string& name, AttrMap attrs);

  /// Registers a BLOB's interpretation (the BLOB must exist in this
  /// database's store).
  Result<ObjectId> AddInterpretation(const std::string& name,
                                     Interpretation interpretation);

  /// Registers the non-derived media object `stream_name` exposed by
  /// interpretation `interpretation_id`.
  Result<ObjectId> AddMediaObject(const std::string& name,
                                  ObjectId interpretation_id,
                                  const std::string& stream_name,
                                  AttrMap attrs = {});

  /// Registers a derivation object: op applied to catalog inputs with
  /// parameters. Inputs may be media objects or other derived objects.
  Result<ObjectId> AddDerivedObject(const std::string& name,
                                    const std::string& op,
                                    std::vector<ObjectId> inputs,
                                    AttrMap params, AttrMap attrs = {});

  /// Registers a multimedia object from components.
  Result<ObjectId> AddMultimediaObject(const std::string& name,
                                       std::vector<StoredComponent> components,
                                       AttrMap attrs = {});

  Status SetAttr(ObjectId id, const std::string& name, AttrValue value);

  /// Stores a media-valued attribute: a named reference from an entity
  /// to a media object (the paper's VideoClip with a video-valued
  /// attribute).
  Status SetMediaAttr(ObjectId entity, const std::string& attr,
                      ObjectId media_object);
  Result<ObjectId> GetMediaAttr(ObjectId entity,
                                const std::string& attr) const;

  /// Replaces the parameters of a derived object (e.g. re-tuning a
  /// scale factor); the derivation op and inputs are immutable.
  Status UpdateDerivedParams(ObjectId id, AttrMap params);

  Status Remove(ObjectId id);

  /// Garbage-collects BLOBs no interpretation references (e.g. after
  /// Remove()ing an interpretation, or for BLOBs captured but never
  /// registered). Returns the number of BLOBs deleted.
  Result<size_t> VacuumBlobs();

  /// Outcome of CollectBlobGarbage().
  struct BlobGcStats {
    uint64_t live = 0;             ///< Blobs referenced by interpretations.
    uint64_t swept = 0;            ///< Blobs reclaimed.
    uint64_t reclaimed_bytes = 0;  ///< Stored bytes reclaimed (0 when the
                                   ///< store does not track it).
    uint64_t pinned = 0;           ///< Condemned blobs rescued by racing
                                   ///< pushes (content-addressed store only).
    uint64_t pause_us = 0;         ///< Mutator-excluding pause (CAS only).
  };

  /// Full mark-and-sweep BLOB collection: marks every blob a live
  /// interpretation places into, then sweeps the rest. Over a
  /// CasBlobStore this runs the store's concurrent-safe Sweep (racing
  /// pushes pin their hash); over any other store it falls back to
  /// List() + Delete(). VacuumBlobs() is the thin legacy wrapper.
  Result<BlobGcStats> CollectBlobGarbage();

  // -------------------------------------------------------------------------
  // Catalog reads & queries

  Result<const CatalogEntry*> Get(ObjectId id) const;
  Result<ObjectId> FindByName(const std::string& name) const;
  size_t size() const { return catalog_.size(); }
  std::vector<ObjectId> List() const;

  /// All entries passing `predicate`.
  std::vector<ObjectId> Filter(
      const std::function<bool(const CatalogEntry&)>& predicate) const;

  /// Entries whose attribute `attr` equals `value`. Uses a secondary
  /// index when one exists (CreateAttrIndex), otherwise scans.
  std::vector<ObjectId> SelectByAttr(const std::string& attr,
                                     const AttrValue& value) const;

  /// Builds (or rebuilds) a secondary index over attribute `attr`,
  /// maintained incrementally by SetAttr and catalog inserts/removals.
  /// Indexes are in-memory query accelerators; they are rebuilt on
  /// open, not persisted.
  Status CreateAttrIndex(const std::string& attr);

  /// Drops the index on `attr`.
  Status DropAttrIndex(const std::string& attr);

  bool HasAttrIndex(const std::string& attr) const {
    return attr_indexes_.count(attr) > 0;
  }

  /// Media objects (derived or not) of the given media kind.
  std::vector<ObjectId> SelectByKind(MediaKind kind) const;

  /// Non-derived media objects whose *media descriptor* attribute
  /// `attr` satisfies `predicate` — querying the structural metadata
  /// interpretation provides (e.g. all video with frame height >= 480).
  std::vector<ObjectId> SelectByDescriptor(
      const std::string& attr,
      const std::function<bool(const AttrValue&)>& predicate) const;

  /// Non-derived media objects whose stream span lasts at least
  /// `min_seconds` and at most `max_seconds`.
  std::vector<ObjectId> SelectByDuration(double min_seconds,
                                         double max_seconds) const;

  // -------------------------------------------------------------------------
  // Materialization (the Figure 5 upward path)

  /// Materializes a non-derived media object as a timed stream. With
  /// streaming read options set (set_read_options), elements are read
  /// chunk by chunk with asynchronous readahead; otherwise one ranged
  /// read per element.
  Result<TimedStream> MaterializeStream(ObjectId media_object) const;

  /// Enables the streaming read path for MaterializeStream and
  /// Materialize: chunked reads with prefetch per `options`. If
  /// `options.pool` is null and `options.prefetch_depth` > 0, the
  /// database lazily creates (and owns) an I/O pool for the readahead.
  void set_read_options(StreamReadOptions options);

  /// Reverts to the default per-element read path.
  void clear_read_options();

  /// The active streaming options, or null when streaming is off.
  const StreamReadOptions* read_options() const {
    return read_options_ ? &*read_options_ : nullptr;
  }

  /// Materializes only the elements intersecting `span` — the paper's
  /// "select a specific duration" query.
  Result<TimedStream> MaterializeStreamSpan(ObjectId media_object,
                                            TickSpan span) const;

  /// Materializes a media or derived object as its typed value,
  /// expanding derivations as needed (memoized per call graph). The
  /// expansion runs through a DerivationEngine configured by
  /// `eval_options()`; counters land in `last_eval_stats()`.
  Result<MediaValue> Materialize(ObjectId id) const;

  /// Evaluation knobs (threads, cache budget) used by Materialize and
  /// MaterializeFor.
  void set_eval_options(EvalOptions options) { eval_options_ = options; }
  const EvalOptions& eval_options() const { return eval_options_; }

  /// Engine counters of the most recent Materialize call. Returns a
  /// snapshot by value: Materialize may run concurrently from other
  /// threads and overwrite the stored stats at any time, so handing out
  /// a reference would race with that writer.
  EvalStats last_eval_stats() const {
    std::lock_guard<std::mutex> lock(eval_stats_mu_);
    return last_eval_stats_;
  }

  /// Builds an evaluable view of a multimedia object: a derivation
  /// graph holding all transitive components plus the composed object.
  Result<std::unique_ptr<ComposedView>> Compose(ObjectId multimedia_id) const;

  /// Serialized size of the derivation records reachable from a
  /// derived object (op, refs, params) — the storage cost of keeping it
  /// implicit.
  Result<uint64_t> DerivationRecordBytes(ObjectId id) const;

  /// Expands a derived object and stores the result as a new
  /// non-derived media object (new BLOB + interpretation + media
  /// object entry named `new_name`). Returns the media object id —
  /// the paper's "expand derived objects to produce actual objects".
  Result<ObjectId> ExpandAndStore(ObjectId derived_id,
                                  const std::string& new_name,
                                  const StoreOptions& options = {});

  // -------------------------------------------------------------------------
  // Authorization (paper §6 future work)

  /// Rights records for catalog objects; persisted with the catalog.
  /// Prefer the logged mutators below on file-backed databases —
  /// changes made directly through this reference are durable only
  /// from the next checkpoint, not from the call.
  RightsManager& rights() { return rights_; }
  const RightsManager& rights() const { return rights_; }

  /// Logged rights mutators: like rights().Protect/Grant/Revoke but
  /// written to the WAL, so the change is durable when the call
  /// returns.
  Status ProtectObject(ObjectId object, const std::string& owner,
                       const std::string& copyright_notice = "");
  Status GrantRights(ObjectId object, const std::string& principal,
                     OperationMask operations);
  Status RevokeRights(ObjectId object, const std::string& principal);

  /// Materialize with access control: checks kRead on the object and
  /// every transitive derivation input for `principal`.
  Result<MediaValue> MaterializeFor(ObjectId id,
                                    const std::string& principal) const;

  /// AddDerivedObject with access control: checks kDerive on every
  /// input; if any input carries a copyright notice, the derived
  /// object's "copyright" attribute cites them (electronic copyright
  /// propagation).
  Result<ObjectId> AddDerivedObjectFor(const std::string& principal,
                                       const std::string& name,
                                       const std::string& op,
                                       std::vector<ObjectId> inputs,
                                       AttrMap params, AttrMap attrs = {});

  // -------------------------------------------------------------------------
  // Durability

  /// Takes a checkpoint now: serializes the catalog (copy-on-write —
  /// concurrent readers and writers keep working during the
  /// serialization), publishes it atomically over `catalog.tbm`,
  /// records the checkpoint LSN in the superblock, and truncates the
  /// WAL. FailedPrecondition on in-memory databases.
  Status Checkpoint() const;

  /// Writes the catalog snapshot; on a WAL-backed database this is
  /// Checkpoint(). Kept for compatibility — mutations are already
  /// durable without it. FailedPrecondition on in-memory databases.
  Status Save() const;

  /// Durability counters: LSNs, segment count, log size. `enabled` is
  /// false for in-memory databases.
  wal::WalStatus wal_status() const;

  /// What recovery did when this database was opened (zeros for
  /// in-memory databases and clean non-replaying opens).
  wal::RecoveryStats recovery_stats() const;

  /// Path of the catalog snapshot for a database directory.
  static std::string CatalogPath(const std::string& dir);

  /// Path of the single-writer lock file for a database directory.
  static std::string LockPath(const std::string& dir);

 private:
  MediaDatabase(std::unique_ptr<BlobStore> store, std::string dir)
      : store_(std::move(store)), dir_(std::move(dir)) {}

  Result<ObjectId> Insert(CatalogEntry entry);
  Status CheckNameFreeLocked(const std::string& name) const;
  Result<NodeId> BuildGraphNode(ObjectId id, DerivationGraph* graph,
                                std::map<ObjectId, NodeId>* built) const;

  /// Loads the snapshot (verifying it against the superblock when one
  /// exists) and returns its applied LSN — 0 for fresh directories and
  /// pre-WAL snapshots.
  Result<uint64_t> LoadCatalog();
  /// Replays WAL records past the snapshot and reports to the WAL.
  Status Recover();
  Status ApplyWalRecord(const wal::WalRecord& record);

  // Transaction plumbing. The Log* helpers serialize one operation,
  // append it to the WAL and return the LSN to await (0 when there is
  // no WAL); callers hold catalog_mu_. FinishCommit waits for
  // durability and runs the threshold checkpoint; called unlocked.
  Result<uint64_t> LogUpsertLocked(const CatalogEntry& entry);
  Result<uint64_t> LogRemoveLocked(ObjectId id);
  Result<uint64_t> LogRightsLocked();
  Status FinishCommit(uint64_t lsn);
  /// FinishCommit, restoring the row's pre-image on failure so a
  /// commit the caller was told failed never stays visible to this
  /// handle's readers. `prior` is the row's previous value (null when
  /// the transaction created `id`). Called unlocked.
  Status FinishCommitOrRollback(uint64_t lsn, ObjectId id,
                                std::shared_ptr<const CatalogEntry> prior);
  /// One durable rights transaction: snapshots the rights table,
  /// applies `mutate`, logs the new table, and waits for durability —
  /// restoring the snapshot if any step fails.
  Status CommitRightsChange(const std::function<Status(RightsManager&)>& mutate);
  void MaybeAutoCheckpoint() const;
  Status CheckpointLocked() const;

  // In-memory apply, shared by mutators and replay.
  void ApplyUpsertLocked(std::shared_ptr<const CatalogEntry> entry);
  void ApplyRemoveLocked(ObjectId id);

  /// Serializes a full snapshot file image (magic, version, checksum,
  /// body) from copied state.
  static Bytes SerializeSnapshot(
      uint64_t applied_lsn, uint64_t next_id,
      const std::map<ObjectId, std::shared_ptr<const CatalogEntry>>& catalog,
      const RightsManager& rights);

  Status CheckReadRecursive(ObjectId id, const std::string& principal) const;
  void IndexInsert(const CatalogEntry& entry);
  void IndexRemove(const CatalogEntry& entry);
  static std::string IndexKey(const AttrValue& value);

  /// Streaming options with the pool slot filled (lazily creating the
  /// owned I/O pool on first use). Only meaningful when read_options_
  /// is set.
  StreamReadOptions ResolvedReadOptions() const;

  std::unique_ptr<BlobStore> store_;
  std::string dir_;  ///< Empty for in-memory databases.

  /// Orders mutators (and the checkpoint's state copy) against each
  /// other. Readers take no lock — see the class comment.
  mutable std::mutex catalog_mu_;
  /// Serializes whole checkpoints (rotate + serialize + install).
  /// Ordering: checkpoint_mu_ before catalog_mu_.
  mutable std::mutex checkpoint_mu_;

  /// Copy-on-write rows: mutators replace the shared_ptr, so a
  /// checkpoint's copied map keeps serializing the consistent old
  /// state while writers proceed.
  std::map<ObjectId, std::shared_ptr<const CatalogEntry>> catalog_;
  std::map<std::string, ObjectId> by_name_;
  /// attr name -> (canonical value key -> ids).
  std::map<std::string, std::multimap<std::string, ObjectId>> attr_indexes_;
  RightsManager rights_;
  ObjectId next_id_ = 1;
  EvalOptions eval_options_;
  mutable std::mutex eval_stats_mu_;  ///< Guards last_eval_stats_.
  mutable EvalStats last_eval_stats_;

  std::unique_ptr<FileLock> lock_;        ///< Null for in-memory.
  std::unique_ptr<wal::WalManager> wal_;  ///< Null for in-memory.

  std::optional<StreamReadOptions> read_options_;
  mutable std::mutex io_pool_mu_;  ///< Guards io_pool_ creation.
  mutable std::unique_ptr<ThreadPool> io_pool_;
};

}  // namespace tbm

#endif  // TBM_DB_DATABASE_H_

#include "db/database.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "base/crc32.h"
#include "base/macros.h"
#include "blob/cas_store.h"
#include "blob/file_store.h"
#include "blob/memory_store.h"
#include "db/catalog_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace {
constexpr uint32_t kCatalogMagic = 0x544D'4244u;  // "TBMDB"-ish.
// v2 appends the rights table; v3 prepends the snapshot's applied LSN
// (the durable-catalog handshake — see DESIGN.md §16).
constexpr uint32_t kCatalogVersion = 3;

// WAL record op codes. A payload is {u8 op, op-specific body}.
constexpr uint8_t kOpUpsert = 1;  ///< Body: one full catalog entry.
constexpr uint8_t kOpRemove = 2;  ///< Body: u64 object id.
constexpr uint8_t kOpRights = 3;  ///< Body: the full rights table.
}  // namespace

std::string_view CatalogKindToString(CatalogKind kind) {
  switch (kind) {
    case CatalogKind::kEntity: return "entity";
    case CatalogKind::kInterpretation: return "interpretation";
    case CatalogKind::kMediaObject: return "media object";
    case CatalogKind::kDerivedObject: return "derived object";
    case CatalogKind::kMultimediaObject: return "multimedia object";
  }
  return "unknown";
}

Result<std::unique_ptr<MediaDatabase>> MediaDatabase::Open(
    const std::string& dir) {
  TBM_ASSIGN_OR_RETURN(std::unique_ptr<FileBlobStore> store,
                       FileBlobStore::Open(dir));
  return Open(dir, std::move(store));
}

Result<std::unique_ptr<MediaDatabase>> MediaDatabase::Open(
    const std::string& dir, std::unique_ptr<BlobStore> store) {
  return Open(dir, std::move(store), wal::WalOptions{});
}

Result<std::unique_ptr<MediaDatabase>> MediaDatabase::Open(
    const std::string& dir, std::unique_ptr<BlobStore> store,
    wal::WalOptions options) {
  if (store == nullptr) {
    return Status::InvalidArgument("blob store must not be null");
  }
  if (dir.empty()) {
    return Status::InvalidArgument("database directory must not be empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  auto db = std::unique_ptr<MediaDatabase>(
      new MediaDatabase(std::move(store), dir));
  // Single-writer guard first: a second process (or handle) fails fast
  // with FailedPrecondition instead of racing the WAL.
  TBM_ASSIGN_OR_RETURN(db->lock_, FileLock::Acquire(LockPath(dir)));
  TBM_ASSIGN_OR_RETURN(db->wal_, wal::WalManager::Open(dir, options));
  TBM_RETURN_IF_ERROR(db->Recover());
  return db;
}

std::unique_ptr<MediaDatabase> MediaDatabase::CreateInMemory() {
  return CreateWithStore(std::make_unique<MemoryBlobStore>());
}

std::unique_ptr<MediaDatabase> MediaDatabase::CreateWithStore(
    std::unique_ptr<BlobStore> store) {
  return std::unique_ptr<MediaDatabase>(
      new MediaDatabase(std::move(store), ""));
}

void MediaDatabase::set_read_options(StreamReadOptions options) {
  read_options_ = options;
}

void MediaDatabase::clear_read_options() { read_options_.reset(); }

StreamReadOptions MediaDatabase::ResolvedReadOptions() const {
  StreamReadOptions options = *read_options_;
  if (options.pool == nullptr && options.prefetch_depth > 0) {
    std::lock_guard<std::mutex> lock(io_pool_mu_);
    if (io_pool_ == nullptr) {
      io_pool_ = std::make_unique<ThreadPool>(
          std::min(4, ThreadPool::DefaultThreads()));
    }
    options.pool = io_pool_.get();
  }
  return options;
}

// ---------------------------------------------------------------------------
// Transaction plumbing

Result<uint64_t> MediaDatabase::LogUpsertLocked(const CatalogEntry& entry) {
  if (wal_ == nullptr) return uint64_t{0};
  BinaryWriter payload;
  payload.WriteU8(kOpUpsert);
  SerializeCatalogEntry(entry, &payload);
  return wal_->Append(payload.buffer());
}

Result<uint64_t> MediaDatabase::LogRemoveLocked(ObjectId id) {
  if (wal_ == nullptr) return uint64_t{0};
  BinaryWriter payload;
  payload.WriteU8(kOpRemove);
  payload.WriteU64(id);
  return wal_->Append(payload.buffer());
}

Result<uint64_t> MediaDatabase::LogRightsLocked() {
  if (wal_ == nullptr) return uint64_t{0};
  BinaryWriter payload;
  payload.WriteU8(kOpRights);
  rights_.Serialize(&payload);
  return wal_->Append(payload.buffer());
}

Status MediaDatabase::FinishCommit(uint64_t lsn) {
  if (wal_ == nullptr || lsn == 0) return Status::OK();
  static obs::Histogram* const commit_us =
      obs::Registry::Global().histogram("wal.commit_us");
  static obs::Counter* const txns =
      obs::Registry::Global().counter("db.txns");
  {
    obs::ScopedTimerUs timer(commit_us);
    TBM_RETURN_IF_ERROR(wal_->WaitDurable(lsn));
  }
  txns->Add();
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status MediaDatabase::FinishCommitOrRollback(
    uint64_t lsn, ObjectId id, std::shared_ptr<const CatalogEntry> prior) {
  Status durable = FinishCommit(lsn);
  if (durable.ok()) return durable;
  // The WAL rejected the commit: the caller gets an error, so readers
  // of this handle must not keep seeing the change. The record may
  // still have reached disk (durable but unacknowledged); the frozen
  // WAL blocks every further mutation, and reopening the directory
  // resolves the ambiguity (see the class comment).
  std::lock_guard<std::mutex> lock(catalog_mu_);
  if (prior != nullptr) {
    ApplyUpsertLocked(std::move(prior));
  } else {
    ApplyRemoveLocked(id);
  }
  return durable;
}

Status MediaDatabase::CommitRightsChange(
    const std::function<Status(RightsManager&)>& mutate) {
  uint64_t lsn = 0;
  RightsManager prior;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    prior = rights_;
    Status mutated = mutate(rights_);
    if (!mutated.ok()) {
      rights_ = std::move(prior);
      return mutated;
    }
    auto logged = LogRightsLocked();
    if (!logged.ok()) {
      rights_ = std::move(prior);
      return logged.status();
    }
    lsn = *logged;
  }
  Status durable = FinishCommit(lsn);
  if (!durable.ok()) {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    rights_ = std::move(prior);
  }
  return durable;
}

void MediaDatabase::MaybeAutoCheckpoint() const {
  if (wal_ == nullptr) return;
  uint64_t threshold = wal_->options().checkpoint_threshold_bytes;
  if (threshold == 0) return;
  if (wal_->bytes_since_checkpoint() < threshold) return;
  std::unique_lock<std::mutex> lk(checkpoint_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return;  // A checkpoint is already running.
  if (wal_->bytes_since_checkpoint() < threshold) return;
  // Best effort: a failed checkpoint freezes the WAL and surfaces on
  // the next mutation; the commit that triggered us is already durable.
  (void)CheckpointLocked();
}

void MediaDatabase::ApplyUpsertLocked(
    std::shared_ptr<const CatalogEntry> entry) {
  auto it = catalog_.find(entry->id);
  if (it != catalog_.end()) {
    IndexRemove(*it->second);
    by_name_.erase(it->second->name);
  }
  by_name_[entry->name] = entry->id;
  IndexInsert(*entry);
  if (entry->id >= next_id_) next_id_ = entry->id + 1;
  catalog_[entry->id] = std::move(entry);
}

void MediaDatabase::ApplyRemoveLocked(ObjectId id) {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return;
  by_name_.erase(it->second->name);
  IndexRemove(*it->second);
  catalog_.erase(it);
}

Status MediaDatabase::ApplyWalRecord(const wal::WalRecord& record) {
  BinaryReader reader(record.payload);
  TBM_ASSIGN_OR_RETURN(uint8_t op, reader.ReadU8());
  switch (op) {
    case kOpUpsert: {
      TBM_ASSIGN_OR_RETURN(CatalogEntry entry,
                           DeserializeCatalogEntry(&reader));
      ApplyUpsertLocked(std::make_shared<const CatalogEntry>(std::move(entry)));
      return Status::OK();
    }
    case kOpRemove: {
      TBM_ASSIGN_OR_RETURN(ObjectId id, reader.ReadU64());
      ApplyRemoveLocked(id);
      return Status::OK();
    }
    case kOpRights: {
      TBM_ASSIGN_OR_RETURN(rights_, RightsManager::Deserialize(&reader));
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown WAL op " + std::to_string(op) +
                                " at LSN " + std::to_string(record.lsn));
  }
}

// ---------------------------------------------------------------------------
// Catalog writes

Status MediaDatabase::CheckNameFreeLocked(const std::string& name) const {
  if (name.empty()) {
    return Status::InvalidArgument("object name must not be empty");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("catalog name \"" + name + "\" in use");
  }
  return Status::OK();
}

std::string MediaDatabase::IndexKey(const AttrValue& value) {
  // Canonical byte form: type tag + serialized payload.
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(TypeOf(value)));
  writer.WriteString(AttrValueToString(value));
  return std::string(reinterpret_cast<const char*>(writer.buffer().data()),
                     writer.size());
}

void MediaDatabase::IndexInsert(const CatalogEntry& entry) {
  for (auto& [attr, index] : attr_indexes_) {
    auto value = entry.attrs.Get(attr);
    if (value.ok()) index.emplace(IndexKey(*value), entry.id);
  }
}

void MediaDatabase::IndexRemove(const CatalogEntry& entry) {
  for (auto& [attr, index] : attr_indexes_) {
    auto value = entry.attrs.Get(attr);
    if (!value.ok()) continue;
    auto [begin, end] = index.equal_range(IndexKey(*value));
    for (auto it = begin; it != end; ++it) {
      if (it->second == entry.id) {
        index.erase(it);
        break;
      }
    }
  }
}

Result<ObjectId> MediaDatabase::Insert(CatalogEntry entry) {
  uint64_t lsn = 0;
  ObjectId id = kInvalidObjectId;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    TBM_RETURN_IF_ERROR(CheckNameFreeLocked(entry.name));
    entry.id = next_id_;
    id = entry.id;
    auto shared = std::make_shared<const CatalogEntry>(std::move(entry));
    TBM_ASSIGN_OR_RETURN(lsn, LogUpsertLocked(*shared));
    ApplyUpsertLocked(std::move(shared));
  }
  TBM_RETURN_IF_ERROR(FinishCommitOrRollback(lsn, id, nullptr));
  return id;
}

Result<ObjectId> MediaDatabase::AddEntity(const std::string& name,
                                          AttrMap attrs) {
  CatalogEntry entry;
  entry.kind = CatalogKind::kEntity;
  entry.name = name;
  entry.attrs = std::move(attrs);
  return Insert(std::move(entry));
}

Result<ObjectId> MediaDatabase::AddInterpretation(
    const std::string& name, Interpretation interpretation) {
  if (!store_->Exists(interpretation.blob())) {
    return Status::NotFound("interpretation references unknown BLOB " +
                            std::to_string(interpretation.blob()));
  }
  TBM_ASSIGN_OR_RETURN(uint64_t blob_size,
                       store_->Size(interpretation.blob()));
  TBM_RETURN_IF_ERROR(interpretation.ValidateAgainstBlobSize(blob_size));
  CatalogEntry entry;
  entry.kind = CatalogKind::kInterpretation;
  entry.name = name;
  entry.interpretation = std::move(interpretation);
  return Insert(std::move(entry));
}

Result<ObjectId> MediaDatabase::AddMediaObject(const std::string& name,
                                               ObjectId interpretation_id,
                                               const std::string& stream_name,
                                               AttrMap attrs) {
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* interp, Get(interpretation_id));
  if (interp->kind != CatalogKind::kInterpretation) {
    return Status::InvalidArgument("object " +
                                   std::to_string(interpretation_id) +
                                   " is not an interpretation");
  }
  TBM_RETURN_IF_ERROR(
      interp->interpretation.FindObject(stream_name).status());
  CatalogEntry entry;
  entry.kind = CatalogKind::kMediaObject;
  entry.name = name;
  entry.attrs = std::move(attrs);
  entry.interpretation_ref = interpretation_id;
  entry.stream_name = stream_name;
  return Insert(std::move(entry));
}

Result<ObjectId> MediaDatabase::AddDerivedObject(const std::string& name,
                                                 const std::string& op,
                                                 std::vector<ObjectId> inputs,
                                                 AttrMap params,
                                                 AttrMap attrs) {
  TBM_RETURN_IF_ERROR(DerivationRegistry::Builtin().Find(op).status());
  for (ObjectId input : inputs) {
    TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(input));
    if (entry->kind != CatalogKind::kMediaObject &&
        entry->kind != CatalogKind::kDerivedObject) {
      return Status::InvalidArgument(
          "derivation input " + std::to_string(input) +
          " must be a media or derived object, is " +
          std::string(CatalogKindToString(entry->kind)));
    }
  }
  CatalogEntry entry;
  entry.kind = CatalogKind::kDerivedObject;
  entry.name = name;
  entry.attrs = std::move(attrs);
  entry.op = op;
  entry.inputs = std::move(inputs);
  entry.params = std::move(params);
  return Insert(std::move(entry));
}

Result<ObjectId> MediaDatabase::AddMultimediaObject(
    const std::string& name, std::vector<StoredComponent> components,
    AttrMap attrs) {
  for (const StoredComponent& component : components) {
    TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(component.media));
    if (entry->kind != CatalogKind::kMediaObject &&
        entry->kind != CatalogKind::kDerivedObject) {
      return Status::InvalidArgument(
          "component \"" + component.name +
          "\" must reference a media or derived object");
    }
    if (component.start_seconds.IsNegative()) {
      return Status::InvalidArgument("component \"" + component.name +
                                     "\" has negative start");
    }
  }
  CatalogEntry entry;
  entry.kind = CatalogKind::kMultimediaObject;
  entry.name = name;
  entry.attrs = std::move(attrs);
  entry.components = std::move(components);
  return Insert(std::move(entry));
}

Status MediaDatabase::SetAttr(ObjectId id, const std::string& name,
                              AttrValue value) {
  uint64_t lsn = 0;
  std::shared_ptr<const CatalogEntry> prior;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    auto it = catalog_.find(id);
    if (it == catalog_.end()) {
      return Status::NotFound("no catalog object " + std::to_string(id));
    }
    // Copy-on-write: a concurrent checkpoint's copied map keeps the old
    // row; readers see old-or-new, never a half-mutated entry.
    prior = it->second;
    CatalogEntry updated = *it->second;
    updated.attrs.Set(name, std::move(value));
    auto shared = std::make_shared<const CatalogEntry>(std::move(updated));
    TBM_ASSIGN_OR_RETURN(lsn, LogUpsertLocked(*shared));
    ApplyUpsertLocked(std::move(shared));
  }
  return FinishCommitOrRollback(lsn, id, std::move(prior));
}

Status MediaDatabase::SetMediaAttr(ObjectId entity, const std::string& attr,
                                   ObjectId media_object) {
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* target, Get(media_object));
  if (target->kind != CatalogKind::kMediaObject &&
      target->kind != CatalogKind::kDerivedObject &&
      target->kind != CatalogKind::kMultimediaObject) {
    return Status::InvalidArgument("media attribute must reference a media, "
                                   "derived or multimedia object");
  }
  return SetAttr(entity, attr, static_cast<int64_t>(media_object));
}

Result<ObjectId> MediaDatabase::GetMediaAttr(ObjectId entity,
                                             const std::string& attr) const {
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(entity));
  TBM_ASSIGN_OR_RETURN(int64_t ref, entry->attrs.GetInt(attr));
  if (catalog_.count(static_cast<ObjectId>(ref)) == 0) {
    return Status::NotFound("media attribute \"" + attr +
                            "\" references missing object");
  }
  return static_cast<ObjectId>(ref);
}

Status MediaDatabase::UpdateDerivedParams(ObjectId id, AttrMap params) {
  uint64_t lsn = 0;
  std::shared_ptr<const CatalogEntry> prior;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    auto it = catalog_.find(id);
    if (it == catalog_.end()) {
      return Status::NotFound("no catalog object " + std::to_string(id));
    }
    if (it->second->kind != CatalogKind::kDerivedObject) {
      return Status::InvalidArgument("object " + std::to_string(id) +
                                     " is not a derived object");
    }
    prior = it->second;
    CatalogEntry updated = *it->second;
    updated.params = std::move(params);
    auto shared = std::make_shared<const CatalogEntry>(std::move(updated));
    TBM_ASSIGN_OR_RETURN(lsn, LogUpsertLocked(*shared));
    ApplyUpsertLocked(std::move(shared));
  }
  return FinishCommitOrRollback(lsn, id, std::move(prior));
}

Status MediaDatabase::Remove(ObjectId id) {
  uint64_t lsn = 0;
  std::shared_ptr<const CatalogEntry> prior;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    auto it = catalog_.find(id);
    if (it == catalog_.end()) {
      return Status::NotFound("no catalog object " + std::to_string(id));
    }
    // Refuse to remove objects something else references.
    for (const auto& [other_id, entry] : catalog_) {
      if (other_id == id) continue;
      if (entry->interpretation_ref == id) {
        return Status::FailedPrecondition("object is referenced by \"" +
                                          entry->name + "\"");
      }
      for (ObjectId input : entry->inputs) {
        if (input == id) {
          return Status::FailedPrecondition("object is referenced by \"" +
                                            entry->name + "\"");
        }
      }
      for (const StoredComponent& component : entry->components) {
        if (component.media == id) {
          return Status::FailedPrecondition("object is referenced by \"" +
                                            entry->name + "\"");
        }
      }
    }
    TBM_ASSIGN_OR_RETURN(lsn, LogRemoveLocked(id));
    prior = it->second;
    ApplyRemoveLocked(id);
  }
  return FinishCommitOrRollback(lsn, id, std::move(prior));
}

Result<size_t> MediaDatabase::VacuumBlobs() {
  TBM_ASSIGN_OR_RETURN(BlobGcStats stats, CollectBlobGarbage());
  return static_cast<size_t>(stats.swept);
}

Result<MediaDatabase::BlobGcStats> MediaDatabase::CollectBlobGarbage() {
  // Mark: every blob a live interpretation places into.
  std::set<BlobId> referenced;
  for (const auto& [id, entry] : catalog_) {
    if (entry->kind == CatalogKind::kInterpretation) {
      referenced.insert(entry->interpretation.blob());
    }
  }
  BlobGcStats stats;
  stats.live = referenced.size();

  if (auto* cas = dynamic_cast<CasBlobStore*>(store_.get())) {
    // Sweep through the store's own collector: concurrent-safe, and
    // reference counts mean a deduped blob survives until every
    // placement of its content is gone.
    std::vector<BlobId> live(referenced.begin(), referenced.end());
    TBM_ASSIGN_OR_RETURN(CasSweepStats swept, cas->Sweep(live));
    stats.swept = swept.swept;
    stats.reclaimed_bytes = swept.reclaimed_bytes;
    stats.pinned = swept.pinned;
    stats.pause_us = swept.pause_us;
    return stats;
  }

  for (BlobId blob : store_->List()) {
    if (referenced.count(blob) > 0) continue;
    TBM_ASSIGN_OR_RETURN(uint64_t size, store_->Size(blob));
    TBM_RETURN_IF_ERROR(store_->Delete(blob));
    stats.swept++;
    stats.reclaimed_bytes += size;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Reads & queries

Result<const CatalogEntry*> MediaDatabase::Get(ObjectId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) {
    return Status::NotFound("no catalog object " + std::to_string(id));
  }
  return it->second.get();
}

Result<ObjectId> MediaDatabase::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no catalog object named \"" + name + "\"");
  }
  return it->second;
}

std::vector<ObjectId> MediaDatabase::List() const {
  std::vector<ObjectId> ids;
  ids.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_) ids.push_back(id);
  return ids;
}

std::vector<ObjectId> MediaDatabase::Filter(
    const std::function<bool(const CatalogEntry&)>& predicate) const {
  std::vector<ObjectId> ids;
  for (const auto& [id, entry] : catalog_) {
    if (predicate(*entry)) ids.push_back(id);
  }
  return ids;
}

std::vector<ObjectId> MediaDatabase::SelectByAttr(
    const std::string& attr, const AttrValue& value) const {
  auto index = attr_indexes_.find(attr);
  if (index != attr_indexes_.end()) {
    std::vector<ObjectId> ids;
    auto [begin, end] = index->second.equal_range(IndexKey(value));
    for (auto it = begin; it != end; ++it) ids.push_back(it->second);
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  return Filter([&](const CatalogEntry& entry) {
    auto v = entry.attrs.Get(attr);
    return v.ok() && *v == value;
  });
}

Status MediaDatabase::CreateAttrIndex(const std::string& attr) {
  if (attr.empty()) {
    return Status::InvalidArgument("attribute name must not be empty");
  }
  std::multimap<std::string, ObjectId>& index = attr_indexes_[attr];
  index.clear();
  for (const auto& [id, entry] : catalog_) {
    auto value = entry->attrs.Get(attr);
    if (value.ok()) index.emplace(IndexKey(*value), id);
  }
  return Status::OK();
}

Status MediaDatabase::DropAttrIndex(const std::string& attr) {
  if (attr_indexes_.erase(attr) == 0) {
    return Status::NotFound("no index on \"" + attr + "\"");
  }
  return Status::OK();
}

std::vector<ObjectId> MediaDatabase::SelectByKind(MediaKind kind) const {
  return Filter([&](const CatalogEntry& entry) {
    if (entry.kind == CatalogKind::kMediaObject) {
      auto interp = Get(entry.interpretation_ref);
      if (!interp.ok()) return false;
      auto object = (*interp)->interpretation.FindObject(entry.stream_name);
      return object.ok() && (*object)->descriptor.kind == kind;
    }
    if (entry.kind == CatalogKind::kDerivedObject) {
      auto op = DerivationRegistry::Builtin().Find(entry.op);
      return op.ok() && (*op)->result_kind == kind;
    }
    return false;
  });
}

std::vector<ObjectId> MediaDatabase::SelectByDescriptor(
    const std::string& attr,
    const std::function<bool(const AttrValue&)>& predicate) const {
  return Filter([&](const CatalogEntry& entry) {
    if (entry.kind != CatalogKind::kMediaObject) return false;
    auto interp = Get(entry.interpretation_ref);
    if (!interp.ok()) return false;
    auto object = (*interp)->interpretation.FindObject(entry.stream_name);
    if (!object.ok()) return false;
    auto value = (*object)->descriptor.attrs.Get(attr);
    return value.ok() && predicate(*value);
  });
}

std::vector<ObjectId> MediaDatabase::SelectByDuration(
    double min_seconds, double max_seconds) const {
  return Filter([&](const CatalogEntry& entry) {
    if (entry.kind != CatalogKind::kMediaObject) return false;
    auto interp = Get(entry.interpretation_ref);
    if (!interp.ok()) return false;
    auto object = (*interp)->interpretation.FindObject(entry.stream_name);
    if (!object.ok()) return false;
    double seconds =
        (*object)->time_system.ToSecondsF((*object)->EndTime());
    return seconds >= min_seconds && seconds <= max_seconds;
  });
}

// ---------------------------------------------------------------------------
// Authorization

Status MediaDatabase::CheckReadRecursive(ObjectId id,
                                         const std::string& principal) const {
  TBM_RETURN_IF_ERROR(rights_.Check(id, principal, MediaOperation::kRead));
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(id));
  for (ObjectId input : entry->inputs) {
    TBM_RETURN_IF_ERROR(CheckReadRecursive(input, principal));
  }
  return Status::OK();
}

Result<MediaValue> MediaDatabase::MaterializeFor(
    ObjectId id, const std::string& principal) const {
  TBM_RETURN_IF_ERROR(CheckReadRecursive(id, principal));
  return Materialize(id);
}

Result<ObjectId> MediaDatabase::AddDerivedObjectFor(
    const std::string& principal, const std::string& name,
    const std::string& op, std::vector<ObjectId> inputs, AttrMap params,
    AttrMap attrs) {
  for (ObjectId input : inputs) {
    TBM_RETURN_IF_ERROR(
        rights_.Check(input, principal, MediaOperation::kDerive));
  }
  std::string notice = rights_.DeriveCopyrightNotice(inputs);
  if (!notice.empty()) {
    attrs.SetString("copyright", notice);
  }
  return AddDerivedObject(name, op, std::move(inputs), std::move(params),
                          std::move(attrs));
}

Status MediaDatabase::ProtectObject(ObjectId object, const std::string& owner,
                                    const std::string& copyright_notice) {
  return CommitRightsChange([&](RightsManager& rights) {
    return rights.Protect(object, owner, copyright_notice);
  });
}

Status MediaDatabase::GrantRights(ObjectId object,
                                  const std::string& principal,
                                  OperationMask operations) {
  return CommitRightsChange([&](RightsManager& rights) {
    return rights.Grant(object, principal, operations);
  });
}

Status MediaDatabase::RevokeRights(ObjectId object,
                                   const std::string& principal) {
  return CommitRightsChange([&](RightsManager& rights) {
    return rights.Revoke(object, principal);
  });
}

// ---------------------------------------------------------------------------
// Materialization

Result<TimedStream> MediaDatabase::MaterializeStream(
    ObjectId media_object) const {
  obs::ScopedSpan span("db.materialize_stream");
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(media_object));
  if (entry->kind != CatalogKind::kMediaObject) {
    return Status::InvalidArgument(
        "object " + std::to_string(media_object) +
        " is not a non-derived media object (derived objects must be "
        "expanded; use Materialize)");
  }
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* interp,
                       Get(entry->interpretation_ref));
  if (read_options_) {
    return MaterializeStreamed(*store_, interp->interpretation,
                               entry->stream_name, ResolvedReadOptions());
  }
  return interp->interpretation.Materialize(*store_, entry->stream_name);
}

Result<TimedStream> MediaDatabase::MaterializeStreamSpan(
    ObjectId media_object, TickSpan span) const {
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(media_object));
  if (entry->kind != CatalogKind::kMediaObject) {
    return Status::InvalidArgument("span materialization requires a "
                                   "non-derived media object");
  }
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* interp,
                       Get(entry->interpretation_ref));
  return interp->interpretation.MaterializeSpan(*store_, entry->stream_name,
                                                span);
}

Result<NodeId> MediaDatabase::BuildGraphNode(
    ObjectId id, DerivationGraph* graph,
    std::map<ObjectId, NodeId>* built) const {
  auto cached = built->find(id);
  if (cached != built->end()) return cached->second;
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(id));
  NodeId node;
  if (entry->kind == CatalogKind::kMediaObject) {
    TBM_ASSIGN_OR_RETURN(TimedStream stream, MaterializeStream(id));
    TBM_ASSIGN_OR_RETURN(MediaValue value, DecodeStream(stream));
    node = graph->AddLeaf(std::move(value), entry->name);
  } else if (entry->kind == CatalogKind::kDerivedObject) {
    std::vector<NodeId> inputs;
    for (ObjectId input : entry->inputs) {
      TBM_ASSIGN_OR_RETURN(NodeId input_node,
                           BuildGraphNode(input, graph, built));
      inputs.push_back(input_node);
    }
    TBM_ASSIGN_OR_RETURN(node, graph->AddDerived(entry->op, std::move(inputs),
                                                 entry->params, entry->name));
  } else {
    return Status::InvalidArgument(
        "object " + std::to_string(id) + " (" +
        std::string(CatalogKindToString(entry->kind)) +
        ") cannot appear in a derivation graph");
  }
  built->emplace(id, node);
  return node;
}

Result<MediaValue> MediaDatabase::Materialize(ObjectId id) const {
  obs::ScopedSpan span("db.materialize");
  static obs::Histogram* const materialize_us =
      obs::Registry::Global().histogram("db.materialize_us");
  static obs::Counter* const materializations =
      obs::Registry::Global().counter("db.materializations");
  obs::ScopedTimerUs timer(materialize_us);
  materializations->Add();
  DerivationGraph graph;
  std::map<ObjectId, NodeId> built;
  TBM_ASSIGN_OR_RETURN(NodeId node, BuildGraphNode(id, &graph, &built));
  DerivationEngine engine(&graph, eval_options_);
  TBM_ASSIGN_OR_RETURN(ValueRef value, engine.Evaluate(node));
  {
    std::lock_guard<std::mutex> lock(eval_stats_mu_);
    last_eval_stats_ = engine.stats();
  }
  return *value;  // Copy out; the graph and engine die with this frame.
}

Result<std::unique_ptr<ComposedView>> MediaDatabase::Compose(
    ObjectId multimedia_id) const {
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(multimedia_id));
  if (entry->kind != CatalogKind::kMultimediaObject) {
    return Status::InvalidArgument("object " + std::to_string(multimedia_id) +
                                   " is not a multimedia object");
  }
  auto view = std::make_unique<ComposedView>();
  view->object = MultimediaObject(entry->name, &view->graph);
  std::map<ObjectId, NodeId> built;
  for (const StoredComponent& component : entry->components) {
    TBM_ASSIGN_OR_RETURN(NodeId node,
                         BuildGraphNode(component.media, &view->graph, &built));
    TBM_RETURN_IF_ERROR(view->object.AddComponent(
        component.name, node, component.start_seconds, component.spatial));
  }
  return view;
}

Result<uint64_t> MediaDatabase::DerivationRecordBytes(ObjectId id) const {
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(id));
  if (entry->kind == CatalogKind::kMediaObject) {
    return static_cast<uint64_t>(sizeof(ObjectId));
  }
  if (entry->kind != CatalogKind::kDerivedObject) {
    return Status::InvalidArgument("not a media or derived object");
  }
  BinaryWriter writer;
  writer.WriteString(entry->op);
  writer.WriteVarU64(entry->inputs.size());
  for (ObjectId input : entry->inputs) writer.WriteVarU64(input);
  entry->params.Serialize(&writer);
  uint64_t total = writer.size();
  for (ObjectId input : entry->inputs) {
    TBM_ASSIGN_OR_RETURN(uint64_t sub, DerivationRecordBytes(input));
    total += sub;
  }
  return total;
}

Result<ObjectId> MediaDatabase::ExpandAndStore(ObjectId derived_id,
                                               const std::string& new_name,
                                               const StoreOptions& options) {
  TBM_ASSIGN_OR_RETURN(const CatalogEntry* entry, Get(derived_id));
  if (entry->kind != CatalogKind::kDerivedObject) {
    return Status::InvalidArgument("ExpandAndStore requires a derived object");
  }
  TBM_ASSIGN_OR_RETURN(MediaValue value, Materialize(derived_id));
  TBM_ASSIGN_OR_RETURN(Interpretation interp,
                       StoreValue(store_.get(), value, new_name, options));
  TBM_ASSIGN_OR_RETURN(
      ObjectId interp_id,
      AddInterpretation(new_name + " interpretation", std::move(interp)));
  return AddMediaObject(new_name, interp_id, new_name);
}

// ---------------------------------------------------------------------------
// Durability

std::string MediaDatabase::CatalogPath(const std::string& dir) {
  return dir + "/catalog.tbm";
}

std::string MediaDatabase::LockPath(const std::string& dir) {
  return dir + "/LOCK";
}

Bytes MediaDatabase::SerializeSnapshot(
    uint64_t applied_lsn, uint64_t next_id,
    const std::map<ObjectId, std::shared_ptr<const CatalogEntry>>& catalog,
    const RightsManager& rights) {
  BinaryWriter body;
  body.WriteU64(applied_lsn);
  body.WriteU64(next_id);
  body.WriteVarU64(catalog.size());
  for (const auto& [id, entry] : catalog) {
    SerializeCatalogEntry(*entry, &body);
  }
  rights.Serialize(&body);
  BinaryWriter file;
  file.WriteU32(kCatalogMagic);
  file.WriteU32(kCatalogVersion);
  file.WriteU32(Crc32(body.buffer()));
  file.WriteRaw(body.buffer());
  return file.TakeBuffer();
}

Status MediaDatabase::Checkpoint() const {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "in-memory databases cannot be saved; open with a directory");
  }
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  return CheckpointLocked();
}

Status MediaDatabase::CheckpointLocked() const {
  uint64_t checkpoint_lsn = 0;
  std::map<ObjectId, std::shared_ptr<const CatalogEntry>> catalog_copy;
  RightsManager rights_copy;
  uint64_t next_id = 0;
  {
    // Rotation and the state copy are one atomic step against
    // mutators: the snapshot covers exactly the LSNs up to rotation.
    std::lock_guard<std::mutex> lock(catalog_mu_);
    TBM_ASSIGN_OR_RETURN(checkpoint_lsn, wal_->RotateForCheckpoint());
    catalog_copy = catalog_;  // shared_ptr copies — cheap, and COW
                              // keeps them stable while we serialize.
    rights_copy = rights_;
    next_id = next_id_;
  }
  Bytes snapshot =
      SerializeSnapshot(checkpoint_lsn, next_id, catalog_copy, rights_copy);
  return wal_->InstallCheckpoint(CatalogPath(dir_), snapshot, checkpoint_lsn);
}

Status MediaDatabase::Save() const {
  if (dir_.empty()) {
    return Status::FailedPrecondition(
        "in-memory databases cannot be saved; open with a directory");
  }
  return Checkpoint();
}

wal::WalStatus MediaDatabase::wal_status() const {
  if (wal_ == nullptr) return wal::WalStatus{};
  return wal_->GetStatus();
}

wal::RecoveryStats MediaDatabase::recovery_stats() const {
  if (wal_ == nullptr) return wal::RecoveryStats{};
  return wal_->recovery_stats();
}

Result<uint64_t> MediaDatabase::LoadCatalog() {
  std::string path = CatalogPath(dir_);
  bool has_super = wal_ != nullptr && wal_->has_superblock();
  if (!std::filesystem::exists(path)) {
    if (has_super && wal_->superblock().checkpoint_lsn > 0) {
      return Status::Corruption(
          "superblock present but catalog snapshot missing: " + path);
    }
    return uint64_t{0};  // Fresh database.
  }
  TBM_ASSIGN_OR_RETURN(Bytes bytes, ReadFileBytes(path));
  BinaryReader header(bytes);
  TBM_ASSIGN_OR_RETURN(uint32_t magic, header.ReadU32());
  if (magic != kCatalogMagic) {
    return Status::Corruption("not a catalog file: " + path);
  }
  TBM_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
  if (version == 0 || version > kCatalogVersion) {
    return Status::Unsupported("catalog version " + std::to_string(version));
  }
  TBM_ASSIGN_OR_RETURN(uint32_t crc, header.ReadU32());
  ByteSpan body(bytes.data() + header.position(),
                bytes.size() - header.position());
  if (Crc32(body) != crc) {
    return Status::Corruption("catalog checksum mismatch: " + path);
  }
  BinaryReader reader(body);
  uint64_t applied_lsn = 0;
  if (version >= 3) {
    TBM_ASSIGN_OR_RETURN(applied_lsn, reader.ReadU64());
  }
  TBM_ASSIGN_OR_RETURN(next_id_, reader.ReadU64());
  TBM_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarU64());
  for (uint64_t i = 0; i < count; ++i) {
    TBM_ASSIGN_OR_RETURN(CatalogEntry entry, DeserializeCatalogEntry(&reader));
    by_name_.emplace(entry.name, entry.id);
    catalog_.emplace(entry.id,
                     std::make_shared<const CatalogEntry>(std::move(entry)));
  }
  if (version >= 2) {
    TBM_ASSIGN_OR_RETURN(rights_, RightsManager::Deserialize(&reader));
  }
  if (has_super) {
    const wal::Superblock& super = wal_->superblock();
    if (applied_lsn < super.checkpoint_lsn) {
      return Status::Corruption(
          "catalog snapshot (LSN " + std::to_string(applied_lsn) +
          ") is older than the superblock checkpoint (LSN " +
          std::to_string(super.checkpoint_lsn) + ")");
    }
    // The stored checksum binds only when this is the exact snapshot
    // the superblock published; a newer one (crash between the
    // snapshot rename and the superblock publish) is self-checksummed
    // and legitimately differs.
    if (applied_lsn == super.checkpoint_lsn &&
        Crc32(bytes) != super.snapshot_crc) {
      return Status::Corruption(
          "catalog snapshot does not match superblock checksum: " + path);
    }
  }
  return applied_lsn;
}

Status MediaDatabase::Recover() {
  TBM_ASSIGN_OR_RETURN(uint64_t applied_lsn, LoadCatalog());
  uint64_t replayed = 0;
  uint64_t skipped = 0;
  for (const wal::WalRecord& record : wal_->recovered_records()) {
    if (record.lsn <= applied_lsn) {
      // Already folded into the snapshot (a checkpoint whose segment
      // deletion the crash interrupted).
      ++skipped;
      continue;
    }
    TBM_RETURN_IF_ERROR(ApplyWalRecord(record));
    ++replayed;
  }
  wal_->FinishRecovery(applied_lsn, replayed, skipped);
  return Status::OK();
}

}  // namespace tbm

#ifndef TBM_DB_EDIT_LIST_H_
#define TBM_DB_EDIT_LIST_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "time/timecode.h"

namespace tbm {

class MediaDatabase;
using ObjectId = uint64_t;

/// An edit decision list (paper §4.2, "Video editing"): "Editing video
/// involves the selection and ordering of sequences that are combined
/// to produce a new video object. The list of start and stop times of
/// these selections is called an edit list. Edit lists are derivation
/// objects, while edited video sequences are derived objects."
///
/// An EditList is authored as (source, in, out) selections — by frame
/// number or SMPTE timecode — optionally with transitions between
/// consecutive selections, then *compiled* into the database as a
/// chain of `video edit` / `video concat` / `video transition`
/// derivation objects. Nothing is copied; the result is a derived
/// object whose record size is the edit list itself.
class EditList {
 public:
  /// How one selection joins the previous one.
  enum class Join : uint8_t {
    kCut = 0,   ///< Plain concatenation.
    kFade = 1,  ///< Cross-fade over `transition_frames`.
    kWipe = 2,  ///< Left-to-right wipe over `transition_frames`.
  };

  struct Entry {
    ObjectId source = 0;     ///< A video media or derived object.
    int64_t in_frame = 0;    ///< First frame (inclusive).
    int64_t out_frame = 0;   ///< Past-the-end frame (exclusive).
    Join join = Join::kCut;  ///< Transition *into* this entry.
    int64_t transition_frames = 0;
  };

  EditList() = default;

  /// Appends a selection by frame numbers; [in, out) must be non-empty.
  Status AddSelection(ObjectId source, int64_t in_frame, int64_t out_frame,
                      Join join = Join::kCut, int64_t transition_frames = 0);

  /// Appends a selection addressed by SMPTE timecode at the given
  /// nominal fps (e.g. "00:00:01:12".."00:00:03:00" at 25).
  Status AddSelectionTimecode(ObjectId source, const std::string& in_tc,
                              const std::string& out_tc, int nominal_fps,
                              Join join = Join::kCut,
                              int64_t transition_frames = 0);

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Total output length in frames (transitions overlap their
  /// neighbours, shortening the program accordingly).
  int64_t OutputFrames() const;

  /// Compiles the list into derivation objects in `db` and returns the
  /// final derived object (named `name`). Intermediate objects are
  /// named `<name>_selN` / `<name>_joinN`.
  Result<ObjectId> Compile(MediaDatabase* db, const std::string& name) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace tbm

#endif  // TBM_DB_EDIT_LIST_H_

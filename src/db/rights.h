#ifndef TBM_DB_RIGHTS_H_
#define TBM_DB_RIGHTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/io.h"
#include "base/result.h"

namespace tbm {

using ObjectId = uint64_t;

/// Operations that rights control (paper §6: "Authorization and
/// electronic copyright need to be addressed" — this module is that
/// future-work item, scoped to the data model's operations).
enum class MediaOperation : uint8_t {
  kRead = 0,     ///< Materialize / present the object.
  kDerive = 1,   ///< Use it as a derivation input.
  kCompose = 2,  ///< Use it as a multimedia-object component.
  kModify = 3,   ///< Change attributes.
  kDelete = 4,   ///< Remove from the catalog.
};

std::string_view MediaOperationToString(MediaOperation op);

/// Bitmask of MediaOperation values.
using OperationMask = uint8_t;
inline constexpr OperationMask MaskOf(MediaOperation op) {
  return static_cast<OperationMask>(1u << static_cast<uint8_t>(op));
}
inline constexpr OperationMask kAllOperations = 0x1F;

/// Rights attached to one catalog object: an owner, a copyright
/// notice, and per-principal operation grants. The wildcard principal
/// "*" grants to everyone.
struct RightsRecord {
  std::string owner;
  std::string copyright_notice;
  std::map<std::string, OperationMask> grants;
};

/// Access control over catalog objects.
///
/// Policy: objects without a rights record are unrestricted (rights
/// are opt-in, matching a library whose callers may not care);
/// once a record exists, the owner may do anything and every other
/// principal only what a grant (direct or wildcard) allows.
class RightsManager {
 public:
  RightsManager() = default;

  /// Attaches a rights record; AlreadyExists if one is present.
  Status Protect(ObjectId object, const std::string& owner,
                 const std::string& copyright_notice = "");

  bool IsProtected(ObjectId object) const;

  Result<const RightsRecord*> Get(ObjectId object) const;

  /// Grants `operations` (a MaskOf(..) | MaskOf(..) bitmask) on
  /// `object` to `principal` ("*" = everyone). Only meaningful on
  /// protected objects.
  Status Grant(ObjectId object, const std::string& principal,
               OperationMask operations);

  /// Removes a principal's grants entirely.
  Status Revoke(ObjectId object, const std::string& principal);

  /// OK if `principal` may perform `op`; FailedPrecondition otherwise.
  Status Check(ObjectId object, const std::string& principal,
               MediaOperation op) const;

  /// Transfers ownership (only the current owner can — callers check).
  Status TransferOwnership(ObjectId object, const std::string& new_owner);

  /// Copyright propagation for derivation (paper: electronic
  /// copyright): a derived object's notice cites every protected
  /// input's notice.
  std::string DeriveCopyrightNotice(const std::vector<ObjectId>& inputs) const;

  void Serialize(BinaryWriter* writer) const;
  static Result<RightsManager> Deserialize(BinaryReader* reader);

 private:
  std::map<ObjectId, RightsRecord> records_;
};

}  // namespace tbm

#endif  // TBM_DB_RIGHTS_H_

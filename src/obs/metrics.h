#ifndef TBM_OBS_METRICS_H_
#define TBM_OBS_METRICS_H_

/// Low-overhead, thread-safe metrics: monotonic counters, gauges and
/// fixed-bucket latency histograms, collected in a process-wide
/// Registry and exported as text or JSON.
///
/// Design constraints (DESIGN.md §7):
///  - recording must be cheap enough for the derivation hot path
///    (< 2% overhead on the derivation bench): counters and histogram
///    buckets are relaxed atomics, handle lookup happens once at the
///    instrumentation site (cache the returned pointer), never per
///    event;
///  - handles returned by Registry::counter()/gauge()/histogram() are
///    valid for the registry's lifetime (node-based storage);
///  - compiling with -DTBM_OBS_DISABLED turns every instrument into an
///    empty struct whose methods are inline no-ops, so the entire
///    subsystem costs nothing when switched off.
///
/// Units are part of the metric name by convention: `*_us` histograms
/// record microseconds, `*_bytes` counters record bytes.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace tbm::obs {

/// Histogram shape: bucket 0 counts values <= 1; bucket i (i >= 1)
/// counts values in (2^(i-1), 2^i]; the last bucket absorbs everything
/// larger than 2^(kHistogramBuckets-2). Power-of-two bounds keep
/// Record() branch-free (one bit-width computation) while spanning
/// sub-microsecond to multi-hour latencies.
inline constexpr int kHistogramBuckets = 40;

/// Inclusive upper bound of bucket `i`.
constexpr uint64_t HistogramBucketBound(int i) {
  return i >= kHistogramBuckets - 1 ? UINT64_MAX : (1ull << i);
}

/// Bucket index a value lands in.
int HistogramBucketIndex(uint64_t value);

/// Point-in-time copy of one histogram. Plain data, identical in
/// enabled and disabled builds.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< Smallest recorded value (0 when count == 0).
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const { return count > 0 ? static_cast<double>(sum) / count : 0.0; }

  /// Quantile estimate (q in [0, 1]): finds the bucket holding the
  /// q-th sample and interpolates linearly inside it, clamped to the
  /// observed [min, max].
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

/// Point-in-time copy of every instrument in a Registry. Maps are
/// ordered (lexicographically by name), so iteration — and therefore
/// every exported rendering — is deterministic; labeled variants of a
/// base name (`name{key=value}`) sort adjacent to each other.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Multi-line human-readable rendering.
  std::string ToString() const;

  /// {"counters":{..},"gauges":{..},"histograms":{name:{count,sum,
  /// mean,min,max,p50,p95,p99}}}
  std::string ToJson() const;
};

#ifndef TBM_OBS_DISABLED

/// Monotonic event counter. All methods are thread-safe.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (cache occupancy, live sessions). Thread-safe.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (see kHistogramBuckets). Thread-safe;
/// Record() is a handful of relaxed atomic operations.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
};

/// Name -> instrument map. Instruments are created on first use and
/// live as long as the registry; the returned pointers are stable, so
/// instrumentation sites fetch them once (static local or member) and
/// pay only the atomic op per event afterwards.
class Registry {
 public:
  /// The process-wide registry every built-in instrumentation site
  /// records into.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Labeled variants: one instrument per (name, key, value) triple,
  /// stored under the mangled name `name{key=value}` (parseable back
  /// with obs::ParseMetricName). One label dimension is deliberate —
  /// enough for per-QoS-class SLO metrics without a cardinality
  /// explosion. Handles are stable like the unlabeled ones; fetch once
  /// per (site, label) and cache.
  Counter* counter(std::string_view name, std::string_view key,
                   std::string_view value);
  Gauge* gauge(std::string_view name, std::string_view key,
               std::string_view value);
  Histogram* histogram(std::string_view name, std::string_view key,
                       std::string_view value);

  /// Deterministic: instruments appear in sorted name order (std::map
  /// storage), so repeated snapshots of the same registry render
  /// identically.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument (handles stay valid). Bench/test hygiene.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Steady-clock nanoseconds for latency sampling. Returns 0 in
/// disabled builds, so timing code costs nothing there.
inline int64_t NowTicksNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Records the enclosing scope's duration (µs) into a histogram.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* histogram)
      : histogram_(histogram), start_ns_(NowTicksNs()) {}
  ~ScopedTimerUs() {
    histogram_->Record(static_cast<uint64_t>(
        std::max<int64_t>(0, NowTicksNs() - start_ns_) / 1000));
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_ns_;
};

#else  // TBM_OBS_DISABLED: every instrument is a true no-op.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Record(uint64_t) {}
  HistogramSnapshot Snapshot() const { return {}; }
  void Reset() {}
};

class Registry {
 public:
  static Registry& Global() {
    static Registry registry;
    return registry;
  }

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view) { return &counter_; }
  Gauge* gauge(std::string_view) { return &gauge_; }
  Histogram* histogram(std::string_view) { return &histogram_; }
  Counter* counter(std::string_view, std::string_view, std::string_view) {
    return &counter_;
  }
  Gauge* gauge(std::string_view, std::string_view, std::string_view) {
    return &gauge_;
  }
  Histogram* histogram(std::string_view, std::string_view, std::string_view) {
    return &histogram_;
  }

  MetricsSnapshot Snapshot() const { return {}; }
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline int64_t NowTicksNs() { return 0; }

class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram*) {}
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;
};

#endif  // TBM_OBS_DISABLED

}  // namespace tbm::obs

#endif  // TBM_OBS_METRICS_H_

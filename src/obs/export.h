#ifndef TBM_OBS_EXPORT_H_
#define TBM_OBS_EXPORT_H_

/// Metric-name conventions and text expositions for scraping.
///
/// The registry stores labeled instruments under mangled names
/// (`name{key=value}`, see Registry::counter overloads); this header
/// is the single place that knows how to parse those names back apart
/// and render a MetricsSnapshot as Prometheus text exposition format
/// (v0.0.4) for `tbmctl top --prom` and external scrapers.
///
/// Everything here operates on plain snapshot data, so it behaves
/// identically in TBM_OBS_DISABLED builds (snapshots are just empty).

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace tbm::obs {

/// A registry metric name split into its base name and (at most one)
/// label. Unlabeled names parse with empty key/value.
struct ParsedMetricName {
  std::string_view base;
  std::string_view label_key;    ///< Empty if unlabeled.
  std::string_view label_value;  ///< Empty if unlabeled.

  bool labeled() const { return !label_key.empty(); }
};

/// Splits `name{key=value}` into its parts; names without a
/// well-formed `{key=value}` suffix are returned whole as `base`.
/// The views alias `name` — keep it alive.
ParsedMetricName ParseMetricName(std::string_view name);

/// Prometheus-legal metric name for a registry base name: prefixed
/// `tbm_`, with every character outside [a-zA-Z0-9_] replaced by '_'
/// (so `serve.read_us` becomes `tbm_serve_read_us`).
std::string PrometheusName(std::string_view base);

/// Renders a snapshot as Prometheus text exposition v0.0.4:
/// counters as `counter`, gauges as `gauge`, histograms as native
/// `histogram` families with cumulative `le` buckets plus `_sum` and
/// `_count`. One `# TYPE` line per family; labeled variants of a base
/// name share the family (the snapshot's sorted order makes them
/// adjacent). Output is deterministic for a given snapshot.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace tbm::obs

#endif  // TBM_OBS_EXPORT_H_

#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <random>

namespace tbm::obs {

namespace {

void AppendEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') *out += '\\';
    *out += *p;
  }
}

#ifndef TBM_OBS_DISABLED
uint64_t Random64() {
  static std::mutex mu;
  static std::mt19937_64 rng = [] {
    std::random_device rd;
    return std::mt19937_64((uint64_t(rd()) << 32) ^ rd());
  }();
  std::lock_guard<std::mutex> lock(mu);
  return rng();
}
#endif

}  // namespace

uint64_t NewTraceId() {
#ifdef TBM_OBS_DISABLED
  return 0;
#else
  uint64_t id;
  do {
    id = Random64();
  } while (id == 0);
  return id;
#endif
}

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[224];
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, span.name != nullptr ? span.name : "?");
    std::snprintf(
        buf, sizeof(buf),
        "\",\"cat\":\"tbm\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%u,\"args\":{\"id\":%llu,\"parent\":%llu,"
        "\"trace\":%llu}}",
        static_cast<double>(span.start_ns) / 1e3,
        static_cast<double>(span.duration_ns) / 1e3, span.thread_id,
        (unsigned long long)span.span_id, (unsigned long long)span.parent_id,
        (unsigned long long)span.trace_id);
    out += buf;
  }
  out += "]}";
  return out;
}

std::vector<SpanRecord> SpansForTrace(const std::vector<SpanRecord>& spans,
                                      uint64_t trace_id) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& span : spans) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& path) {
  std::string json = ToChromeTraceJson(spans);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file " + path);
  }
  size_t written =
      json.empty() ? 0 : std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  if (written != json.size() || rc != 0) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

#ifndef TBM_OBS_DISABLED

namespace {

/// Per-thread stack top for parent linking (shared across tracers; in
/// practice one tracer is live per instrumented code path).
thread_local uint64_t tls_current_span = 0;

/// The trace id the thread's innermost live span belongs to. Spans
/// nested under a trace-adopting span inherit it automatically.
thread_local uint64_t tls_current_trace = 0;

std::atomic<uint64_t> g_next_tracer_uid{1};

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Seqlock-guarded record slot. Every field is an atomic, so the
/// single-writer/any-reader protocol is data-race-free: the writer
/// marks the slot busy (odd seq), publishes the fields, then stamps the
/// generation (even seq); readers accept a slot only if the generation
/// matches before and after reading the fields.
struct Tracer::Slot {
  std::atomic<uint64_t> seq{0};  ///< 2n+1 = writing record n; 2n+2 = done.
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> duration_ns{0};
};

struct Tracer::ThreadBuffer {
  uint32_t thread_id = 0;
  std::atomic<uint64_t> cursor{0};       ///< Records ever written.
  std::atomic<uint64_t> clear_below{0};  ///< Collect() ignores older records.
  std::array<Slot, kRingCapacity> slots;
};

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;  // Never destroyed: spans on
  return *tracer;                      // exiting threads must stay safe.
}

Tracer::Tracer()
    : uid_(g_next_tracer_uid.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(SteadyNowNs()) {
  // Seed span ids with a random high-32-bit base so ids minted in
  // different processes (client and server of one trace) don't collide.
  next_span_id_.store((Random64() << 32) | 1, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

int64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

const char* Tracer::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& owned : interned_) {
    if (*owned == name) return owned->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(name));
  return interned_.back()->c_str();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  struct CacheEntry {
    uint64_t uid = 0;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  thread_local std::vector<CacheEntry> tls_buffers;
  for (const CacheEntry& entry : tls_buffers) {
    if (entry.uid == uid_) return entry.buffer.get();
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffer->thread_id = static_cast<uint32_t>(buffers_.size() + 1);
    buffers_.push_back(buffer);
  }
  tls_buffers.push_back({uid_, buffer});
  return tls_buffers.back().buffer.get();
}

void Tracer::Record(const char* name, uint64_t span_id, uint64_t parent_id,
                    uint64_t trace_id, int64_t start_ns, int64_t duration_ns) {
  ThreadBuffer* buffer = BufferForThisThread();
  uint64_t index = buffer->cursor.load(std::memory_order_relaxed);
  Slot& slot = buffer->slots[index % kRingCapacity];
  slot.seq.store(2 * index + 1, std::memory_order_relaxed);
  // The release fence orders the busy marker before the field stores:
  // a reader that observes any new field value will also observe the
  // odd seq (or a later one) and discard the slot.
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_id.store(parent_id, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.seq.store(2 * index + 2, std::memory_order_release);
  buffer->cursor.store(index + 1, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& buffer : buffers) {
    uint64_t end = buffer->cursor.load(std::memory_order_acquire);
    uint64_t begin = end > kRingCapacity ? end - kRingCapacity : 0;
    begin = std::max(begin, buffer->clear_below.load(std::memory_order_acquire));
    for (uint64_t i = begin; i < end; ++i) {
      const Slot& slot = buffer->slots[i % kRingCapacity];
      if (slot.seq.load(std::memory_order_acquire) != 2 * i + 2) continue;
      SpanRecord record;
      record.name = slot.name.load(std::memory_order_relaxed);
      record.span_id = slot.span_id.load(std::memory_order_relaxed);
      record.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      record.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
      record.thread_id = buffer->thread_id;
      // Pairs with the writer's release fence: if any field above came
      // from a newer record, this re-check sees its odd/newer seq.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != 2 * i + 2) continue;
      out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    buffer->clear_below.store(buffer->cursor.load(std::memory_order_acquire),
                              std::memory_order_release);
  }
}

uint64_t Tracer::CurrentSpanId() { return tls_current_span; }

uint64_t Tracer::CurrentTraceId() { return tls_current_trace; }

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name)
    : ScopedSpan(tracer, name, tls_current_span) {}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, uint64_t parent_id)
    : ScopedSpan(tracer, name, /*trace_id=*/0, parent_id) {}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, uint64_t trace_id,
                       uint64_t parent_id)
    : tracer_(tracer), name_(name), parent_id_(parent_id) {
  if (!tracer_->enabled()) {
    span_id_ = 0;
    trace_id_ = 0;
    saved_current_ = 0;
    saved_trace_ = 0;
    start_ns_ = 0;
    return;
  }
  span_id_ = tracer_->next_span_id_.fetch_add(1, std::memory_order_relaxed);
  trace_id_ = trace_id != 0 ? trace_id : tls_current_trace;
  saved_current_ = tls_current_span;
  saved_trace_ = tls_current_trace;
  tls_current_span = span_id_;
  tls_current_trace = trace_id_;
  start_ns_ = tracer_->NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (span_id_ == 0) return;
  int64_t duration = tracer_->NowNs() - start_ns_;
  tls_current_span = saved_current_;
  tls_current_trace = saved_trace_;
  tracer_->Record(name_, span_id_, parent_id_, trace_id_, start_ns_, duration);
}

#endif  // !TBM_OBS_DISABLED

}  // namespace tbm::obs

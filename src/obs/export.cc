#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace tbm::obs {

namespace {

void AppendEscapedLabelValue(std::string* out, std::string_view value) {
  for (char c : value) {
    if (c == '\\' || c == '"') *out += '\\';
    if (c == '\n') {
      *out += "\\n";
      continue;
    }
    *out += c;
  }
}

/// `{key="value"}` or `{key="value",extra}` — empty string if no label
/// and no extra.
void AppendLabels(std::string* out, const ParsedMetricName& parsed,
                  std::string_view extra = {}) {
  if (!parsed.labeled() && extra.empty()) return;
  *out += '{';
  if (parsed.labeled()) {
    out->append(parsed.label_key);
    *out += "=\"";
    AppendEscapedLabelValue(out, parsed.label_value);
    *out += '"';
    if (!extra.empty()) *out += ',';
  }
  out->append(extra);
  *out += '}';
}

/// Emits `# TYPE family type` once per family. Relies on the snapshot
/// maps being sorted, which keeps labeled variants of a base adjacent.
void MaybeEmitType(std::string* out, const std::string& family,
                   const char* type, std::string* last_family) {
  if (family == *last_family) return;
  *last_family = family;
  *out += "# TYPE ";
  *out += family;
  *out += ' ';
  *out += type;
  *out += '\n';
}

}  // namespace

ParsedMetricName ParseMetricName(std::string_view name) {
  ParsedMetricName out;
  out.base = name;
  if (name.empty() || name.back() != '}') return out;
  size_t open = name.find('{');
  if (open == std::string_view::npos || open == 0) return out;
  std::string_view inner = name.substr(open + 1, name.size() - open - 2);
  size_t eq = inner.find('=');
  if (eq == std::string_view::npos || eq == 0) return out;
  out.base = name.substr(0, open);
  out.label_key = inner.substr(0, eq);
  out.label_value = inner.substr(eq + 1);
  return out;
}

std::string PrometheusName(std::string_view base) {
  std::string out = "tbm_";
  out.reserve(base.size() + 4);
  for (char c : base) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[128];
  std::string last_family;

  for (const auto& [name, value] : snapshot.counters) {
    ParsedMetricName parsed = ParseMetricName(name);
    std::string family = PrometheusName(parsed.base);
    MaybeEmitType(&out, family, "counter", &last_family);
    out += family;
    AppendLabels(&out, parsed);
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out += buf;
  }

  for (const auto& [name, value] : snapshot.gauges) {
    ParsedMetricName parsed = ParseMetricName(name);
    std::string family = PrometheusName(parsed.base);
    MaybeEmitType(&out, family, "gauge", &last_family);
    out += family;
    AppendLabels(&out, parsed);
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
    out += buf;
  }

  for (const auto& [name, h] : snapshot.histograms) {
    ParsedMetricName parsed = ParseMetricName(name);
    std::string family = PrometheusName(parsed.base);
    MaybeEmitType(&out, family, "histogram", &last_family);
    // Cumulative le buckets; only bounds whose bucket is non-empty are
    // emitted (plus the mandatory +Inf), which keeps a 40-bucket
    // histogram readable while staying format-conformant.
    uint64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets - 1; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      out += family;
      out += "_bucket";
      std::snprintf(buf, sizeof(buf), "le=\"%" PRIu64 "\"",
                    HistogramBucketBound(i));
      AppendLabels(&out, parsed, buf);
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
      out += buf;
    }
    out += family;
    out += "_bucket";
    AppendLabels(&out, parsed, "le=\"+Inf\"");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
    out += buf;
    out += family;
    out += "_sum";
    AppendLabels(&out, parsed);
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.sum);
    out += buf;
    out += family;
    out += "_count";
    AppendLabels(&out, parsed);
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
    out += buf;
  }

  return out;
}

}  // namespace tbm::obs

#ifndef TBM_OBS_FLIGHT_H_
#define TBM_OBS_FLIGHT_H_

/// Per-session flight recorder: a fixed-size ring of recent
/// significant events (state transitions, degradations, faults, slow
/// reads) that costs a mutexed append per event and is dumped as
/// structured text when something goes wrong — eviction, fault storm,
/// or crash — so a post-mortem doesn't need a re-run under tracing.
///
/// Unlike the span tracer (process-wide, high-frequency, sampled), a
/// FlightRecorder is owned by one session object and records rare
/// events; a mutex is the right tool and keeps the ring TSan-clean
/// when a dumper races the recording session.
///
/// Live recorders register themselves in a process-wide list so a
/// crash handler can call DumpAllFlightRecorders() and see every
/// in-flight session's recent history.
///
/// With -DTBM_OBS_DISABLED, Record() is an inline no-op and Dump()
/// returns an empty string.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tbm::obs {

enum class FlightEventType : uint8_t {
  kState = 0,    ///< Session state transition; `what` names the new state.
  kAdmit = 1,    ///< Admission outcome; a = stride granted.
  kDegrade = 2,  ///< QoS degradation; a = old stride, b = new stride.
  kSeek = 3,     ///< Random access; a = target element.
  kFault = 4,    ///< Read/derive fault; a = element index, b = micros lost.
  kSlowRead = 5, ///< Element read over threshold; a = element, b = micros.
  kEvict = 6,    ///< Forced teardown; `what` is the cause.
  kNote = 7,     ///< Free-form marker.
  kCheckpoint = 8,  ///< Durable-catalog checkpoint; a = checkpoint LSN,
                    ///< b = WAL bytes truncated.
  kRecovery = 9,    ///< Crash recovery on open; a = records replayed,
                    ///< b = bytes discarded from a torn tail.
};

/// One recorded event. `what` must be a string with static storage
/// duration (a literal or an interned name) — the recorder stores the
/// pointer, not a copy.
struct FlightEvent {
  int64_t t_us = 0;  ///< Microseconds since the recorder was created.
  FlightEventType type = FlightEventType::kNote;
  const char* what = "";
  uint64_t a = 0;
  uint64_t b = 0;
};

const char* FlightEventTypeName(FlightEventType type);

#ifndef TBM_OBS_DISABLED

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Identifies this recorder in dumps ("session 3 clip"); copied.
  void set_label(std::string label);

  void Record(FlightEventType type, const char* what, uint64_t a = 0,
              uint64_t b = 0);

  /// Oldest-first copy of the retained events.
  std::vector<FlightEvent> Snapshot() const;

  /// Events ever recorded (>= retained when the ring has wrapped).
  uint64_t recorded() const;

  /// Structured text: a header line naming the recorder and `cause`,
  /// then one line per retained event, oldest first. Empty cause is
  /// rendered as "dump requested".
  std::string Dump(std::string_view cause) const;

 private:
  mutable std::mutex mu_;
  std::string label_;
  const size_t capacity_;
  const int64_t epoch_ns_;
  uint64_t recorded_ = 0;
  std::vector<FlightEvent> ring_;  ///< ring_[recorded_ % capacity_] is next.
};

/// Dumps of every live (not yet destroyed) FlightRecorder,
/// concatenated — the crash-handler view. Order is registration order.
std::string DumpAllFlightRecorders(std::string_view cause);

#else  // TBM_OBS_DISABLED: recording compiles to nothing.

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 0;

  explicit FlightRecorder(size_t = 0) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_label(std::string) {}
  void Record(FlightEventType, const char*, uint64_t = 0, uint64_t = 0) {}
  std::vector<FlightEvent> Snapshot() const { return {}; }
  uint64_t recorded() const { return 0; }
  std::string Dump(std::string_view) const { return {}; }
};

inline std::string DumpAllFlightRecorders(std::string_view) { return {}; }

#endif  // TBM_OBS_DISABLED

}  // namespace tbm::obs

#endif  // TBM_OBS_FLIGHT_H_

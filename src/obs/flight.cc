#include "obs/flight.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace tbm::obs {

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kState:
      return "STATE";
    case FlightEventType::kAdmit:
      return "ADMIT";
    case FlightEventType::kDegrade:
      return "DEGRADE";
    case FlightEventType::kSeek:
      return "SEEK";
    case FlightEventType::kFault:
      return "FAULT";
    case FlightEventType::kSlowRead:
      return "SLOW_READ";
    case FlightEventType::kEvict:
      return "EVICT";
    case FlightEventType::kNote:
      return "NOTE";
    case FlightEventType::kCheckpoint:
      return "CHECKPOINT";
    case FlightEventType::kRecovery:
      return "RECOVERY";
  }
  return "?";
}

#ifndef TBM_OBS_DISABLED

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Live-recorder list for DumpAllFlightRecorders. The registry mutex
/// is ordered before any recorder's own mutex (DumpAll holds it while
/// calling Dump); recorder methods never touch the registry, so the
/// order is acyclic.
struct LiveRecorders {
  std::mutex mu;
  std::vector<const FlightRecorder*> list;

  static LiveRecorders& Get() {
    static LiveRecorders* live = new LiveRecorders;  // Never destroyed:
    return *live;  // recorders may outlive static destruction order.
  }
};

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)), epoch_ns_(SteadyNowNs()) {
  ring_.reserve(capacity_);
  LiveRecorders& live = LiveRecorders::Get();
  std::lock_guard<std::mutex> lock(live.mu);
  live.list.push_back(this);
}

FlightRecorder::~FlightRecorder() {
  LiveRecorders& live = LiveRecorders::Get();
  std::lock_guard<std::mutex> lock(live.mu);
  live.list.erase(std::remove(live.list.begin(), live.list.end(), this),
                  live.list.end());
}

void FlightRecorder::set_label(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  label_ = std::move(label);
}

void FlightRecorder::Record(FlightEventType type, const char* what, uint64_t a,
                            uint64_t b) {
  FlightEvent event;
  event.t_us = (SteadyNowNs() - epoch_ns_) / 1000;
  event.type = type;
  event.what = what != nullptr ? what : "";
  event.a = a;
  event.b = b;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[recorded_ % capacity_] = event;
  }
  ++recorded_;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  uint64_t begin = recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  for (uint64_t i = begin; i < recorded_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::string FlightRecorder::Dump(std::string_view cause) const {
  std::vector<FlightEvent> events;
  std::string label;
  uint64_t recorded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    label = label_;
    recorded = recorded_;
    uint64_t begin = recorded_ > capacity_ ? recorded_ - capacity_ : 0;
    events.reserve(recorded_ - begin);
    for (uint64_t i = begin; i < recorded_; ++i) {
      events.push_back(ring_[i % capacity_]);
    }
  }
  std::string out = "=== flight recorder";
  if (!label.empty()) {
    out += ' ';
    out += label;
  }
  out += " — ";
  if (cause.empty()) cause = "dump requested";
  out.append(cause);
  char line[192];
  std::snprintf(line, sizeof(line),
                " (%llu events recorded, last %zu shown) ===\n",
                (unsigned long long)recorded, events.size());
  out += line;
  for (const FlightEvent& event : events) {
    std::snprintf(line, sizeof(line),
                  "  t+%9lldus %-9s %-32s a=%llu b=%llu\n",
                  (long long)event.t_us, FlightEventTypeName(event.type),
                  event.what, (unsigned long long)event.a,
                  (unsigned long long)event.b);
    out += line;
  }
  return out;
}

std::string DumpAllFlightRecorders(std::string_view cause) {
  LiveRecorders& live = LiveRecorders::Get();
  std::lock_guard<std::mutex> lock(live.mu);
  std::string out;
  for (const FlightRecorder* recorder : live.list) {
    out += recorder->Dump(cause);
  }
  return out;
}

#endif  // !TBM_OBS_DISABLED

}  // namespace tbm::obs

#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

#include "base/thread_pool.h"

namespace tbm::obs {

int HistogramBucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  int index = std::bit_width(value - 1);
  return index < kHistogramBuckets - 1 ? index : kHistogramBuckets - 1;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  // Rank of the q-th sample, 1-based.
  double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    double lo = i == 0 ? 0.0 : static_cast<double>(HistogramBucketBound(i - 1));
    double hi = i == kHistogramBuckets - 1
                    ? static_cast<double>(max)
                    : static_cast<double>(HistogramBucketBound(i));
    lo = std::max(lo, static_cast<double>(min));
    hi = std::min(hi, static_cast<double>(max));
    if (hi < lo) hi = lo;
    double fraction = (rank - before) / static_cast<double>(buckets[i]);
    return lo + fraction * (hi - lo);
  }
  return static_cast<double>(max);
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  char line[256];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(line, sizeof(line), "  %-34s %12" PRIu64 "\n",
                    name.c_str(), value);
      out += line;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      std::snprintf(line, sizeof(line), "  %-34s %12" PRId64 "\n",
                    name.c_str(), value);
      out += line;
    }
  }
  if (!histograms.empty()) {
    out += "histograms (count / mean / p50 / p95 / p99 / max):\n";
    for (const auto& [name, h] : histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-34s %8" PRIu64 "  %10.1f %10.1f %10.1f %10.1f %10" PRIu64
                    "\n",
                    name.c_str(), h.count, h.Mean(), h.P50(), h.P95(), h.P99(),
                    h.max);
      out += line;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  *out += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\":";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[160];
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonKey(&out, name);
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"mean\":%.3f,\"min\":%" PRIu64 ",\"max\":%" PRIu64
                  ",\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}",
                  h.count, h.sum, h.Mean(), h.min, h.max, h.P50(), h.P95(),
                  h.P99());
    out += buf;
  }
  out += "}}";
  return out;
}

#ifndef TBM_OBS_DISABLED

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[HistogramBucketIndex(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  out.min = min == UINT64_MAX ? 0 : min;
  out.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry;  // Never destroyed: handles
  return *registry;                          // must outlive static dtors.
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

namespace {

/// Mangled storage key for a labeled instrument: `name{key=value}`.
/// ParseMetricName (obs/export.h) is the inverse.
std::string LabeledName(std::string_view name, std::string_view key,
                        std::string_view value) {
  std::string out;
  out.reserve(name.size() + key.size() + value.size() + 3);
  out.append(name);
  out += '{';
  out.append(key);
  out += '=';
  out.append(value);
  out += '}';
  return out;
}

}  // namespace

Counter* Registry::counter(std::string_view name, std::string_view key,
                           std::string_view value) {
  return counter(LabeledName(name, key, value));
}

Gauge* Registry::gauge(std::string_view name, std::string_view key,
                       std::string_view value) {
  return gauge(LabeledName(name, key, value));
}

Histogram* Registry::histogram(std::string_view name, std::string_view key,
                               std::string_view value) {
  return histogram(LabeledName(name, key, value));
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace(name, histogram->Snapshot());
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Set(0);
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

// ---------------------------------------------------------------------------
// ThreadPool instrumentation. base/ sits below obs/ in the layering,
// so ThreadPool cannot record into the registry itself; it exposes
// hook slots instead (see base/thread_pool.h) and obs installs
// recorders here during static initialization. Every pool in the
// process — derivation engine, prefetch I/O, the serve scheduler —
// then reports queue depth and task latency for free.
//
// All pools share one gauge/histogram pair: the registry answers "is
// the process's task execution backed up", not "which pool"; per-pool
// attribution comes from spans.

namespace {

struct PoolMetrics {
  Gauge* queue_depth;
  Histogram* task_us;
  Histogram* queue_wait_us;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      auto& registry = Registry::Global();
      return PoolMetrics{registry.gauge("pool.queue_depth"),
                         registry.histogram("pool.task_us"),
                         registry.histogram("pool.queue_wait_us")};
    }();
    return metrics;
  }
};

void RecordPoolDepth(int64_t depth) { PoolMetrics::Get().queue_depth->Set(depth); }

void RecordPoolTask(uint64_t queue_us, uint64_t run_us) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.queue_wait_us->Record(queue_us);
  metrics.task_us->Record(run_us);
}

/// Installs the hooks before main() (and before any pool can be
/// constructed by application code). TBM_OBS_DISABLED builds never
/// reach this file's enabled section, so disabled pools stay
/// hook-free.
[[maybe_unused]] const bool g_pool_hooks_installed = [] {
  ThreadPoolHooks hooks;
  hooks.on_queue_depth = &RecordPoolDepth;
  hooks.on_task_done = &RecordPoolTask;
  ThreadPool::InstallHooks(hooks);
  return true;
}();

}  // namespace

#endif  // !TBM_OBS_DISABLED

}  // namespace tbm::obs

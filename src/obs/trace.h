#ifndef TBM_OBS_TRACE_H_
#define TBM_OBS_TRACE_H_

/// Span-based tracing: scoped RAII spans with parent links, recorded
/// into lock-free per-thread ring buffers and exportable as Chrome
/// `trace_event` JSON (loadable in chrome://tracing or Perfetto).
///
/// The write path is wait-free for the recording thread: each thread
/// owns a fixed-capacity ring of seqlock-guarded slots (every field is
/// a relaxed atomic, so the collector never blocks a writer and the
/// protocol is ThreadSanitizer-clean). When a ring wraps, the oldest
/// spans are overwritten — tracing bounds its own memory instead of
/// stalling the traced code.
///
/// Span names must outlive the tracer: pass string literals, or
/// Tracer::Intern() a dynamic name once and reuse the pointer.
///
/// With -DTBM_OBS_DISABLED, ScopedSpan is an empty struct and every
/// Tracer method is an inline no-op.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace tbm::obs {

/// One finished span. Times are nanoseconds on the tracer's steady
/// clock, relative to the tracer's construction.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span.
  uint64_t trace_id = 0;   ///< 0 = no cross-boundary trace (process-local).
  uint32_t thread_id = 0;  ///< Dense per-tracer id, assigned on first span.
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

/// A fresh random nonzero trace id, safe to mint independently in many
/// processes (collision odds are 2^-64 per pair). Returns 0 in
/// TBM_OBS_DISABLED builds, which is how callers know not to attach
/// trace context to outbound requests.
uint64_t NewTraceId();

/// Serializes spans as Chrome trace_event JSON ("X" complete events;
/// ts/dur in microseconds; span/parent/trace ids in args).
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans);

/// The subset of `spans` belonging to `trace_id`, order preserved —
/// the merged single-request timeline once client- and server-side
/// spans share one collection (loopback) or one merged file.
std::vector<SpanRecord> SpansForTrace(const std::vector<SpanRecord>& spans,
                                      uint64_t trace_id);

/// Writes ToChromeTraceJson(spans) to `path`.
Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& path);

#ifndef TBM_OBS_DISABLED

class Tracer {
 public:
  /// Spans each thread retains; older spans are overwritten on wrap.
  static constexpr size_t kRingCapacity = 8192;

  /// The process-wide tracer every built-in ScopedSpan records into.
  static Tracer& Global();

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime switch: when disabled, ScopedSpan construction is a single
  /// relaxed load and records nothing. Enabled by default.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Returns a stable pointer for a dynamic span name (e.g. an operator
  /// name). Interning is mutex-guarded; do it once per name, not per
  /// span.
  const char* Intern(std::string_view name);

  /// Snapshot of every thread's retained spans, oldest-first per
  /// thread. Never blocks writers; a span being written during
  /// collection is simply skipped.
  std::vector<SpanRecord> Collect() const;

  /// Forgets all recorded spans (writers are unaffected).
  void Clear();

  /// The innermost live span id on the calling thread (0 if none).
  /// Capture this before handing work to another thread and pass it to
  /// ScopedSpan's explicit-parent constructor to keep parent links
  /// across thread hops.
  static uint64_t CurrentSpanId();

  /// The trace id the calling thread's innermost live span belongs to
  /// (0 if none). Like CurrentSpanId, capture before a thread hop.
  static uint64_t CurrentTraceId();

 private:
  friend class ScopedSpan;
  struct Slot;
  struct ThreadBuffer;

  ThreadBuffer* BufferForThisThread();
  void Record(const char* name, uint64_t span_id, uint64_t parent_id,
              uint64_t trace_id, int64_t start_ns, int64_t duration_ns);
  int64_t NowNs() const;

  const uint64_t uid_;  ///< Distinguishes tracers in thread-local caches.
  const int64_t epoch_ns_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_span_id_{1};
  mutable std::mutex mu_;  ///< Guards buffers_ and interned_.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> interned_;
};

/// RAII span: records [construction, destruction) into the tracer.
/// Nests naturally — the innermost live span on the thread becomes the
/// parent — or takes an explicit parent id for cross-thread edges. The
/// three-argument form additionally adopts a trace id (e.g. one that
/// arrived over the wire): the span and everything nested under it on
/// this thread records into that trace. trace_id 0 means "inherit the
/// thread's current trace".
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(&Tracer::Global(), name) {}
  ScopedSpan(const char* name, uint64_t parent_id)
      : ScopedSpan(&Tracer::Global(), name, parent_id) {}
  ScopedSpan(const char* name, uint64_t trace_id, uint64_t parent_id)
      : ScopedSpan(&Tracer::Global(), name, trace_id, parent_id) {}
  ScopedSpan(Tracer* tracer, const char* name);
  ScopedSpan(Tracer* tracer, const char* name, uint64_t parent_id);
  ScopedSpan(Tracer* tracer, const char* name, uint64_t trace_id,
             uint64_t parent_id);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id (0 when the tracer was disabled at construction).
  uint64_t span_id() const { return span_id_; }

  /// The trace this span records into (0 = process-local).
  uint64_t trace_id() const { return trace_id_; }

 private:
  Tracer* tracer_;
  const char* name_;
  uint64_t span_id_;
  uint64_t parent_id_;
  uint64_t trace_id_;
  uint64_t saved_current_;
  uint64_t saved_trace_;
  int64_t start_ns_;
};

#else  // TBM_OBS_DISABLED: tracing compiles to nothing.

class Tracer {
 public:
  static constexpr size_t kRingCapacity = 0;

  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool) {}
  bool enabled() const { return false; }
  const char* Intern(std::string_view) { return ""; }
  std::vector<SpanRecord> Collect() const { return {}; }
  void Clear() {}
  static uint64_t CurrentSpanId() { return 0; }
  static uint64_t CurrentTraceId() { return 0; }
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const char*, uint64_t) {}
  ScopedSpan(const char*, uint64_t, uint64_t) {}
  ScopedSpan(Tracer*, const char*) {}
  ScopedSpan(Tracer*, const char*, uint64_t) {}
  ScopedSpan(Tracer*, const char*, uint64_t, uint64_t) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t span_id() const { return 0; }
  uint64_t trace_id() const { return 0; }
};

#endif  // TBM_OBS_DISABLED

}  // namespace tbm::obs

#endif  // TBM_OBS_TRACE_H_

#include "blob/memory_store.h"

#include "blob/store_metrics.h"

namespace tbm {

namespace {
Status NoSuchBlob(BlobId id) {
  return Status::NotFound("no such BLOB: " + std::to_string(id));
}
}  // namespace

Result<BlobId> MemoryBlobStore::Create() {
  BlobId id = next_id_++;
  blobs_.emplace(id, Bytes{});
  return id;
}

Status MemoryBlobStore::Append(BlobId id, ByteSpan data) {
  const auto& metrics = blob_internal::StoreMetrics::Get();
  metrics.appends->Add();
  metrics.bytes_written->Add(data.size());
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  it->second.insert(it->second.end(), data.begin(), data.end());
  return Status::OK();
}

Result<Bytes> MemoryBlobStore::Read(BlobId id, ByteRange range) const {
  const auto& metrics = blob_internal::StoreMetrics::Get();
  metrics.reads->Add();
  metrics.bytes_read->Add(range.length);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  const Bytes& blob = it->second;
  if (range.end() > blob.size()) {
    return Status::OutOfRange(
        "read past end of BLOB " + std::to_string(id) + ": [" +
        std::to_string(range.offset) + ", " + std::to_string(range.end()) +
        ") of " + std::to_string(blob.size()));
  }
  return Bytes(blob.begin() + range.offset, blob.begin() + range.end());
}

Result<uint64_t> MemoryBlobStore::Size(BlobId id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  return static_cast<uint64_t>(it->second.size());
}

Status MemoryBlobStore::Delete(BlobId id) {
  if (blobs_.erase(id) == 0) return NoSuchBlob(id);
  return Status::OK();
}

bool MemoryBlobStore::Exists(BlobId id) const { return blobs_.count(id) > 0; }

std::vector<BlobId> MemoryBlobStore::List() const {
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, data] : blobs_) ids.push_back(id);
  return ids;
}

BlobStoreStats MemoryBlobStore::Stats() const {
  BlobStoreStats stats;
  stats.blob_count = blobs_.size();
  for (const auto& [id, data] : blobs_) {
    stats.logical_bytes += data.size();
    stats.physical_bytes += data.capacity();
  }
  return stats;
}

}  // namespace tbm

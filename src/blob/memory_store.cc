#include "blob/memory_store.h"

#include <algorithm>
#include <cstring>

#include "base/macros.h"
#include "blob/store_metrics.h"

namespace tbm {

namespace {
Status NoSuchBlob(BlobId id) {
  return Status::NotFound("no such BLOB: " + std::to_string(id));
}
}  // namespace

/// Push handle of MemoryBlobStore: accumulates into a growing buffer
/// (same doubling policy as Append) and publishes at Finish. The store
/// is only touched at publish time, so a dropped handle costs nothing.
class MemoryPushHandle final : public PushHandle {
 public:
  explicit MemoryPushHandle(MemoryBlobStore* store) : store_(store) {}

  ~MemoryPushHandle() override { Abort(); }

  Status Push(ByteSpan data) override {
    if (store_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    const auto& metrics = blob_internal::StoreMetrics::Get();
    metrics.appends->Add();
    metrics.bytes_written->Add(data.size());
    const uint64_t capacity = buffer_ ? buffer_->size() : 0;
    if (size_ + data.size() > capacity) {
      uint64_t grown = std::max<uint64_t>(capacity * 2, 64);
      grown = std::max<uint64_t>(grown, size_ + data.size());
      BufferRef fresh = Buffer::Allocate(grown);
      if (size_ > 0) {
        std::memcpy(fresh->mutable_data(), buffer_->data(), size_);
      }
      buffer_ = std::move(fresh);
    }
    std::memcpy(buffer_->mutable_data() + size_, data.data(), data.size());
    size_ += data.size();
    return Status::OK();
  }

  Result<BlobId> Finish() override {
    if (store_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    BlobId id = store_->Publish(std::move(buffer_), size_);
    store_ = nullptr;
    return id;
  }

  Status Abort() override {
    store_ = nullptr;
    buffer_ = nullptr;
    return Status::OK();
  }

  uint64_t bytes_pushed() const override { return size_; }

 private:
  MemoryBlobStore* store_;  ///< Null once finished or aborted.
  BufferRef buffer_;
  uint64_t size_ = 0;
};

Result<std::unique_ptr<PushHandle>> MemoryBlobStore::StartPush() {
  return std::unique_ptr<PushHandle>(std::make_unique<MemoryPushHandle>(this));
}

BlobId MemoryBlobStore::Publish(BufferRef buffer, uint64_t size) {
  BlobId id = next_id_++;
  blobs_.emplace(id, Blob{std::move(buffer), size});
  return id;
}

Result<BufferSlice> MemoryBlobStore::Read(BlobId id, ByteRange range) const {
  const auto& metrics = blob_internal::StoreMetrics::Get();
  metrics.reads->Add();
  metrics.bytes_read->Add(range.length);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  const Blob& blob = it->second;
  TBM_RETURN_IF_ERROR(range.Validate());
  if (range.end() > blob.size) {
    return Status::OutOfRange(
        "read past end of BLOB " + std::to_string(id) + ": [" +
        std::to_string(range.offset) + ", " + std::to_string(range.end()) +
        ") of " + std::to_string(blob.size));
  }
  return BufferSlice(blob.buffer, range.offset, range.length);
}

Result<uint64_t> MemoryBlobStore::Size(BlobId id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  return it->second.size;
}

Status MemoryBlobStore::Delete(BlobId id) {
  if (blobs_.erase(id) == 0) return NoSuchBlob(id);
  return Status::OK();
}

bool MemoryBlobStore::Exists(BlobId id) const { return blobs_.count(id) > 0; }

std::vector<BlobId> MemoryBlobStore::List() const {
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, data] : blobs_) ids.push_back(id);
  return ids;
}

BlobStoreStats MemoryBlobStore::Stats() const {
  BlobStoreStats stats;
  stats.blob_count = blobs_.size();
  for (const auto& [id, blob] : blobs_) {
    stats.logical_bytes += blob.size;
    stats.physical_bytes += blob.buffer ? blob.buffer->size() : 0;
  }
  return stats;
}

}  // namespace tbm

#include "blob/cas_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <utility>

#include "base/io.h"
#include "base/macros.h"
#include "blob/store_metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace fs = std::filesystem;

namespace {

/// Ledger journal magic + record opcodes. The journal is append-only
/// during operation and compacted (rewritten as pure kAdd records with
/// the current refcounts) every Open.
constexpr char kLedgerMagic[8] = {'T', 'B', 'M', 'C', 'A', 'S', 'L', '1'};

enum LedgerOp : uint8_t {
  kOpAdd = 1,     ///< varu64 id, raw[32] hash, varu64 size, varu64 refcount
  kOpRef = 2,     ///< varu64 id
  kOpUnref = 3,   ///< varu64 id
  kOpRemove = 4,  ///< varu64 id
};

Status NoSuchBlob(BlobId id) {
  return Status::NotFound("no such BLOB: " + std::to_string(id));
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Push handle

/// Push handle of CasBlobStore: streams into `<root>/tmp/`, folding
/// every span through an incremental SHA-256 as it lands on disk, so
/// Finish() knows the content hash without re-reading the staged file.
class CasPushHandle final : public PushHandle {
 public:
  CasPushHandle(CasBlobStore* store, std::string temp_path, std::FILE* file)
      : store_(store), temp_path_(std::move(temp_path)), file_(file) {}

  ~CasPushHandle() override { Abort(); }

  Status Push(ByteSpan data) override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    obs::ScopedSpan span("cas.push");
    const auto& metrics = blob_internal::CasMetrics::Get();
    metrics.push_bytes->Add(data.size());
    hasher_.Update(data);
    size_t written =
        data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) {
      return Status::IOError("short push write to " + temp_path_);
    }
    size_ += data.size();
    return Status::OK();
  }

  Result<BlobId> Finish() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      std::error_code ignore;
      fs::remove(temp_path_, ignore);
      return Status::IOError("cannot finish push: close of " + temp_path_ +
                             " failed");
    }
    return store_->FinishPush(temp_path_, hasher_.Finish(), size_);
  }

  Status Abort() override {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
      std::error_code ignore;
      fs::remove(temp_path_, ignore);
    }
    return Status::OK();
  }

  uint64_t bytes_pushed() const override { return size_; }

 private:
  CasBlobStore* store_;
  std::string temp_path_;
  std::FILE* file_;  ///< Null once finished or aborted.
  Sha256 hasher_;
  uint64_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Open / ledger persistence

Result<std::unique_ptr<CasBlobStore>> CasBlobStore::Open(
    const std::string& root) {
  std::error_code ec;
  fs::create_directories(root + "/tmp", ec);
  if (ec) {
    return Status::IOError("cannot create CAS root " + root + ": " +
                           ec.message());
  }
  // Stale staging files are pushes that never finished; discard them.
  for (const auto& entry : fs::directory_iterator(root + "/tmp", ec)) {
    std::error_code ignore;
    fs::remove(entry.path(), ignore);
  }

  auto store = std::unique_ptr<CasBlobStore>(new CasBlobStore(root));
  const std::string ledger_path = root + "/ledger.tbm";
  if (fs::exists(ledger_path)) {
    TBM_ASSIGN_OR_RETURN(Bytes journal, ReadFileBytes(ledger_path));
    TBM_RETURN_IF_ERROR(store->ReplayLedger(ByteSpan(journal)));
  }
  TBM_RETURN_IF_ERROR(store->CompactLedger());
  store->journal_ = std::fopen(ledger_path.c_str(), "ab");
  if (store->journal_ == nullptr) {
    return Status::IOError("cannot open CAS ledger for append: " +
                           ledger_path);
  }

  const auto& metrics = blob_internal::CasMetrics::Get();
  for (const auto& [id, e] : store->by_id_) {
    metrics.logical_bytes->Add(static_cast<int64_t>(e.size * e.refcount));
    metrics.stored_bytes->Add(static_cast<int64_t>(e.size));
  }
  return store;
}

CasBlobStore::~CasBlobStore() {
  if (journal_ != nullptr) std::fclose(journal_);
}

Status CasBlobStore::ReplayLedger(ByteSpan journal) {
  BinaryReader reader(journal);
  TBM_ASSIGN_OR_RETURN(Bytes magic, reader.ReadRaw(sizeof(kLedgerMagic)));
  if (std::memcmp(magic.data(), kLedgerMagic, sizeof(kLedgerMagic)) != 0) {
    return Status::Corruption("CAS ledger: bad magic");
  }
  while (!reader.AtEnd()) {
    TBM_ASSIGN_OR_RETURN(uint8_t op, reader.ReadU8());
    TBM_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarU64());
    switch (op) {
      case kOpAdd: {
        TBM_ASSIGN_OR_RETURN(Bytes hash, reader.ReadRaw(32));
        TBM_ASSIGN_OR_RETURN(uint64_t size, reader.ReadVarU64());
        TBM_ASSIGN_OR_RETURN(uint64_t refcount, reader.ReadVarU64());
        Entry entry;
        std::memcpy(entry.hash.bytes.data(), hash.data(), 32);
        entry.size = size;
        entry.refcount = static_cast<uint32_t>(refcount);
        by_hash_[entry.hash] = id;
        by_id_[id] = std::move(entry);
        next_id_ = std::max(next_id_, id + 1);
        break;
      }
      case kOpRef:
      case kOpUnref: {
        auto it = by_id_.find(id);
        if (it == by_id_.end()) {
          return Status::Corruption("CAS ledger: ref of unknown id " +
                                    std::to_string(id));
        }
        it->second.refcount += op == kOpRef ? 1 : -1;
        break;
      }
      case kOpRemove: {
        auto it = by_id_.find(id);
        if (it == by_id_.end()) {
          return Status::Corruption("CAS ledger: remove of unknown id " +
                                    std::to_string(id));
        }
        by_hash_.erase(it->second.hash);
        by_id_.erase(it);
        break;
      }
      default:
        return Status::Corruption("CAS ledger: unknown op " +
                                  std::to_string(op));
    }
  }
  return Status::OK();
}

Status CasBlobStore::CompactLedger() {
  BinaryWriter writer;
  writer.WriteRaw(ByteSpan(reinterpret_cast<const uint8_t*>(kLedgerMagic),
                           sizeof(kLedgerMagic)));
  for (const auto& [id, entry] : by_id_) {
    writer.WriteU8(kOpAdd);
    writer.WriteVarU64(id);
    writer.WriteRaw(ByteSpan(entry.hash.bytes.data(), entry.hash.bytes.size()));
    writer.WriteVarU64(entry.size);
    writer.WriteVarU64(entry.refcount);
  }
  const std::string ledger_path = root_ + "/ledger.tbm";
  const std::string temp_path = ledger_path + ".tmp";
  TBM_RETURN_IF_ERROR(WriteFile(temp_path, ByteSpan(writer.buffer())));
  std::error_code ec;
  fs::rename(temp_path, ledger_path, ec);
  if (ec) {
    return Status::IOError("cannot replace CAS ledger: " + ec.message());
  }
  return Status::OK();
}

void CasBlobStore::JournalRecord(const Bytes& record) {
  if (journal_ == nullptr) return;
  std::fwrite(record.data(), 1, record.size(), journal_);
  std::fflush(journal_);
}

void CasBlobStore::JournalAdd(BlobId id, const Entry& entry) {
  BinaryWriter writer;
  writer.WriteU8(kOpAdd);
  writer.WriteVarU64(id);
  writer.WriteRaw(ByteSpan(entry.hash.bytes.data(), entry.hash.bytes.size()));
  writer.WriteVarU64(entry.size);
  writer.WriteVarU64(entry.refcount);
  JournalRecord(writer.buffer());
}

void CasBlobStore::JournalRef(BlobId id) {
  BinaryWriter writer;
  writer.WriteU8(kOpRef);
  writer.WriteVarU64(id);
  JournalRecord(writer.buffer());
}

void CasBlobStore::JournalUnref(BlobId id) {
  BinaryWriter writer;
  writer.WriteU8(kOpUnref);
  writer.WriteVarU64(id);
  JournalRecord(writer.buffer());
}

void CasBlobStore::JournalRemove(BlobId id) {
  BinaryWriter writer;
  writer.WriteU8(kOpRemove);
  writer.WriteVarU64(id);
  JournalRecord(writer.buffer());
}

// ---------------------------------------------------------------------------
// Paths

std::string CasBlobStore::ShardPath(const Sha256Digest& digest) const {
  std::string hex = digest.ToHex();
  std::string path;
  path.reserve(root_.size() + 7 + hex.size());
  path += root_;
  path += '/';
  path.append(hex, 0, 2);
  path += '/';
  path.append(hex, 2, 2);
  path += '/';
  path += hex;
  return path;
}

std::string CasBlobStore::TempPath(uint64_t token) {
  return root_ + "/tmp/push_" + std::to_string(token) + ".tmp";
}

// ---------------------------------------------------------------------------
// Push path

Result<std::unique_ptr<PushHandle>> CasBlobStore::StartPush() {
  uint64_t token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    token = push_token_++;
  }
  std::string temp_path = TempPath(token);
  std::FILE* f = std::fopen(temp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create push staging file: " + temp_path);
  }
  return std::unique_ptr<PushHandle>(
      std::make_unique<CasPushHandle>(this, std::move(temp_path), f));
}

Result<BlobId> CasBlobStore::FinishPush(const std::string& temp_path,
                                        const Sha256Digest& digest,
                                        uint64_t size) {
  obs::ScopedSpan span("cas.finish_push");
  const auto& metrics = blob_internal::CasMetrics::Get();
  obs::ScopedTimerUs timer(metrics.push_us);
  metrics.pushes->Add();

  std::lock_guard<std::mutex> lock(mu_);
  pushes_++;

  std::error_code ignore;
  auto hit = by_hash_.find(digest);
  if (hit != by_hash_.end()) {
    // Dedup: the content is already stored. Take a reference and
    // discard the staged copy.
    Entry& entry = by_id_[hit->second];
    entry.refcount++;
    JournalRef(hit->second);
    dedup_hits_++;
    metrics.dedup_hits->Add();
    metrics.dedup_bytes_saved->Add(size);
    metrics.logical_bytes->Add(static_cast<int64_t>(size));
    fs::remove(temp_path, ignore);
    return hit->second;
  }

  auto cond = condemned_.find(digest);
  if (cond != condemned_.end()) {
    // Pin: a sweep condemned this hash but has not deleted the file
    // yet. Reinstate the entry (same id — outstanding references to it
    // stay coherent) and the sweeper will skip the file.
    BlobId id = cond->second.id;
    Entry entry;
    entry.hash = digest;
    entry.size = size;
    entry.refcount = 1;
    JournalAdd(id, entry);
    by_hash_[digest] = id;
    by_id_[id] = std::move(entry);
    condemned_.erase(cond);
    sweep_pins_++;
    metrics.gc_pins->Add();
    metrics.logical_bytes->Add(static_cast<int64_t>(size));
    metrics.stored_bytes->Add(static_cast<int64_t>(size));
    fs::remove(temp_path, ignore);
    return id;
  }

  // New content: publish the staged file into the shard tree.
  std::string path = ShardPath(digest);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (!ec) fs::rename(temp_path, path, ec);
  if (ec) {
    fs::remove(temp_path, ignore);
    return Status::IOError("cannot publish pushed BLOB " + path + ": " +
                           ec.message());
  }
  BlobId id = next_id_++;
  Entry entry;
  entry.hash = digest;
  entry.size = size;
  entry.refcount = 1;
  JournalAdd(id, entry);
  by_hash_[digest] = id;
  by_id_[id] = std::move(entry);
  metrics.logical_bytes->Add(static_cast<int64_t>(size));
  metrics.stored_bytes->Add(static_cast<int64_t>(size));
  return id;
}

// ---------------------------------------------------------------------------
// Read path

Result<BufferRef> CasBlobStore::EnsureMapping(BlobId id, Entry* entry) const {
  if (entry->mapping != nullptr) return entry->mapping;
  std::string path = ShardPath(entry->hash);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open CAS shard file: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      static_cast<uint64_t>(st.st_size) != entry->size) {
    ::close(fd);
    return Status::Corruption("CAS shard file size mismatch for BLOB " +
                              std::to_string(id) + ": " + path);
  }
  const size_t len = static_cast<size_t>(entry->size);
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("cannot mmap CAS shard file: " + path);
  }
  // The mapping's lifetime is the owner shared_ptr's: the store holds
  // one reference in the entry, every slice handed out holds another
  // through its Buffer, so the bytes survive Delete/Sweep/destruction
  // until the last slice drops (POSIX keeps unlinked mapped files
  // readable).
  std::shared_ptr<const void> owner(
      static_cast<const void*>(addr),
      [len](const void* p) { ::munmap(const_cast<void*>(p), len); });
  entry->mapping = Buffer::Wrap(addr, len, std::move(owner));
  return entry->mapping;
}

Result<BufferSlice> CasBlobStore::Read(BlobId id, ByteRange range) const {
  obs::ScopedSpan span("cas.pull");
  const auto& cas_metrics = blob_internal::CasMetrics::Get();
  const auto& store_metrics = blob_internal::StoreMetrics::Get();
  obs::ScopedTimerUs timer(cas_metrics.pull_us);
  obs::ScopedTimerUs store_timer(store_metrics.read_us);
  cas_metrics.pulls->Add();
  cas_metrics.pull_bytes->Add(range.length);
  store_metrics.reads->Add();
  store_metrics.bytes_read->Add(range.length);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return NoSuchBlob(id);
  if (range.end() > it->second.size) {
    return Status::OutOfRange("read past end of BLOB " + std::to_string(id));
  }
  if (range.length == 0) return BufferSlice();
  TBM_ASSIGN_OR_RETURN(BufferRef mapping, EnsureMapping(id, &it->second));
  return BufferSlice(std::move(mapping), static_cast<size_t>(range.offset),
                     static_cast<size_t>(range.length));
}

Result<uint64_t> CasBlobStore::Size(BlobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return NoSuchBlob(id);
  return it->second.size;
}

bool CasBlobStore::Exists(BlobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.count(id) > 0;
}

std::vector<BlobId> CasBlobStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlobId> ids;
  ids.reserve(by_id_.size());
  for (const auto& [id, entry] : by_id_) ids.push_back(id);
  return ids;
}

Result<BlobId> CasBlobStore::LookupHash(const Sha256Digest& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_hash_.find(digest);
  if (it == by_hash_.end()) {
    return Status::NotFound("no BLOB with hash " + digest.ToHex());
  }
  return it->second;
}

Result<Sha256Digest> CasBlobStore::HashOf(BlobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return NoSuchBlob(id);
  return it->second.hash;
}

Result<uint32_t> CasBlobStore::RefCount(BlobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return NoSuchBlob(id);
  return it->second.refcount;
}

// ---------------------------------------------------------------------------
// Delete / GC

Status CasBlobStore::Delete(BlobId id) {
  const auto& metrics = blob_internal::CasMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return NoSuchBlob(id);
  Entry& entry = it->second;
  entry.refcount--;
  JournalUnref(id);
  metrics.logical_bytes->Add(-static_cast<int64_t>(entry.size));
  if (entry.refcount > 0) return Status::OK();

  // Last reference: reclaim now. Outstanding slices keep the mapping
  // (and so the unlinked file's pages) alive.
  JournalRemove(id);
  metrics.stored_bytes->Add(-static_cast<int64_t>(entry.size));
  std::string path = ShardPath(entry.hash);
  by_hash_.erase(entry.hash);
  by_id_.erase(it);
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::IOError("cannot delete " + path + ": " + ec.message());
  }
  return Status::OK();
}

Result<CasSweepStats> CasBlobStore::Sweep(const std::vector<BlobId>& live) {
  obs::ScopedSpan span("cas.sweep");
  const auto& metrics = blob_internal::CasMetrics::Get();
  CasSweepStats stats;
  std::set<BlobId> live_set(live.begin(), live.end());

  // Mark phase, under the ledger lock: move every dead entry to the
  // condemned set. Mutators are excluded only for this metadata walk —
  // file deletion happens outside the lock.
  std::vector<Sha256Digest> condemned;
  auto mark_start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.scanned = by_id_.size();
    for (auto it = by_id_.begin(); it != by_id_.end();) {
      if (live_set.count(it->first) > 0) {
        ++it;
        continue;
      }
      Entry& entry = it->second;
      condemned_[entry.hash] = Condemned{it->first, entry.size};
      condemned.push_back(entry.hash);
      JournalRemove(it->first);
      metrics.logical_bytes->Add(
          -static_cast<int64_t>(entry.size * entry.refcount));
      metrics.stored_bytes->Add(-static_cast<int64_t>(entry.size));
      by_hash_.erase(entry.hash);
      it = by_id_.erase(it);
    }
    stats.pause_us = ElapsedUs(mark_start);
  }

  // Sweep phase: delete condemned files one at a time, re-checking each
  // hash under the lock — a push that finished since the mark pinned
  // its hash by erasing it from the condemned set, and we must not
  // delete the file it now relies on. The unlink itself happens while
  // the lock is still held: dropping it between the check and the
  // unlink would let a racing push republish the same shard path and
  // then lose its file to our deferred unlink. Mutators interleave
  // between iterations, so the mark pause stays the only long hold.
  for (const Sha256Digest& hash : condemned) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = condemned_.find(hash);
    if (it == condemned_.end()) {
      stats.pinned++;  // Rescued by a racing push; keep the file.
      continue;
    }
    uint64_t size = it->second.size;
    condemned_.erase(it);
    std::error_code ignore;
    fs::remove(ShardPath(hash), ignore);
    stats.swept++;
    stats.reclaimed_bytes += size;
  }

  metrics.gc_swept->Add(stats.swept);
  metrics.gc_reclaimed_bytes->Add(stats.reclaimed_bytes);
  metrics.gc_pause_us->Record(stats.pause_us);
  return stats;
}

CasStoreStats CasBlobStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CasStoreStats stats;
  stats.blob_count = by_id_.size();
  for (const auto& [id, entry] : by_id_) {
    stats.logical_bytes += entry.size * entry.refcount;
    stats.stored_bytes += entry.size;
  }
  stats.pushes = pushes_;
  stats.dedup_hits = dedup_hits_;
  return stats;
}

}  // namespace tbm

#ifndef TBM_BLOB_FILE_STORE_H_
#define TBM_BLOB_FILE_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "blob/blob_store.h"

namespace tbm {

/// BLOB store keeping each BLOB as one file (`<dir>/blob_<id>.bin`).
///
/// This is the persistence-grade store used by the database layer: a
/// database directory holds one file per BLOB plus the catalog. On
/// open, existing blob files are rediscovered by scanning the
/// directory, so a database survives process restarts.
class FileBlobStore : public BlobStore {
 public:
  /// Opens the store rooted at `dir`, creating the directory if needed
  /// and scanning it for existing BLOB files.
  static Result<std::unique_ptr<FileBlobStore>> Open(const std::string& dir);

  /// Streaming push. Bytes are staged in a `.push_<n>.tmp` file and
  /// renamed into place at Finish(), so a crashed or aborted push
  /// never leaves a half-written BLOB file behind (stale temp files
  /// are swept by Open()).
  Result<std::unique_ptr<PushHandle>> StartPush() override;

  Result<BufferSlice> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;
  Status Delete(BlobId id) override;
  bool Exists(BlobId id) const override;
  std::vector<BlobId> List() const override;

  const std::string& dir() const { return dir_; }

 private:
  friend class FilePushHandle;

  explicit FileBlobStore(std::string dir) : dir_(std::move(dir)) {}

  std::string PathFor(BlobId id) const;

  /// Renames a fully staged temp file to its final blob path and
  /// registers it.
  Result<BlobId> PublishPushedFile(const std::string& temp_path,
                                   uint64_t size);

  std::string dir_;
  std::map<BlobId, uint64_t> sizes_;  ///< id -> byte length.
  BlobId next_id_ = 1;
  uint64_t push_token_ = 0;  ///< Distinguishes concurrent temp files.
};

}  // namespace tbm

#endif  // TBM_BLOB_FILE_STORE_H_

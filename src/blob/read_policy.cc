#include "blob/read_policy.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "blob/blob_store.h"
#include "obs/metrics.h"

namespace tbm {

namespace {

struct RetryMetrics {
  obs::Counter* retries;
  obs::Counter* gave_up;

  static const RetryMetrics& Get() {
    static const RetryMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return RetryMetrics{registry.counter("blob.read_retries"),
                          registry.counter("blob.read_gave_up")};
    }();
    return metrics;
  }
};

double ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

bool IsTransientReadError(const Status& status, const ReadPolicy& policy) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
      return true;
    case StatusCode::kCorruption:
      return policy.retry_corruption;
    default:
      return false;
  }
}

Result<BufferSlice> ReadWithPolicy(const BlobStore& store, BlobId id,
                                   ByteRange range, const ReadPolicy& policy) {
  const auto start = std::chrono::steady_clock::now();
  double delay_us = policy.backoff_initial_us;
  int attempt = 0;
  while (true) {
    Result<BufferSlice> result = store.Read(id, range);
    if (result.ok() || !IsTransientReadError(result.status(), policy)) {
      return result;
    }
    if (attempt >= policy.max_retries) {
      if (policy.max_retries > 0) RetryMetrics::Get().gave_up->Add();
      return result.status().WithContext(
          "read failed after " + std::to_string(attempt + 1) + " attempt(s)");
    }
    if (policy.timeout_us > 0 &&
        ElapsedUs(start) + delay_us > policy.timeout_us) {
      RetryMetrics::Get().gave_up->Add();
      return result.status().WithContext(
          "read timeout (" + std::to_string(policy.timeout_us) +
          " us) after " + std::to_string(attempt + 1) + " attempt(s)");
    }
    if (delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay_us));
    }
    delay_us = std::min(delay_us * policy.backoff_multiplier,
                        policy.backoff_max_us);
    ++attempt;
    RetryMetrics::Get().retries->Add();
  }
}

}  // namespace tbm

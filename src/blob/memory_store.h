#ifndef TBM_BLOB_MEMORY_STORE_H_
#define TBM_BLOB_MEMORY_STORE_H_

#include <map>

#include "blob/blob_store.h"

namespace tbm {

/// BLOB store keeping each BLOB as one contiguous in-memory buffer.
///
/// This is the "contiguous layout" end of the layout spectrum: appends
/// may reallocate and copy, reads are zero-copy. Used as the baseline
/// in the storage-layout ablation bench and as the default store in
/// tests and examples.
///
/// Each BLOB is a ref-counted append buffer: `size` bytes published,
/// the rest spare capacity. Reads return slices of the buffer —
/// published bytes are never rewritten (appends fill spare capacity;
/// growth allocates a fresh buffer and copies), so outstanding slices
/// stay valid across later appends, deletes, and even destruction of
/// the store, under the store's documented single-writer contract.
class MemoryBlobStore : public BlobStore {
 public:
  MemoryBlobStore() = default;

  /// Streaming push. The handle accumulates into a private buffer and
  /// publishes atomically at Finish(): the BLOB is invisible to reads
  /// until then, and an aborted push leaves the store untouched.
  Result<std::unique_ptr<PushHandle>> StartPush() override;

  Result<BufferSlice> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;
  Status Delete(BlobId id) override;
  bool Exists(BlobId id) const override;
  std::vector<BlobId> List() const override;

  BlobStoreStats Stats() const;

 private:
  friend class MemoryPushHandle;

  /// One BLOB: `size` published bytes at the front of `buffer` (whose
  /// extent is the capacity). `buffer` is null while the BLOB is empty.
  struct Blob {
    BufferRef buffer;
    uint64_t size = 0;
  };

  /// Registers a fully pushed buffer as a new BLOB and returns its id.
  BlobId Publish(BufferRef buffer, uint64_t size);

  std::map<BlobId, Blob> blobs_;
  BlobId next_id_ = 1;
};

}  // namespace tbm

#endif  // TBM_BLOB_MEMORY_STORE_H_

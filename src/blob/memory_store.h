#ifndef TBM_BLOB_MEMORY_STORE_H_
#define TBM_BLOB_MEMORY_STORE_H_

#include <map>

#include "blob/blob_store.h"

namespace tbm {

/// BLOB store keeping each BLOB as one contiguous in-memory buffer.
///
/// This is the "contiguous layout" end of the layout spectrum: appends
/// may reallocate and copy, reads are a single memcpy. Used as the
/// baseline in the storage-layout ablation bench and as the default
/// store in tests and examples.
class MemoryBlobStore : public BlobStore {
 public:
  MemoryBlobStore() = default;

  Result<BlobId> Create() override;
  Status Append(BlobId id, ByteSpan data) override;
  Result<Bytes> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;
  Status Delete(BlobId id) override;
  bool Exists(BlobId id) const override;
  std::vector<BlobId> List() const override;

  BlobStoreStats Stats() const;

 private:
  std::map<BlobId, Bytes> blobs_;
  BlobId next_id_ = 1;
};

}  // namespace tbm

#endif  // TBM_BLOB_MEMORY_STORE_H_

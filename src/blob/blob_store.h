#ifndef TBM_BLOB_BLOB_STORE_H_
#define TBM_BLOB_BLOB_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/buffer.h"
#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm {

/// Identifier of a BLOB within a store.
using BlobId = uint64_t;
inline constexpr BlobId kInvalidBlobId = 0;

class ChunkReader;
struct ChunkReaderOptions;

/// A BLOB (paper Definition 4): an attribute value that appears to
/// applications as a sequence of bytes, with read and append access.
///
/// Per the paper, insertion/deletion of byte spans is deliberately not
/// offered: time-based media is edited non-destructively through
/// derivation objects (Def. 6), never by rewriting BLOB bytes. The
/// physical layout of a BLOB (contiguous or fragmented) is a
/// performance concern hidden behind this interface; see
/// MemoryBlobStore, PagedBlobStore and FileBlobStore. Stores compose
/// as decorators over this interface — FaultInjectingStore wraps any
/// BlobStore, and MediaDatabase accepts an injected store — so new
/// backends slot in without touching consumers.
///
/// Thread-safety contract: const methods (Read, Size, Exists, List,
/// OpenChunkReader) may be called from multiple threads concurrently —
/// the AsyncPrefetcher depends on this to overlap chunk fetches —
/// provided no thread is concurrently mutating the store (Create,
/// Append, Delete). Mixing readers with a writer requires external
/// synchronization, as with standard containers.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  /// Creates a new empty BLOB and returns its id.
  virtual Result<BlobId> Create() = 0;

  /// Appends `data` to the end of BLOB `id`.
  virtual Status Append(BlobId id, ByteSpan data) = 0;

  /// Reads the byte range `range` of BLOB `id`. The full range must be
  /// inside the BLOB; returns OutOfRange otherwise.
  ///
  /// The result is a zero-copy view where the store can serve one
  /// (MemoryBlobStore aliases its backing buffer; PagedBlobStore
  /// aliases a cached page for single-page ranges) and an owned buffer
  /// otherwise. Either way the slice keeps its bytes alive on its own —
  /// it remains valid after the BLOB is deleted, the store destroyed,
  /// or a cache entry evicted.
  virtual Result<BufferSlice> Read(BlobId id, ByteRange range) const = 0;

  /// Current size of BLOB `id` in bytes.
  virtual Result<uint64_t> Size(BlobId id) const = 0;

  /// Removes BLOB `id`, reclaiming its storage.
  virtual Status Delete(BlobId id) = 0;

  /// True iff a BLOB with this id exists.
  virtual bool Exists(BlobId id) const = 0;

  /// Ids of all live BLOBs, ascending.
  virtual std::vector<BlobId> List() const = 0;

  /// Convenience: reads the whole BLOB.
  Result<BufferSlice> ReadAll(BlobId id) const;

  /// Opens a streaming view of BLOB `id` serving fixed-size chunks on
  /// demand (see blob/chunk_reader.h). The base implementation serves
  /// chunks as policy-governed range reads and works for every store;
  /// layout-aware stores override it to align chunk geometry with
  /// their physical pages. The reader borrows the store: keep the
  /// store alive and unmutated while reading.
  virtual Result<std::unique_ptr<ChunkReader>> OpenChunkReader(
      BlobId id, const ChunkReaderOptions& options) const;
};

/// Occupancy statistics for benchmarking and storage accounting.
struct BlobStoreStats {
  uint64_t blob_count = 0;
  uint64_t logical_bytes = 0;   ///< Sum of BLOB sizes.
  uint64_t physical_bytes = 0;  ///< Bytes actually occupied (pages, headers).
};

}  // namespace tbm

#endif  // TBM_BLOB_BLOB_STORE_H_

#ifndef TBM_BLOB_BLOB_STORE_H_
#define TBM_BLOB_BLOB_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/buffer.h"
#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm {

/// Identifier of a BLOB within a store.
using BlobId = uint64_t;
inline constexpr BlobId kInvalidBlobId = 0;

class ChunkReader;
struct ChunkReaderOptions;

/// A streaming BLOB ingest in progress — the write half of the store
/// API. Obtained from `BlobStore::StartPush()`; bytes are streamed in
/// with `Push()` and the BLOB id materializes at `Finish()`:
///
///   TBM_ASSIGN_OR_RETURN(auto push, store->StartPush());
///   TBM_RETURN_IF_ERROR(push->Push(first_span));
///   TBM_RETURN_IF_ERROR(push->Push(next_span));
///   TBM_ASSIGN_OR_RETURN(BlobId id, push->Finish());
///
/// The handle owns an *unpublished* BLOB: until Finish() returns, the
/// BLOB is invisible to Read/Size/Exists/List and has no id. This is
/// what lets the content-addressed store assign ids by content hash
/// (the id cannot exist before the last byte arrives) and lets every
/// store publish atomically — an aborted or dropped handle leaves no
/// trace.
///
/// State machine: streaming → finished | aborted. Push() and Finish()
/// return FailedPrecondition once the handle has finished or aborted;
/// Finish() on an already-finished handle does not mint a second BLOB.
/// Destroying a still-streaming handle aborts it (releasing any staged
/// storage).
///
/// Handles follow their store's write contract: for the mutable stores
/// a handle counts as "the writer" (one writer at a time, external
/// synchronization against readers). CasBlobStore strengthens this —
/// any number of concurrent pushes, pulls, and sweeps are safe.
class PushHandle {
 public:
  virtual ~PushHandle() = default;

  /// Appends `data` to the BLOB being pushed.
  virtual Status Push(ByteSpan data) = 0;

  /// Publishes the BLOB and returns its id. The handle is consumed.
  virtual Result<BlobId> Finish() = 0;

  /// Discards the push, releasing staged storage. Idempotent; also
  /// invoked by the destructor if the handle was never finished.
  virtual Status Abort() = 0;

  /// Bytes pushed so far.
  virtual uint64_t bytes_pushed() const = 0;
};

/// A BLOB (paper Definition 4): an attribute value that appears to
/// applications as a sequence of bytes, with streamed-write and
/// random-read access.
///
/// Per the paper, insertion/deletion of byte spans is deliberately not
/// offered: time-based media is edited non-destructively through
/// derivation objects (Def. 6), never by rewriting BLOB bytes. The
/// physical layout of a BLOB (contiguous, fragmented, or
/// content-addressed) is a performance concern hidden behind this
/// interface; see MemoryBlobStore, PagedBlobStore, FileBlobStore and
/// CasBlobStore. Stores compose as decorators over this interface —
/// FaultInjectingStore wraps any BlobStore, and MediaDatabase accepts
/// an injected store — so new backends slot in without touching
/// consumers.
///
/// Writes go through the streaming push API (`StartPush` →
/// `PushHandle`): ingest is a stream of spans and the BLOB id is
/// assigned at `Finish()`. This is the only write surface — the
/// historical two-phase `Create()` + `Append()` shim is gone, which
/// is what lets the content-addressed store exist at all (an id
/// derived from content cannot precede the content).
///
/// Thread-safety contract: const methods (Read, Size, Exists, List,
/// OpenChunkReader) may be called from multiple threads concurrently —
/// the AsyncPrefetcher depends on this to overlap chunk fetches —
/// provided no thread is concurrently mutating the store (an open
/// push handle, Delete). Mixing readers with a writer
/// requires external synchronization, as with standard containers.
/// CasBlobStore strengthens this to full internal synchronization.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  /// Begins a streaming push of a new BLOB (see PushHandle). The
  /// returned handle borrows the store: it must not outlive it.
  virtual Result<std::unique_ptr<PushHandle>> StartPush() = 0;

  /// Convenience: pushes `data` as one complete BLOB.
  Result<BlobId> PushAll(ByteSpan data);

  /// Reads the byte range `range` of BLOB `id`. The full range must be
  /// inside the BLOB; returns OutOfRange otherwise.
  ///
  /// The result is a zero-copy view where the store can serve one
  /// (MemoryBlobStore aliases its backing buffer; PagedBlobStore
  /// aliases a cached page for single-page ranges; CasBlobStore
  /// aliases its memory-mapped shard file) and an owned buffer
  /// otherwise. Either way the slice keeps its bytes alive on its own —
  /// it remains valid after the BLOB is deleted, the store destroyed,
  /// or a cache entry evicted.
  virtual Result<BufferSlice> Read(BlobId id, ByteRange range) const = 0;

  /// Current size of BLOB `id` in bytes.
  virtual Result<uint64_t> Size(BlobId id) const = 0;

  /// Removes BLOB `id`, reclaiming its storage. On the deduplicating
  /// store this drops one reference; bytes are reclaimed when the last
  /// reference is gone.
  virtual Status Delete(BlobId id) = 0;

  /// True iff a BLOB with this id exists.
  virtual bool Exists(BlobId id) const = 0;

  /// Ids of all live BLOBs.
  ///
  /// Ordering contract: ascending by id, no duplicates. Every store
  /// implements this ordering (the cross-store conformance test in
  /// tests/blob_test.cc enforces it), so consumers may binary-search
  /// the result or merge listings from several stores without
  /// re-sorting.
  virtual std::vector<BlobId> List() const = 0;

  /// Convenience: reads the whole BLOB.
  Result<BufferSlice> ReadAll(BlobId id) const;

  /// Opens a streaming view of BLOB `id` serving fixed-size chunks on
  /// demand (see blob/chunk_reader.h). The base implementation serves
  /// chunks as policy-governed range reads and works for every store;
  /// layout-aware stores override it to align chunk geometry with
  /// their physical pages. The reader borrows the store: keep the
  /// store alive and unmutated while reading.
  virtual Result<std::unique_ptr<ChunkReader>> OpenChunkReader(
      BlobId id, const ChunkReaderOptions& options) const;
};

/// Occupancy statistics for benchmarking and storage accounting.
struct BlobStoreStats {
  uint64_t blob_count = 0;
  uint64_t logical_bytes = 0;   ///< Sum of BLOB sizes.
  uint64_t physical_bytes = 0;  ///< Bytes actually occupied (pages, headers).
};

}  // namespace tbm

#endif  // TBM_BLOB_BLOB_STORE_H_

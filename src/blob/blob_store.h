#ifndef TBM_BLOB_BLOB_STORE_H_
#define TBM_BLOB_BLOB_STORE_H_

#include <cstdint>
#include <vector>

#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm {

/// Identifier of a BLOB within a store.
using BlobId = uint64_t;
inline constexpr BlobId kInvalidBlobId = 0;

/// A BLOB (paper Definition 4): an attribute value that appears to
/// applications as a sequence of bytes, with read and append access.
///
/// Per the paper, insertion/deletion of byte spans is deliberately not
/// offered: time-based media is edited non-destructively through
/// derivation objects (Def. 6), never by rewriting BLOB bytes. The
/// physical layout of a BLOB (contiguous or fragmented) is a
/// performance concern hidden behind this interface; see
/// MemoryBlobStore, PagedBlobStore and FileBlobStore.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  /// Creates a new empty BLOB and returns its id.
  virtual Result<BlobId> Create() = 0;

  /// Appends `data` to the end of BLOB `id`.
  virtual Status Append(BlobId id, ByteSpan data) = 0;

  /// Reads the byte range `range` of BLOB `id`. The full range must be
  /// inside the BLOB; returns OutOfRange otherwise.
  virtual Result<Bytes> Read(BlobId id, ByteRange range) const = 0;

  /// Current size of BLOB `id` in bytes.
  virtual Result<uint64_t> Size(BlobId id) const = 0;

  /// Removes BLOB `id`, reclaiming its storage.
  virtual Status Delete(BlobId id) = 0;

  /// True iff a BLOB with this id exists.
  virtual bool Exists(BlobId id) const = 0;

  /// Ids of all live BLOBs, ascending.
  virtual std::vector<BlobId> List() const = 0;

  /// Convenience: reads the whole BLOB.
  Result<Bytes> ReadAll(BlobId id) const;
};

/// Occupancy statistics for benchmarking and storage accounting.
struct BlobStoreStats {
  uint64_t blob_count = 0;
  uint64_t logical_bytes = 0;   ///< Sum of BLOB sizes.
  uint64_t physical_bytes = 0;  ///< Bytes actually occupied (pages, headers).
};

}  // namespace tbm

#endif  // TBM_BLOB_BLOB_STORE_H_

#ifndef TBM_BLOB_PREFETCHER_H_
#define TBM_BLOB_PREFETCHER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "base/thread_pool.h"
#include "blob/chunk_reader.h"

namespace tbm {

/// Readahead behaviour of an AsyncPrefetcher.
struct PrefetchOptions {
  /// Chunks scheduled ahead of the consumer. 0 (or a null pool)
  /// degrades to synchronous on-demand reads — the baseline the
  /// streaming ablation measures against.
  int depth = 4;

  /// Backpressure: total bytes allowed in flight or buffered but not
  /// yet consumed. Scheduling pauses at this bound even if `depth`
  /// would allow more, so a fast store cannot balloon memory ahead of
  /// a slow consumer.
  uint64_t max_inflight_bytes = 8ull << 20;
};

/// Counters of one prefetcher's lifetime (monotone; read anytime).
struct PrefetchStats {
  uint64_t chunks_delivered = 0;
  uint64_t hits = 0;        ///< Next() found the chunk already buffered.
  uint64_t stalls = 0;      ///< Next() had to wait for the fetch.
  uint64_t stall_us = 0;    ///< Total time spent waiting in Next().
  uint64_t bytes_delivered = 0;
  uint64_t read_errors = 0; ///< Chunks whose read failed (after retries).

  double HitRate() const {
    uint64_t total = hits + stalls;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// Asynchronous sequential readahead over a ChunkReader.
///
/// The consumer calls Next() to receive chunks 0, 1, 2, … in order;
/// the prefetcher keeps up to `depth` further chunks in flight on the
/// thread pool, bounded by `max_inflight_bytes`. When I/O latency and
/// decode cost are comparable, this overlaps them almost completely —
/// playback touches elements in timestamp order at a constant rate
/// (paper §2.2), which is exactly the access pattern readahead wants.
///
/// Chunk read failures are returned from Next() for that chunk only;
/// the stream position still advances, so a caller with its own
/// recovery (or a lenient ReadPolicy in the reader) can keep going.
///
/// Thread-safety: Next() is intended for one consumer thread;
/// scheduling internals are locked, and the destructor drains any
/// in-flight reads before returning.
class AsyncPrefetcher {
 public:
  /// `reader` is owned; `pool` is borrowed and may be null (synchronous
  /// mode). The underlying store must stay alive and unmutated for the
  /// prefetcher's lifetime.
  AsyncPrefetcher(std::unique_ptr<ChunkReader> reader, ThreadPool* pool,
                  PrefetchOptions options = {});

  /// Blocks until outstanding chunk reads finish.
  ~AsyncPrefetcher();

  AsyncPrefetcher(const AsyncPrefetcher&) = delete;
  AsyncPrefetcher& operator=(const AsyncPrefetcher&) = delete;

  /// True when every chunk has been delivered.
  bool Done() const;

  /// Index of the chunk the next call to Next() delivers.
  uint64_t next_index() const;

  uint64_t chunk_count() const { return reader_->chunk_count(); }
  const ChunkReader& reader() const { return *reader_; }

  /// Delivers the next chunk in sequence, scheduling further readahead.
  /// OutOfRange once Done().
  Result<BufferSlice> Next();

  /// Snapshot of the prefetcher's counters.
  PrefetchStats stats() const;

 private:
  /// Schedules readahead up to depth/byte bounds. Caller holds mu_.
  void ScheduleLocked();

  std::unique_ptr<ChunkReader> reader_;
  ThreadPool* pool_;
  PrefetchOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Result<BufferSlice>> ready_;  ///< Fetched, unconsumed.
  uint64_t next_consume_ = 0;   ///< Next chunk Next() returns.
  uint64_t next_schedule_ = 0;  ///< Next chunk to hand to the pool.
  uint64_t inflight_bytes_ = 0; ///< Scheduled or buffered, unconsumed.
  int outstanding_tasks_ = 0;
  PrefetchStats stats_;
};

}  // namespace tbm

#endif  // TBM_BLOB_PREFETCHER_H_

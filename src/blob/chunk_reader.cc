#include "blob/chunk_reader.h"

#include <string>
#include <utility>

#include "base/macros.h"
#include "blob/blob_store.h"

namespace tbm {

namespace {

/// Chunks served by policy-governed range reads over the store
/// interface — works against any BlobStore (and any decorator).
class RangeChunkReader final : public ChunkReader {
 public:
  RangeChunkReader(const BlobStore* store, BlobId id, uint64_t size,
                   ChunkReaderOptions options)
      : store_(store), id_(id), size_(size), options_(std::move(options)) {}

  uint32_t chunk_size() const override { return options_.chunk_size; }
  uint64_t blob_size() const override { return size_; }
  const ReadPolicy& policy() const override { return options_.policy; }

  Result<BufferSlice> ReadChunk(uint64_t index) const override {
    if (index >= chunk_count()) {
      return Status::OutOfRange("chunk " + std::to_string(index) +
                                " out of range (BLOB has " +
                                std::to_string(chunk_count()) + " chunks)");
    }
    return ReadWithPolicy(*store_, id_, ChunkRange(index), options_.policy);
  }

 private:
  const BlobStore* store_;
  BlobId id_;
  uint64_t size_;
  ChunkReaderOptions options_;
};

}  // namespace

Result<std::unique_ptr<ChunkReader>> MakeRangeChunkReader(
    const BlobStore& store, BlobId id, const ChunkReaderOptions& options) {
  if (options.chunk_size == 0) {
    return Status::InvalidArgument("chunk size must be positive");
  }
  TBM_ASSIGN_OR_RETURN(uint64_t size, store.Size(id));
  return std::unique_ptr<ChunkReader>(
      new RangeChunkReader(&store, id, size, options));
}

Result<std::unique_ptr<ChunkReader>> BlobStore::OpenChunkReader(
    BlobId id, const ChunkReaderOptions& options) const {
  return MakeRangeChunkReader(*this, id, options);
}

}  // namespace tbm

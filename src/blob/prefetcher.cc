#include "blob/prefetcher.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace {

struct PrefetchMetrics {
  obs::Counter* hits;
  obs::Counter* stalls;
  obs::Counter* bytes;
  obs::Counter* errors;
  obs::Histogram* stall_us;

  static const PrefetchMetrics& Get() {
    static const PrefetchMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return PrefetchMetrics{registry.counter("blob.prefetch.hits"),
                             registry.counter("blob.prefetch.stalls"),
                             registry.counter("blob.prefetch.bytes"),
                             registry.counter("blob.prefetch.errors"),
                             registry.histogram("blob.prefetch.stall_us")};
    }();
    return metrics;
  }
};

}  // namespace

AsyncPrefetcher::AsyncPrefetcher(std::unique_ptr<ChunkReader> reader,
                                 ThreadPool* pool, PrefetchOptions options)
    : reader_(std::move(reader)), pool_(pool), options_(options) {
  if (options_.max_inflight_bytes == 0) options_.max_inflight_bytes = 1;
  if (pool_ != nullptr && options_.depth > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ScheduleLocked();
  }
}

AsyncPrefetcher::~AsyncPrefetcher() {
  std::unique_lock<std::mutex> lock(mu_);
  // Stop scheduling new work and wait for tasks already on the pool;
  // their closures touch this object, so it cannot die under them.
  next_schedule_ = reader_->chunk_count();
  cv_.wait(lock, [&] { return outstanding_tasks_ == 0; });
}

bool AsyncPrefetcher::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_consume_ >= reader_->chunk_count();
}

uint64_t AsyncPrefetcher::next_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_consume_;
}

PrefetchStats AsyncPrefetcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncPrefetcher::ScheduleLocked() {
  if (pool_ == nullptr || options_.depth <= 0) return;
  const uint64_t count = reader_->chunk_count();
  while (next_schedule_ < count &&
         next_schedule_ <
             next_consume_ + static_cast<uint64_t>(options_.depth)) {
    const uint64_t index = next_schedule_;
    const uint64_t length = reader_->ChunkRange(index).length;
    // Backpressure: always allow one chunk in flight so progress never
    // deadlocks on a chunk larger than the byte budget.
    if (inflight_bytes_ > 0 &&
        inflight_bytes_ + length > options_.max_inflight_bytes) {
      break;
    }
    inflight_bytes_ += length;
    ++next_schedule_;
    ++outstanding_tasks_;
    pool_->Submit([this, index] {
      obs::ScopedSpan span("blob.prefetch.fetch");
      Result<BufferSlice> result = reader_->ReadChunk(index);
      std::lock_guard<std::mutex> task_lock(mu_);
      ready_.emplace(index, std::move(result));
      --outstanding_tasks_;
      cv_.notify_all();
    });
  }
}

Result<BufferSlice> AsyncPrefetcher::Next() {
  const auto& metrics = PrefetchMetrics::Get();
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t count = reader_->chunk_count();
  if (next_consume_ >= count) {
    return Status::OutOfRange("prefetcher exhausted (" +
                              std::to_string(count) + " chunks)");
  }
  const uint64_t index = next_consume_;

  Result<BufferSlice> result = BufferSlice{};
  if (pool_ == nullptr || options_.depth <= 0) {
    // Synchronous mode: fetch on the caller's thread.
    lock.unlock();
    result = reader_->ReadChunk(index);
    lock.lock();
  } else {
    ScheduleLocked();
    auto it = ready_.find(index);
    if (it != ready_.end()) {
      ++stats_.hits;
      metrics.hits->Add();
    } else {
      ++stats_.stalls;
      metrics.stalls->Add();
      obs::ScopedSpan span("blob.prefetch.stall");
      int64_t start_ns = obs::NowTicksNs();
      cv_.wait(lock, [&] { return ready_.count(index) > 0; });
      uint64_t waited_us = static_cast<uint64_t>(
          std::max<int64_t>(0, obs::NowTicksNs() - start_ns) / 1000);
      stats_.stall_us += waited_us;
      metrics.stall_us->Record(waited_us);
      it = ready_.find(index);
    }
    result = std::move(it->second);
    ready_.erase(it);
    inflight_bytes_ -= reader_->ChunkRange(index).length;
  }

  ++next_consume_;
  ++stats_.chunks_delivered;
  if (result.ok()) {
    stats_.bytes_delivered += result->size();
    metrics.bytes->Add(result->size());
  } else {
    ++stats_.read_errors;
    metrics.errors->Add();
  }
  ScheduleLocked();
  return result;
}

}  // namespace tbm

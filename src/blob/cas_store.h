#ifndef TBM_BLOB_CAS_STORE_H_
#define TBM_BLOB_CAS_STORE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/sha256.h"
#include "blob/blob_store.h"

namespace tbm {

/// Result of one mark-and-sweep pass over the content-addressed store.
struct CasSweepStats {
  uint64_t scanned = 0;          ///< Ledger entries examined.
  uint64_t swept = 0;            ///< Blobs actually reclaimed.
  uint64_t reclaimed_bytes = 0;  ///< Stored bytes those blobs held.
  uint64_t pinned = 0;           ///< Condemned blobs rescued by a racing push.
  uint64_t pause_us = 0;         ///< Time the mark phase excluded mutators.
};

/// Occupancy + dedup effectiveness of the content-addressed store.
struct CasStoreStats {
  uint64_t blob_count = 0;     ///< Distinct content hashes stored.
  uint64_t logical_bytes = 0;  ///< Sum of size × refcount (what callers pushed
                               ///< and still reference).
  uint64_t stored_bytes = 0;   ///< Sum of size (each distinct hash once).
  uint64_t pushes = 0;         ///< Finished pushes over the store's lifetime.
  uint64_t dedup_hits = 0;     ///< Pushes that matched an existing hash.

  /// Logical-to-stored ratio; 1.0 means no duplication, N means the
  /// same bytes were pushed N times on average.
  double dedup_ratio() const {
    return stored_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(stored_bytes);
  }
};

/// Content-addressed, deduplicating BLOB store — the multi-tenant
/// byte tier. The paper separates a medium's *identity* (its
/// interpretations and derivations) from its raw bytes (Def. 1 BLOBs);
/// this store exploits that split: the byte tier keys storage by
/// SHA-256 of content, so a million users pushing heavily-overlapping
/// clips store each distinct byte run exactly once.
///
/// Layout (modeled on G-CVSNT's content_addressed_fs): each blob lives
/// at `<root>/xx/yy/<64-char hex>` where xx/yy are the first two hash
/// byte pairs — a two-level fan-out that keeps directory sizes flat at
/// scale. In-flight pushes stage in `<root>/tmp/`; the ledger
/// (`<root>/ledger.tbm`, an append-only journal compacted on open)
/// maps dense BlobIds to hashes and reference counts, so ids stay
/// compatible with every BlobId consumer (interpretations, chunk
/// readers, the serve layer).
///
/// Writes are push-only: `StartPush()` streams spans through an
/// incremental SHA-256 and the id materializes at `Finish()` — a
/// duplicate push lands on the existing entry (refcount + 1, temp
/// file discarded) and returns the *same* id the first pusher got.
/// Push is the only write surface — an id keyed by content cannot
/// exist before the content does.
///
/// Reads are mmap-backed and zero-copy: the shard file is mapped once
/// and every Read/ReadChunk hands out BufferSlice views of the
/// mapping; the mapping (and so the bytes) outlives Delete, Sweep and
/// even store destruction for as long as any slice does.
///
/// Garbage collection is mark-and-sweep: callers pass the set of live
/// ids (MediaDatabase marks every blob a live interpretation places
/// into) and `Sweep()` reclaims the rest. Concurrent-safe: the mark
/// phase condemns entries under the ledger lock, file deletion happens
/// outside it, and a push that finishes with a condemned hash *pins*
/// it — the entry is reinstated (same id) and the sweeper skips the
/// file. A mid-push blob cannot be collected at all: until Finish()
/// it exists only in tmp/, which the sweeper never scans.
///
/// Unlike the other stores, CasBlobStore is fully thread-safe: any
/// number of concurrent pushes, reads, deletes and sweeps may run
/// without external synchronization.
class CasBlobStore final : public BlobStore {
 public:
  /// Opens (creating if needed) the store rooted at `root`: replays
  /// the ledger journal, compacts it, and discards stale tmp files.
  static Result<std::unique_ptr<CasBlobStore>> Open(const std::string& root);

  ~CasBlobStore() override;

  /// Streaming, deduplicating push (see class comment).
  Result<std::unique_ptr<PushHandle>> StartPush() override;

  /// Zero-copy read of the mmapped shard file.
  Result<BufferSlice> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;

  /// Drops one reference; the entry (and its file) is reclaimed when
  /// the count reaches zero. Outstanding slices stay valid.
  Status Delete(BlobId id) override;

  bool Exists(BlobId id) const override;

  /// Live ids, ascending (the store-wide List ordering contract).
  std::vector<BlobId> List() const override;

  // -- Content-addressed extras ---------------------------------------------

  /// Id holding `digest`'s content, or NotFound.
  Result<BlobId> LookupHash(const Sha256Digest& digest) const;

  /// Content hash of BLOB `id`.
  Result<Sha256Digest> HashOf(BlobId id) const;

  /// Current reference count of BLOB `id`.
  Result<uint32_t> RefCount(BlobId id) const;

  /// Mark-and-sweep collection: reclaims every entry whose id is not
  /// in `live`, except those pinned by a racing push (see class
  /// comment). `live` need not be sorted.
  Result<CasSweepStats> Sweep(const std::vector<BlobId>& live);

  CasStoreStats Stats() const;

  const std::string& root() const { return root_; }

 private:
  friend class CasPushHandle;

  struct Entry {
    Sha256Digest hash;
    uint64_t size = 0;
    uint32_t refcount = 0;
    /// Lazily created mmap of the shard file, shared with every slice
    /// handed out; null until first read (or for empty blobs).
    BufferRef mapping;
  };

  /// A swept-but-not-yet-deleted blob, visible to racing pushes for
  /// pinning. Keyed by hash in `condemned_`.
  struct Condemned {
    BlobId id = kInvalidBlobId;
    uint64_t size = 0;
  };

  explicit CasBlobStore(std::string root) : root_(std::move(root)) {}

  std::string ShardPath(const Sha256Digest& digest) const;
  std::string TempPath(uint64_t token);

  /// Completes a push whose staged bytes live at `temp_path`: dedups,
  /// pins, or publishes (rename into the shard tree). Consumes the
  /// temp file either way.
  Result<BlobId> FinishPush(const std::string& temp_path,
                            const Sha256Digest& digest, uint64_t size);

  Status ReplayLedger(ByteSpan journal);
  Status CompactLedger();
  void JournalAdd(BlobId id, const Entry& entry);
  void JournalRef(BlobId id);
  void JournalUnref(BlobId id);
  void JournalRemove(BlobId id);
  void JournalRecord(const Bytes& record);

  /// Resolves (creating on first use) the mmap of `id`'s file. Called
  /// with `mu_` held.
  Result<BufferRef> EnsureMapping(BlobId id, Entry* entry) const;

  std::string root_;

  /// Guards every field below (ledger maps, journal stream, condemned
  /// set, counters). Push data streaming happens outside the lock —
  /// only FinishPush and the metadata operations serialize on it.
  mutable std::mutex mu_;
  /// Ordered: List() walks it directly. Mutable so const reads can
  /// cache the lazily-created mmap in the entry.
  mutable std::map<BlobId, Entry> by_id_;
  std::map<Sha256Digest, BlobId> by_hash_;
  std::map<Sha256Digest, Condemned> condemned_;
  std::FILE* journal_ = nullptr;
  BlobId next_id_ = 1;
  uint64_t push_token_ = 0;
  uint64_t pushes_ = 0;
  uint64_t dedup_hits_ = 0;
  uint64_t sweep_pins_ = 0;  ///< Lifetime count of pushes that pinned a
                             ///< condemned hash.
};

}  // namespace tbm

#endif  // TBM_BLOB_CAS_STORE_H_

#include "blob/fault_store.h"

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "base/macros.h"
#include "blob/chunk_reader.h"

namespace tbm {

namespace {

/// splitmix64 — a statistically solid 64-bit mixer, used here to turn
/// (seed, call index) into an independent uniform draw per call.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool DrawFromCounter(const FaultConfig& config, std::atomic<uint64_t>* draws,
                     double rate) {
  if (rate <= 0.0) return false;
  uint64_t draw = Mix64(config.seed ^ draws->fetch_add(1));
  return static_cast<double>(draw >> 11) / static_cast<double>(1ull << 53) <
         rate;
}

}  // namespace

FaultInjectingStore::FaultInjectingStore(std::unique_ptr<BlobStore> inner,
                                         FaultConfig config)
    : inner_(std::move(inner)), config_(config) {}

bool FaultInjectingStore::DrawFault(double rate) const {
  return DrawFromCounter(config_, &draws_, rate);
}

Status FaultInjectingStore::MakeFault(const char* op) const {
  return Status(config_.code,
                std::string("injected fault on ") + op + " (seed " +
                    std::to_string(config_.seed) + ")");
}

namespace {

/// Push handle of the fault decorator: forwards to the wrapped store's
/// handle, drawing an append fault before each Push so retry layers
/// above see transient write failures mid-stream.
class FaultPushHandle final : public PushHandle {
 public:
  FaultPushHandle(std::unique_ptr<PushHandle> inner,
                  std::function<bool()> draw_fault,
                  std::function<Status()> make_fault,
                  std::atomic<uint64_t>* fault_count)
      : inner_(std::move(inner)),
        draw_fault_(std::move(draw_fault)),
        make_fault_(std::move(make_fault)),
        fault_count_(fault_count) {}

  Status Push(ByteSpan data) override {
    if (draw_fault_()) {
      fault_count_->fetch_add(1);
      return make_fault_();
    }
    return inner_->Push(data);
  }

  Result<BlobId> Finish() override { return inner_->Finish(); }
  Status Abort() override { return inner_->Abort(); }
  uint64_t bytes_pushed() const override { return inner_->bytes_pushed(); }

 private:
  std::unique_ptr<PushHandle> inner_;
  std::function<bool()> draw_fault_;
  std::function<Status()> make_fault_;
  std::atomic<uint64_t>* fault_count_;
};

}  // namespace

Result<std::unique_ptr<PushHandle>> FaultInjectingStore::StartPush() {
  TBM_ASSIGN_OR_RETURN(std::unique_ptr<PushHandle> inner_handle,
                       inner_->StartPush());
  return std::unique_ptr<PushHandle>(std::make_unique<FaultPushHandle>(
      std::move(inner_handle),
      [this] { return DrawFault(config_.append_fault_rate); },
      [this] { return MakeFault("push"); }, &append_faults_));
}

Result<BufferSlice> FaultInjectingStore::Read(BlobId id, ByteRange range) const {
  reads_seen_.fetch_add(1);
  int forced = forced_read_faults_.load();
  while (forced > 0) {
    if (forced_read_faults_.compare_exchange_weak(forced, forced - 1)) {
      read_faults_.fetch_add(1);
      return MakeFault("read");
    }
  }
  if (DrawFault(config_.read_fault_rate)) {
    read_faults_.fetch_add(1);
    return MakeFault("read");
  }
  if (config_.read_latency_fixed_us > 0 ||
      config_.read_latency_per_kib_us > 0) {
    double us = config_.read_latency_fixed_us +
                config_.read_latency_per_kib_us *
                    (static_cast<double>(range.length) / 1024.0);
    if (us > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(us));
    }
  }
  return inner_->Read(id, range);
}

Result<uint64_t> FaultInjectingStore::Size(BlobId id) const {
  return inner_->Size(id);
}

Status FaultInjectingStore::Delete(BlobId id) { return inner_->Delete(id); }

bool FaultInjectingStore::Exists(BlobId id) const {
  return inner_->Exists(id);
}

std::vector<BlobId> FaultInjectingStore::List() const {
  return inner_->List();
}

Result<std::unique_ptr<ChunkReader>> FaultInjectingStore::OpenChunkReader(
    BlobId id, const ChunkReaderOptions& options) const {
  // Let the inner store apply its geometry (page alignment etc.), then
  // serve the aligned chunks through this decorator so every chunk
  // read is still subject to fault injection and the latency model.
  TBM_ASSIGN_OR_RETURN(std::unique_ptr<ChunkReader> inner_reader,
                       inner_->OpenChunkReader(id, options));
  ChunkReaderOptions aligned = options;
  aligned.chunk_size = inner_reader->chunk_size();
  return MakeRangeChunkReader(*this, id, aligned);
}

// ---------------------------------------------------------------------------
// FaultInjectingPageDevice

FaultInjectingPageDevice::FaultInjectingPageDevice(
    std::unique_ptr<PageDevice> inner, FaultConfig config)
    : inner_(std::move(inner)), config_(config) {}

FaultInjectingPageDevice::~FaultInjectingPageDevice() = default;

bool FaultInjectingPageDevice::DrawFault(double rate) const {
  return DrawFromCounter(config_, &draws_, rate);
}

Status FaultInjectingPageDevice::MakeFault(const char* op) const {
  return Status(config_.code,
                std::string("injected fault on ") + op + " (seed " +
                    std::to_string(config_.seed) + ")");
}

uint32_t FaultInjectingPageDevice::page_size() const {
  return inner_->page_size();
}

uint64_t FaultInjectingPageDevice::page_count() const {
  return inner_->page_count();
}

Result<uint64_t> FaultInjectingPageDevice::GrowOnePage() {
  return inner_->GrowOnePage();
}

Status FaultInjectingPageDevice::ReadPage(uint64_t index, uint8_t* out) const {
  int forced = forced_read_faults_.load();
  while (forced > 0) {
    if (forced_read_faults_.compare_exchange_weak(forced, forced - 1)) {
      read_faults_.fetch_add(1);
      return MakeFault("page read");
    }
  }
  if (DrawFault(config_.read_fault_rate)) {
    read_faults_.fetch_add(1);
    return MakeFault("page read");
  }
  if (config_.read_latency_fixed_us > 0 ||
      config_.read_latency_per_kib_us > 0) {
    double us = config_.read_latency_fixed_us +
                config_.read_latency_per_kib_us *
                    (static_cast<double>(inner_->page_size()) / 1024.0);
    if (us > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(us));
    }
  }
  return inner_->ReadPage(index, out);
}

Status FaultInjectingPageDevice::WritePage(uint64_t index,
                                           const uint8_t* data) {
  if (DrawFault(config_.append_fault_rate)) {
    write_faults_.fetch_add(1);
    return MakeFault("page write");
  }
  return inner_->WritePage(index, data);
}

}  // namespace tbm

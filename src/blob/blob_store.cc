#include "blob/blob_store.h"

#include "base/macros.h"

namespace tbm {

Result<BlobId> BlobStore::PushAll(ByteSpan data) {
  TBM_ASSIGN_OR_RETURN(std::unique_ptr<PushHandle> push, StartPush());
  TBM_RETURN_IF_ERROR(push->Push(data));
  return push->Finish();
}

Result<BufferSlice> BlobStore::ReadAll(BlobId id) const {
  TBM_ASSIGN_OR_RETURN(uint64_t size, Size(id));
  if (size == 0) return BufferSlice();
  return Read(id, ByteRange{0, size});
}

}  // namespace tbm

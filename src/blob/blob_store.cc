#include "blob/blob_store.h"

#include "base/macros.h"

namespace tbm {

Result<Bytes> BlobStore::ReadAll(BlobId id) const {
  TBM_ASSIGN_OR_RETURN(uint64_t size, Size(id));
  if (size == 0) return Bytes{};
  return Read(id, ByteRange{0, size});
}

}  // namespace tbm

#include "blob/blob_store.h"

#include "base/macros.h"

namespace tbm {

Result<BufferSlice> BlobStore::ReadAll(BlobId id) const {
  TBM_ASSIGN_OR_RETURN(uint64_t size, Size(id));
  if (size == 0) return BufferSlice();
  return Read(id, ByteRange{0, size});
}

}  // namespace tbm

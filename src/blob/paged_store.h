#ifndef TBM_BLOB_PAGED_STORE_H_
#define TBM_BLOB_PAGED_STORE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blob/blob_store.h"

namespace tbm {

/// Abstraction over the medium holding fixed-size pages.
///
/// PagedBlobStore is layout-aware but medium-agnostic: the same page
/// chains work over RAM (MemoryPageDevice) or a single backing file
/// (FilePageDevice).
class PageDevice {
 public:
  virtual ~PageDevice() = default;

  /// Size of every page in bytes.
  virtual uint32_t page_size() const = 0;

  /// Number of pages currently allocated on the device.
  virtual uint64_t page_count() const = 0;

  /// Grows the device by one page and returns its index.
  virtual Result<uint64_t> GrowOnePage() = 0;

  /// Reads page `index` in full into `out` (page_size bytes).
  virtual Status ReadPage(uint64_t index, uint8_t* out) const = 0;

  /// Writes page `index` in full from `data` (page_size bytes).
  virtual Status WritePage(uint64_t index, const uint8_t* data) = 0;
};

/// RAM-backed page device.
class MemoryPageDevice : public PageDevice {
 public:
  explicit MemoryPageDevice(uint32_t page_size) : page_size_(page_size) {}

  uint32_t page_size() const override { return page_size_; }
  uint64_t page_count() const override { return pages_.size(); }
  Result<uint64_t> GrowOnePage() override;
  Status ReadPage(uint64_t index, uint8_t* out) const override;
  Status WritePage(uint64_t index, const uint8_t* data) override;

 private:
  uint32_t page_size_;
  std::vector<Bytes> pages_;
};

/// Page device over a single file. Pages are written at
/// `index * page_size`; the file is grown on demand.
class FilePageDevice : public PageDevice {
 public:
  /// Opens (creating if absent) the backing file.
  static Result<std::unique_ptr<FilePageDevice>> Open(
      const std::string& path, uint32_t page_size);

  ~FilePageDevice() override;

  uint32_t page_size() const override { return page_size_; }
  uint64_t page_count() const override { return page_count_; }
  Result<uint64_t> GrowOnePage() override;
  Status ReadPage(uint64_t index, uint8_t* out) const override;
  Status WritePage(uint64_t index, const uint8_t* data) override;

 private:
  FilePageDevice(std::FILE* file, uint32_t page_size, uint64_t page_count)
      : file_(file), page_size_(page_size), page_count_(page_count) {}

  std::FILE* file_;
  uint32_t page_size_;
  uint64_t page_count_;
};

/// BLOB store with fragmented, checksummed, page-chained layout.
///
/// Each BLOB is a list of page extents; each page carries a CRC-32 over
/// its payload, verified on every read (Corruption on mismatch). Freed
/// pages go to a free list and are reused by later appends, so a
/// long-lived store interleaves pages of different BLOBs — the
/// "fragmented" end of the layout spectrum the paper notes is a
/// performance (not modeling) concern. The layout ablation bench
/// quantifies exactly that.
class PagedBlobStore : public BlobStore {
 public:
  /// `device` supplies the pages. Payload per page is
  /// `device->page_size() - kPageHeaderSize`.
  explicit PagedBlobStore(std::unique_ptr<PageDevice> device);

  Result<BlobId> Create() override;
  Status Append(BlobId id, ByteSpan data) override;
  Result<Bytes> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;
  Status Delete(BlobId id) override;
  bool Exists(BlobId id) const override;
  std::vector<BlobId> List() const override;

  BlobStoreStats Stats() const;

  /// Fragmentation of a BLOB: 1 - (contiguous runs == 1 ? 1 : runs/pages).
  /// 0.0 means fully contiguous pages; approaching 1.0 means every page
  /// is discontiguous from its predecessor.
  Result<double> Fragmentation(BlobId id) const;

  /// Rewrites the BLOB's pages into one contiguous run (growing the
  /// device if no suitable run is free), releasing the old pages. The
  /// BLOB's id and logical content are unchanged — layout is invisible
  /// to the data model (Def. 4), so defragmentation is a pure
  /// performance operation.
  Status Defragment(BlobId id);

  /// Per-page payload capacity.
  uint32_t payload_per_page() const { return payload_size_; }

  static constexpr uint32_t kPageHeaderSize = 8;  // CRC32 + payload length.

 private:
  struct BlobMeta {
    std::vector<uint64_t> pages;  ///< Page indexes, in BLOB order.
    uint64_t size = 0;            ///< Logical byte length.
  };

  Status WritePagePayload(uint64_t page, ByteSpan payload);
  Result<Bytes> ReadPagePayload(uint64_t page) const;
  Result<uint64_t> AcquirePage();

  std::unique_ptr<PageDevice> device_;
  uint32_t payload_size_;
  std::map<BlobId, BlobMeta> blobs_;
  std::vector<uint64_t> free_pages_;
  BlobId next_id_ = 1;
};

}  // namespace tbm

#endif  // TBM_BLOB_PAGED_STORE_H_

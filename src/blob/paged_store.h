#ifndef TBM_BLOB_PAGED_STORE_H_
#define TBM_BLOB_PAGED_STORE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "blob/blob_store.h"

namespace tbm {

/// Abstraction over the medium holding fixed-size pages.
///
/// PagedBlobStore is layout-aware but medium-agnostic: the same page
/// chains work over RAM (MemoryPageDevice) or a single backing file
/// (FilePageDevice).
class PageDevice {
 public:
  virtual ~PageDevice() = default;

  /// Size of every page in bytes.
  virtual uint32_t page_size() const = 0;

  /// Number of pages currently allocated on the device.
  virtual uint64_t page_count() const = 0;

  /// Grows the device by one page and returns its index.
  virtual Result<uint64_t> GrowOnePage() = 0;

  /// Reads page `index` in full into `out` (page_size bytes).
  virtual Status ReadPage(uint64_t index, uint8_t* out) const = 0;

  /// Writes page `index` in full from `data` (page_size bytes).
  virtual Status WritePage(uint64_t index, const uint8_t* data) = 0;
};

/// RAM-backed page device.
class MemoryPageDevice : public PageDevice {
 public:
  explicit MemoryPageDevice(uint32_t page_size) : page_size_(page_size) {}

  uint32_t page_size() const override { return page_size_; }
  uint64_t page_count() const override { return pages_.size(); }
  Result<uint64_t> GrowOnePage() override;
  Status ReadPage(uint64_t index, uint8_t* out) const override;
  Status WritePage(uint64_t index, const uint8_t* data) override;

 private:
  uint32_t page_size_;
  std::vector<Bytes> pages_;
};

/// Page device over a single file. Pages are written at
/// `index * page_size`; the file is grown on demand. Page I/O shares
/// one stdio stream whose position is a hidden mutable cursor, so all
/// device operations serialize on an internal mutex — concurrent
/// chunk readers are safe (if not parallel at the device level).
class FilePageDevice : public PageDevice {
 public:
  /// Opens (creating if absent) the backing file.
  static Result<std::unique_ptr<FilePageDevice>> Open(
      const std::string& path, uint32_t page_size);

  ~FilePageDevice() override;

  uint32_t page_size() const override { return page_size_; }
  uint64_t page_count() const override { return page_count_; }
  Result<uint64_t> GrowOnePage() override;
  Status ReadPage(uint64_t index, uint8_t* out) const override;
  Status WritePage(uint64_t index, const uint8_t* data) override;

 private:
  FilePageDevice(std::FILE* file, uint32_t page_size, uint64_t page_count)
      : file_(file), page_size_(page_size), page_count_(page_count) {}

  mutable std::mutex io_mu_;  ///< Serializes seek+read/write pairs.
  std::FILE* file_;
  uint32_t page_size_;
  uint64_t page_count_;
};

/// Occupancy and effectiveness counters of the page cache.
struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t resident_pages = 0;
};

/// BLOB store with fragmented, checksummed, page-chained layout.
///
/// Each BLOB is a list of page extents; each page carries a CRC-32 over
/// its payload, verified on every read (Corruption on mismatch). Freed
/// pages go to a free list and are reused by later appends, so a
/// long-lived store interleaves pages of different BLOBs — the
/// "fragmented" end of the layout spectrum the paper notes is a
/// performance (not modeling) concern. The layout ablation bench
/// quantifies exactly that.
class PagedBlobStore : public BlobStore {
 public:
  /// `device` supplies the pages. Payload per page is
  /// `device->page_size() - kPageHeaderSize`.
  explicit PagedBlobStore(std::unique_ptr<PageDevice> device);

  /// Streaming push. The handle stages whole pages as they fill (one
  /// in-memory partial page at most) and registers the page chain as a
  /// BLOB only at Finish(); an aborted push returns its pages to the
  /// free list.
  Result<std::unique_ptr<PushHandle>> StartPush() override;

  Result<BufferSlice> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;
  Status Delete(BlobId id) override;
  bool Exists(BlobId id) const override;
  std::vector<BlobId> List() const override;

  /// Chunked reads, with the chunk size rounded up to a whole number
  /// of page payloads so adjacent chunks never split (and re-verify
  /// the checksum of) a boundary page.
  Result<std::unique_ptr<ChunkReader>> OpenChunkReader(
      BlobId id, const ChunkReaderOptions& options) const override;

  /// Enables an LRU cache of decoded page payloads, `pages` entries
  /// deep (0 disables and drops the cache; the default). The cache
  /// absorbs the repeated page decode + CRC verification that element-
  /// sized and chunked reads of the same region would otherwise pay,
  /// and is invalidated page-by-page on writes. Thread-safe; sized in
  /// pages, so its memory is `pages * page_size` bytes at most.
  void set_page_cache_capacity(size_t pages);
  size_t page_cache_capacity() const;
  PageCacheStats page_cache_stats() const;

  BlobStoreStats Stats() const;

  /// Fragmentation of a BLOB: 1 - (contiguous runs == 1 ? 1 : runs/pages).
  /// 0.0 means fully contiguous pages; approaching 1.0 means every page
  /// is discontiguous from its predecessor.
  Result<double> Fragmentation(BlobId id) const;

  /// Rewrites the BLOB's pages into one contiguous run (growing the
  /// device if no suitable run is free), releasing the old pages. The
  /// BLOB's id and logical content are unchanged — layout is invisible
  /// to the data model (Def. 4), so defragmentation is a pure
  /// performance operation.
  Status Defragment(BlobId id);

  /// Per-page payload capacity.
  uint32_t payload_per_page() const { return payload_size_; }

  static constexpr uint32_t kPageHeaderSize = 8;  // CRC32 + payload length.

 private:
  friend class PagedPushHandle;

  struct BlobMeta {
    std::vector<uint64_t> pages;  ///< Page indexes, in BLOB order.
    uint64_t size = 0;            ///< Logical byte length.
  };

  /// Registers a fully staged page chain as a new BLOB.
  BlobId PublishPushed(BlobMeta meta);

  /// Returns an aborted push's staged pages to the free list (purging
  /// any cached payloads).
  void ReleaseStagedPages(const std::vector<uint64_t>& pages);

  Status WritePagePayload(uint64_t page, ByteSpan payload);

  /// Decoded page payload as a ref-counted slice. Cached payloads are
  /// shared: a hit aliases the cache entry's buffer, and the slice
  /// stays valid after the entry is evicted or invalidated (the buffer
  /// dies only when its last reference does).
  Result<BufferSlice> ReadPagePayload(uint64_t page) const;
  Result<uint64_t> AcquirePage();

  /// Cache lookups/fills; no-ops when the cache is disabled.
  /// `gen_at_read` is the cache generation sampled (CacheGeneration)
  /// before the device read that produced `payload`: CacheInsert
  /// refuses the fill if any invalidation happened in between, so a
  /// slow refill — stretched by device faults and retries — can never
  /// resurrect bytes that a concurrent write or delete obsoleted.
  bool CacheLookup(uint64_t page, BufferSlice* payload) const;
  uint64_t CacheGeneration() const;
  void CacheInsert(uint64_t page, const BufferSlice& payload,
                   uint64_t gen_at_read) const;
  void CacheInvalidate(uint64_t page) const;

  std::unique_ptr<PageDevice> device_;
  uint32_t payload_size_;
  std::map<BlobId, BlobMeta> blobs_;
  std::vector<uint64_t> free_pages_;
  BlobId next_id_ = 1;

  /// LRU page-payload cache (front of `lru` = most recent). All fields
  /// are guarded by `mu`; mutable because reads fill the cache.
  struct PageCache {
    std::mutex mu;
    size_t capacity = 0;
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t,
                       std::pair<std::list<uint64_t>::iterator, BufferSlice>>
        entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Bumped by every invalidation; pairs with CacheGeneration /
    /// CacheInsert to fence stale refills (see CacheInsert).
    uint64_t generation = 0;
  };
  mutable PageCache cache_;
};

}  // namespace tbm

#endif  // TBM_BLOB_PAGED_STORE_H_

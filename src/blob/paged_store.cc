#include "blob/paged_store.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "base/crc32.h"
#include "base/macros.h"
#include "blob/chunk_reader.h"
#include "blob/store_metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace {
Status NoSuchBlob(BlobId id) {
  return Status::NotFound("no such BLOB: " + std::to_string(id));
}

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
}  // namespace

// ---------------------------------------------------------------------------
// MemoryPageDevice

Result<uint64_t> MemoryPageDevice::GrowOnePage() {
  pages_.emplace_back(page_size_, 0);
  return static_cast<uint64_t>(pages_.size() - 1);
}

Status MemoryPageDevice::ReadPage(uint64_t index, uint8_t* out) const {
  if (index >= pages_.size()) {
    return Status::OutOfRange("page index " + std::to_string(index));
  }
  std::memcpy(out, pages_[index].data(), page_size_);
  return Status::OK();
}

Status MemoryPageDevice::WritePage(uint64_t index, const uint8_t* data) {
  if (index >= pages_.size()) {
    return Status::OutOfRange("page index " + std::to_string(index));
  }
  std::memcpy(pages_[index].data(), data, page_size_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FilePageDevice

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Open(
    const std::string& path, uint32_t page_size) {
  if (page_size < PagedBlobStore::kPageHeaderSize + 1) {
    return Status::InvalidArgument("page size too small");
  }
  // "a+" would force appends; use r+ and fall back to w+ to create.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot open page file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat page file: " + path);
  }
  uint64_t pages = static_cast<uint64_t>(size) / page_size;
  return std::unique_ptr<FilePageDevice>(
      new FilePageDevice(f, page_size, pages));
}

FilePageDevice::~FilePageDevice() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<uint64_t> FilePageDevice::GrowOnePage() {
  std::lock_guard<std::mutex> lock(io_mu_);
  Bytes zeros(page_size_, 0);
  if (std::fseek(file_, static_cast<long>(page_count_ * page_size_),
                 SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("cannot grow page file");
  }
  return page_count_++;
}

Status FilePageDevice::ReadPage(uint64_t index, uint8_t* out) const {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (index >= page_count_) {
    return Status::OutOfRange("page index " + std::to_string(index));
  }
  if (std::fseek(file_, static_cast<long>(index * page_size_), SEEK_SET) != 0 ||
      std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::IOError("page read failed");
  }
  return Status::OK();
}

Status FilePageDevice::WritePage(uint64_t index, const uint8_t* data) {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (index >= page_count_) {
    return Status::OutOfRange("page index " + std::to_string(index));
  }
  if (std::fseek(file_, static_cast<long>(index * page_size_), SEEK_SET) != 0 ||
      std::fwrite(data, 1, page_size_, file_) != page_size_) {
    return Status::IOError("page write failed");
  }
  std::fflush(file_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PagedBlobStore

PagedBlobStore::PagedBlobStore(std::unique_ptr<PageDevice> device)
    : device_(std::move(device)),
      payload_size_(device_->page_size() - kPageHeaderSize) {
  assert(device_->page_size() > kPageHeaderSize);
}

Status PagedBlobStore::WritePagePayload(uint64_t page, ByteSpan payload) {
  assert(payload.size() <= payload_size_);
  blob_internal::StoreMetrics::Get().pages_written->Add();
  Bytes buf(device_->page_size(), 0);
  PutU32(buf.data() + 4, static_cast<uint32_t>(payload.size()));
  std::memcpy(buf.data() + kPageHeaderSize, payload.data(), payload.size());
  PutU32(buf.data(),
         Crc32(ByteSpan(buf.data() + 4, device_->page_size() - 4)));
  CacheInvalidate(page);
  return device_->WritePage(page, buf.data());
}

Result<BufferSlice> PagedBlobStore::ReadPagePayload(uint64_t page) const {
  BufferSlice cached;
  if (CacheLookup(page, &cached)) return cached;
  // Sample the generation before touching the device: if the page is
  // invalidated while the refill is in flight (a window that device
  // faults and policy retries can stretch arbitrarily), the fill below
  // is refused rather than poisoning the cache with obsolete bytes.
  const uint64_t gen = CacheGeneration();
  blob_internal::StoreMetrics::Get().pages_read->Add();
  Bytes buf(device_->page_size());
  TBM_RETURN_IF_ERROR(device_->ReadPage(page, buf.data()));
  uint32_t stored_crc = GetU32(buf.data());
  uint32_t actual_crc =
      Crc32(ByteSpan(buf.data() + 4, device_->page_size() - 4));
  if (stored_crc != actual_crc) {
    return Status::Corruption("page " + std::to_string(page) +
                              " checksum mismatch");
  }
  uint32_t len = GetU32(buf.data() + 4);
  if (len > payload_size_) {
    return Status::Corruption("page " + std::to_string(page) +
                              " length field out of range");
  }
  // Wrap the whole decoded page once and slice out the payload — the
  // cache and every reader then share one buffer per page.
  BufferSlice payload =
      BufferSlice(std::move(buf)).Slice(kPageHeaderSize, len);
  CacheInsert(page, payload, gen);
  return payload;
}

bool PagedBlobStore::CacheLookup(uint64_t page, BufferSlice* payload) const {
  std::lock_guard<std::mutex> lock(cache_.mu);
  if (cache_.capacity == 0) return false;
  auto it = cache_.entries.find(page);
  if (it == cache_.entries.end()) {
    ++cache_.misses;
    return false;
  }
  cache_.lru.splice(cache_.lru.begin(), cache_.lru, it->second.first);
  *payload = it->second.second;
  ++cache_.hits;
  return true;
}

uint64_t PagedBlobStore::CacheGeneration() const {
  std::lock_guard<std::mutex> lock(cache_.mu);
  return cache_.generation;
}

void PagedBlobStore::CacheInsert(uint64_t page, const BufferSlice& payload,
                                 uint64_t gen_at_read) const {
  std::lock_guard<std::mutex> lock(cache_.mu);
  if (cache_.capacity == 0) return;
  // An invalidation landed between the generation sample and this
  // fill: the payload may predate a write or delete of the page, so
  // keeping it resident would serve stale bytes forever. Drop the fill
  // (conservatively — the generation is cache-wide, so an unrelated
  // invalidation also skips it; the next read simply refills).
  if (cache_.generation != gen_at_read) return;
  auto it = cache_.entries.find(page);
  if (it != cache_.entries.end()) {
    // A racing reader beat us to the fill; refresh recency only.
    cache_.lru.splice(cache_.lru.begin(), cache_.lru, it->second.first);
    return;
  }
  cache_.lru.push_front(page);
  cache_.entries.emplace(page, std::make_pair(cache_.lru.begin(), payload));
  while (cache_.entries.size() > cache_.capacity) {
    cache_.entries.erase(cache_.lru.back());
    cache_.lru.pop_back();
    ++cache_.evictions;
  }
}

void PagedBlobStore::CacheInvalidate(uint64_t page) const {
  std::lock_guard<std::mutex> lock(cache_.mu);
  // Always advance the generation, entry resident or not: a refill of
  // this page may be in flight (not yet inserted), and it must observe
  // that the page changed underneath it.
  ++cache_.generation;
  auto it = cache_.entries.find(page);
  if (it == cache_.entries.end()) return;
  cache_.lru.erase(it->second.first);
  cache_.entries.erase(it);
}

void PagedBlobStore::set_page_cache_capacity(size_t pages) {
  std::lock_guard<std::mutex> lock(cache_.mu);
  cache_.capacity = pages;
  while (cache_.entries.size() > cache_.capacity) {
    cache_.entries.erase(cache_.lru.back());
    cache_.lru.pop_back();
    ++cache_.evictions;
  }
}

size_t PagedBlobStore::page_cache_capacity() const {
  std::lock_guard<std::mutex> lock(cache_.mu);
  return cache_.capacity;
}

PageCacheStats PagedBlobStore::page_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_.mu);
  PageCacheStats stats;
  stats.hits = cache_.hits;
  stats.misses = cache_.misses;
  stats.evictions = cache_.evictions;
  stats.resident_pages = cache_.entries.size();
  return stats;
}

Result<std::unique_ptr<ChunkReader>> PagedBlobStore::OpenChunkReader(
    BlobId id, const ChunkReaderOptions& options) const {
  if (options.chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  ChunkReaderOptions aligned = options;
  uint64_t payload = payload_size_;
  aligned.chunk_size =
      ((options.chunk_size + payload - 1) / payload) * payload;
  return BlobStore::OpenChunkReader(id, aligned);
}

Result<uint64_t> PagedBlobStore::AcquirePage() {
  if (!free_pages_.empty()) {
    uint64_t page = free_pages_.back();
    free_pages_.pop_back();
    return page;
  }
  return device_->GrowOnePage();
}

/// Push handle of PagedBlobStore: buffers at most one partial page in
/// memory, writes whole pages to the device as they fill, and links
/// the chain into the store's BLOB table only at Finish. Pages staged
/// by an aborted push go back to the free list.
class PagedPushHandle final : public PushHandle {
 public:
  explicit PagedPushHandle(PagedBlobStore* store) : store_(store) {
    pending_.reserve(store->payload_per_page());
  }

  ~PagedPushHandle() override { Abort(); }

  Status Push(ByteSpan data) override {
    if (store_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    obs::ScopedSpan span("blob.push");
    const auto& metrics = blob_internal::StoreMetrics::Get();
    obs::ScopedTimerUs timer(metrics.append_us);
    metrics.appends->Add();
    metrics.bytes_written->Add(data.size());
    const uint32_t payload_size = store_->payload_per_page();
    size_t pos = 0;
    while (pos < data.size()) {
      size_t take = std::min<size_t>(payload_size - pending_.size(),
                                     data.size() - pos);
      pending_.insert(pending_.end(), data.begin() + pos,
                      data.begin() + pos + take);
      pos += take;
      meta_.size += take;
      if (pending_.size() == payload_size) {
        TBM_RETURN_IF_ERROR(FlushPendingPage());
      }
    }
    return Status::OK();
  }

  Result<BlobId> Finish() override {
    if (store_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    if (!pending_.empty()) {
      TBM_RETURN_IF_ERROR(FlushPendingPage());
    }
    BlobId id = store_->PublishPushed(std::move(meta_));
    store_ = nullptr;
    return id;
  }

  Status Abort() override {
    if (store_ != nullptr) {
      store_->ReleaseStagedPages(meta_.pages);
      store_ = nullptr;
    }
    return Status::OK();
  }

  uint64_t bytes_pushed() const override { return meta_.size; }

 private:
  Status FlushPendingPage() {
    TBM_ASSIGN_OR_RETURN(uint64_t page, store_->AcquirePage());
    if (Status write = store_->WritePagePayload(page, pending_);
        !write.ok()) {
      store_->free_pages_.push_back(page);
      return write;
    }
    meta_.pages.push_back(page);
    pending_.clear();
    return Status::OK();
  }

  PagedBlobStore* store_;  ///< Null once finished or aborted.
  PagedBlobStore::BlobMeta meta_;
  Bytes pending_;  ///< Partial trailing page not yet on the device.
};

Result<std::unique_ptr<PushHandle>> PagedBlobStore::StartPush() {
  return std::unique_ptr<PushHandle>(std::make_unique<PagedPushHandle>(this));
}

BlobId PagedBlobStore::PublishPushed(BlobMeta meta) {
  BlobId id = next_id_++;
  blobs_.emplace(id, std::move(meta));
  return id;
}

void PagedBlobStore::ReleaseStagedPages(const std::vector<uint64_t>& pages) {
  for (uint64_t page : pages) CacheInvalidate(page);
  free_pages_.insert(free_pages_.end(), pages.begin(), pages.end());
}

Result<BufferSlice> PagedBlobStore::Read(BlobId id, ByteRange range) const {
  obs::ScopedSpan span("blob.read");
  const auto& metrics = blob_internal::StoreMetrics::Get();
  obs::ScopedTimerUs timer(metrics.read_us);
  metrics.reads->Add();
  metrics.bytes_read->Add(range.length);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  const BlobMeta& meta = it->second;
  if (range.end() > meta.size) {
    return Status::OutOfRange(
        "read past end of BLOB " + std::to_string(id) + ": [" +
        std::to_string(range.offset) + ", " + std::to_string(range.end()) +
        ") of " + std::to_string(meta.size));
  }
  if (range.empty()) return BufferSlice();
  uint64_t first_page = range.offset / payload_size_;
  uint64_t last_page = (range.end() - 1) / payload_size_;
  if (first_page == last_page) {
    // Single-page range: alias the cached page payload, no copy.
    TBM_ASSIGN_OR_RETURN(BufferSlice payload,
                         ReadPagePayload(meta.pages[first_page]));
    uint64_t from = range.offset - first_page * payload_size_;
    return payload.Slice(from, range.length);
  }
  Bytes out;
  out.reserve(range.length);
  for (uint64_t p = first_page; p <= last_page; ++p) {
    TBM_ASSIGN_OR_RETURN(BufferSlice payload, ReadPagePayload(meta.pages[p]));
    uint64_t page_start = p * payload_size_;
    uint64_t from = range.offset > page_start ? range.offset - page_start : 0;
    uint64_t to = std::min<uint64_t>(payload.size(),
                                     range.end() - page_start);
    out.insert(out.end(), payload.begin() + from, payload.begin() + to);
  }
  return BufferSlice(std::move(out));
}

Result<uint64_t> PagedBlobStore::Size(BlobId id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  return it->second.size;
}

Status PagedBlobStore::Delete(BlobId id) {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  // Purge the dead BLOB's payloads before its pages are reusable:
  // leaving them resident would misreport occupancy and hand stale
  // bytes to anything that races the page's next writer.
  for (uint64_t page : it->second.pages) CacheInvalidate(page);
  free_pages_.insert(free_pages_.end(), it->second.pages.begin(),
                     it->second.pages.end());
  blobs_.erase(it);
  return Status::OK();
}

bool PagedBlobStore::Exists(BlobId id) const { return blobs_.count(id) > 0; }

std::vector<BlobId> PagedBlobStore::List() const {
  std::vector<BlobId> ids;
  ids.reserve(blobs_.size());
  for (const auto& [id, meta] : blobs_) ids.push_back(id);
  return ids;
}

BlobStoreStats PagedBlobStore::Stats() const {
  BlobStoreStats stats;
  stats.blob_count = blobs_.size();
  for (const auto& [id, meta] : blobs_) stats.logical_bytes += meta.size;
  stats.physical_bytes = device_->page_count() * device_->page_size();
  return stats;
}

Status PagedBlobStore::Defragment(BlobId id) {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  BlobMeta& meta = it->second;
  if (meta.pages.size() <= 1) return Status::OK();

  // Copy payloads into freshly grown pages, which are contiguous by
  // construction (GrowOnePage indexes increase monotonically).
  std::vector<uint64_t> new_pages;
  new_pages.reserve(meta.pages.size());
  for (uint64_t old_page : meta.pages) {
    TBM_ASSIGN_OR_RETURN(BufferSlice payload, ReadPagePayload(old_page));
    TBM_ASSIGN_OR_RETURN(uint64_t fresh, device_->GrowOnePage());
    TBM_RETURN_IF_ERROR(WritePagePayload(fresh, payload.span()));
    new_pages.push_back(fresh);
  }
  for (uint64_t old_page : meta.pages) CacheInvalidate(old_page);
  free_pages_.insert(free_pages_.end(), meta.pages.begin(), meta.pages.end());
  meta.pages = std::move(new_pages);
  return Status::OK();
}

Result<double> PagedBlobStore::Fragmentation(BlobId id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return NoSuchBlob(id);
  const auto& pages = it->second.pages;
  if (pages.size() <= 1) return 0.0;
  uint64_t breaks = 0;
  for (size_t i = 1; i < pages.size(); ++i) {
    if (pages[i] != pages[i - 1] + 1) ++breaks;
  }
  return static_cast<double>(breaks) / static_cast<double>(pages.size() - 1);
}

}  // namespace tbm

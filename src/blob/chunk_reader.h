#ifndef TBM_BLOB_CHUNK_READER_H_
#define TBM_BLOB_CHUNK_READER_H_

#include <algorithm>
#include <cstdint>
#include <memory>

#include "base/buffer.h"
#include "base/bytes.h"
#include "base/result.h"
#include "blob/read_policy.h"

namespace tbm {

/// How a chunked read of a BLOB behaves.
struct ChunkReaderOptions {
  /// Bytes served per chunk (the last chunk may be shorter). Stores may
  /// round this up to align with their physical layout — PagedBlobStore
  /// aligns chunks to whole page payloads so adjacent chunks never
  /// re-read (and re-checksum) a shared boundary page.
  uint32_t chunk_size = 256 * 1024;

  /// Retry/backoff/timeout applied to every chunk read.
  ReadPolicy policy;
};

/// Incremental access to one BLOB as a sequence of fixed-size chunks.
///
/// The paper's timed streams are consumed in timestamp order at a
/// bounded data rate; whole-object reads force the full BLOB latency
/// up front and forbid overlapping decode with I/O. A ChunkReader is
/// the delivery-path primitive that fixes this: `ReadChunk(i)` serves
/// chunk `i` on demand, so consumers (AsyncPrefetcher, ElementStream,
/// the streaming codec bridge) pull data as the presentation needs it.
///
/// Obtain one with `BlobStore::OpenChunkReader`. The reader snapshots
/// the BLOB size at open; bytes appended afterwards are not visible.
/// `ReadChunk` is safe to call from multiple threads concurrently as
/// long as no thread mutates the underlying store — this is what the
/// prefetcher relies on to overlap chunk fetches.
class ChunkReader {
 public:
  virtual ~ChunkReader() = default;

  /// Chunk payload size in bytes (the effective, possibly store-aligned
  /// value — not necessarily what the options requested).
  virtual uint32_t chunk_size() const = 0;

  /// BLOB size snapshot taken at open, bytes.
  virtual uint64_t blob_size() const = 0;

  /// Number of chunks ( = ceil(blob_size / chunk_size); 0 for an empty
  /// BLOB).
  uint64_t chunk_count() const {
    uint64_t size = blob_size();
    uint32_t chunk = chunk_size();
    return size == 0 ? 0 : (size + chunk - 1) / chunk;
  }

  /// Byte range chunk `index` covers (the final chunk is truncated to
  /// the BLOB end).
  ByteRange ChunkRange(uint64_t index) const {
    uint64_t offset = index * static_cast<uint64_t>(chunk_size());
    uint64_t length =
        offset >= blob_size()
            ? 0
            : std::min<uint64_t>(chunk_size(), blob_size() - offset);
    return ByteRange{offset, length};
  }

  /// Reads chunk `index` under the reader's ReadPolicy. OutOfRange for
  /// `index >= chunk_count()`. Zero-copy where the store supports it
  /// (see BlobStore::Read); the slice owns its bytes either way.
  virtual Result<BufferSlice> ReadChunk(uint64_t index) const = 0;

  /// The policy chunk reads run under.
  virtual const ReadPolicy& policy() const = 0;
};

class BlobStore;
using BlobId = uint64_t;

/// The default ChunkReader every store can serve: each chunk is one
/// policy-governed range read against the BlobStore interface. Stores
/// with richer layouts override `BlobStore::OpenChunkReader` to adjust
/// the geometry (see PagedBlobStore) but reuse this reader.
Result<std::unique_ptr<ChunkReader>> MakeRangeChunkReader(
    const BlobStore& store, BlobId id, const ChunkReaderOptions& options);

}  // namespace tbm

#endif  // TBM_BLOB_CHUNK_READER_H_

#ifndef TBM_BLOB_STORE_METRICS_H_
#define TBM_BLOB_STORE_METRICS_H_

#include "obs/metrics.h"

namespace tbm::blob_internal {

/// Process-wide blob I/O metrics, shared by every store implementation
/// (memory, paged, file). Page counters are only advanced by the paged
/// store; byte and latency instruments aggregate across all of them.
struct StoreMetrics {
  obs::Counter* reads;
  obs::Counter* bytes_read;
  obs::Counter* appends;
  obs::Counter* bytes_written;
  obs::Counter* pages_read;
  obs::Counter* pages_written;
  obs::Histogram* read_us;
  obs::Histogram* append_us;

  static const StoreMetrics& Get() {
    static const StoreMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return StoreMetrics{registry.counter("blob.reads"),
                          registry.counter("blob.bytes_read"),
                          registry.counter("blob.appends"),
                          registry.counter("blob.bytes_written"),
                          registry.counter("blob.pages_read"),
                          registry.counter("blob.pages_written"),
                          registry.histogram("blob.read_us"),
                          registry.histogram("blob.append_us")};
    }();
    return metrics;
  }
};

/// Instruments of the content-addressed tier. Push/pull throughput is
/// derivable from the byte counters and latency histograms; the dedup
/// ratio from logical vs stored bytes (gauges maintained by the
/// store's ledger).
struct CasMetrics {
  obs::Counter* pushes;             ///< Finished pushes (incl. dedup hits).
  obs::Counter* push_bytes;         ///< Bytes streamed through push.
  obs::Counter* dedup_hits;         ///< Pushes that matched an existing hash.
  obs::Counter* dedup_bytes_saved;  ///< Bytes NOT stored thanks to dedup.
  obs::Counter* pulls;              ///< Read calls served.
  obs::Counter* pull_bytes;         ///< Bytes served by reads.
  obs::Counter* gc_swept;           ///< Blobs collected by sweeps.
  obs::Counter* gc_reclaimed_bytes; ///< Bytes reclaimed by sweeps.
  obs::Counter* gc_pins;            ///< Pushes that pinned a condemned hash.
  obs::Gauge* logical_bytes;        ///< Sum of size × refcount.
  obs::Gauge* stored_bytes;         ///< Sum of size (each hash once).
  obs::Histogram* push_us;          ///< Per-finish latency.
  obs::Histogram* pull_us;          ///< Per-read latency.
  obs::Histogram* gc_pause_us;      ///< Locked (mutator-excluding) sweep time.

  static const CasMetrics& Get() {
    static const CasMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return CasMetrics{registry.counter("cas.pushes"),
                        registry.counter("cas.push_bytes"),
                        registry.counter("cas.dedup_hits"),
                        registry.counter("cas.dedup_bytes_saved"),
                        registry.counter("cas.pulls"),
                        registry.counter("cas.pull_bytes"),
                        registry.counter("cas.gc_swept"),
                        registry.counter("cas.gc_reclaimed_bytes"),
                        registry.counter("cas.gc_pins"),
                        registry.gauge("cas.logical_bytes"),
                        registry.gauge("cas.stored_bytes"),
                        registry.histogram("cas.push_us"),
                        registry.histogram("cas.pull_us"),
                        registry.histogram("cas.gc_pause_us")};
    }();
    return metrics;
  }
};

}  // namespace tbm::blob_internal

#endif  // TBM_BLOB_STORE_METRICS_H_

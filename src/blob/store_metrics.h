#ifndef TBM_BLOB_STORE_METRICS_H_
#define TBM_BLOB_STORE_METRICS_H_

#include "obs/metrics.h"

namespace tbm::blob_internal {

/// Process-wide blob I/O metrics, shared by every store implementation
/// (memory, paged, file). Page counters are only advanced by the paged
/// store; byte and latency instruments aggregate across all of them.
struct StoreMetrics {
  obs::Counter* reads;
  obs::Counter* bytes_read;
  obs::Counter* appends;
  obs::Counter* bytes_written;
  obs::Counter* pages_read;
  obs::Counter* pages_written;
  obs::Histogram* read_us;
  obs::Histogram* append_us;

  static const StoreMetrics& Get() {
    static const StoreMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return StoreMetrics{registry.counter("blob.reads"),
                          registry.counter("blob.bytes_read"),
                          registry.counter("blob.appends"),
                          registry.counter("blob.bytes_written"),
                          registry.counter("blob.pages_read"),
                          registry.counter("blob.pages_written"),
                          registry.histogram("blob.read_us"),
                          registry.histogram("blob.append_us")};
    }();
    return metrics;
  }
};

}  // namespace tbm::blob_internal

#endif  // TBM_BLOB_STORE_METRICS_H_

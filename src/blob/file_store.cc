#include "blob/file_store.h"

#include <cstdio>
#include <filesystem>

#include "blob/store_metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace fs = std::filesystem;

namespace {
Status NoSuchBlob(BlobId id) {
  return Status::NotFound("no such BLOB: " + std::to_string(id));
}
}  // namespace

Result<std::unique_ptr<FileBlobStore>> FileBlobStore::Open(
    const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  auto store = std::unique_ptr<FileBlobStore>(new FileBlobStore(dir));
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    BlobId id = 0;
    if (std::sscanf(name.c_str(), "blob_%llu.bin",
                    reinterpret_cast<unsigned long long*>(&id)) == 1) {
      store->sizes_[id] = entry.file_size();
      store->next_id_ = std::max(store->next_id_, id + 1);
    } else if (name.rfind(".push_", 0) == 0) {
      // Stale staging file from a crashed push: never published, safe
      // to discard.
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
    }
  }
  if (ec) {
    return Status::IOError("cannot scan directory " + dir + ": " +
                           ec.message());
  }
  return store;
}

std::string FileBlobStore::PathFor(BlobId id) const {
  return dir_ + "/blob_" + std::to_string(id) + ".bin";
}

/// Push handle of FileBlobStore: streams into a temp file, renamed to
/// `blob_<id>.bin` at Finish. The id is allocated at publish time, so
/// aborted pushes do not burn ids and the staged file is invisible to
/// the directory scan.
class FilePushHandle final : public PushHandle {
 public:
  FilePushHandle(FileBlobStore* store, std::string temp_path, std::FILE* file)
      : store_(store), temp_path_(std::move(temp_path)), file_(file) {}

  ~FilePushHandle() override { Abort(); }

  Status Push(ByteSpan data) override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    obs::ScopedSpan span("blob.push");
    const auto& metrics = blob_internal::StoreMetrics::Get();
    obs::ScopedTimerUs timer(metrics.append_us);
    metrics.appends->Add();
    metrics.bytes_written->Add(data.size());
    size_t written =
        data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) {
      return Status::IOError("short push write to " + temp_path_);
    }
    size_ += data.size();
    return Status::OK();
  }

  Result<BlobId> Finish() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("push already finished or aborted");
    }
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      std::error_code ignore;
      fs::remove(temp_path_, ignore);
      return Status::IOError("cannot finish push: close of " + temp_path_ +
                             " failed");
    }
    return store_->PublishPushedFile(temp_path_, size_);
  }

  Status Abort() override {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
      std::error_code ignore;
      fs::remove(temp_path_, ignore);
    }
    return Status::OK();
  }

  uint64_t bytes_pushed() const override { return size_; }

 private:
  FileBlobStore* store_;
  std::string temp_path_;
  std::FILE* file_;  ///< Null once finished or aborted.
  uint64_t size_ = 0;
};

Result<std::unique_ptr<PushHandle>> FileBlobStore::StartPush() {
  std::string temp_path =
      dir_ + "/.push_" + std::to_string(push_token_++) + ".tmp";
  std::FILE* f = std::fopen(temp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create push staging file: " + temp_path);
  }
  return std::unique_ptr<PushHandle>(
      std::make_unique<FilePushHandle>(this, std::move(temp_path), f));
}

Result<BlobId> FileBlobStore::PublishPushedFile(const std::string& temp_path,
                                                uint64_t size) {
  BlobId id = next_id_++;
  std::error_code ec;
  fs::rename(temp_path, PathFor(id), ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(temp_path, ignore);
    return Status::IOError("cannot publish pushed BLOB " + PathFor(id) + ": " +
                           ec.message());
  }
  sizes_[id] = size;
  return id;
}

Result<BufferSlice> FileBlobStore::Read(BlobId id, ByteRange range) const {
  obs::ScopedSpan span("blob.read");
  const auto& metrics = blob_internal::StoreMetrics::Get();
  obs::ScopedTimerUs timer(metrics.read_us);
  metrics.reads->Add();
  metrics.bytes_read->Add(range.length);
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return NoSuchBlob(id);
  if (range.end() > it->second) {
    return Status::OutOfRange("read past end of BLOB " + std::to_string(id));
  }
  std::FILE* f = std::fopen(PathFor(id).c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open blob file: " + PathFor(id));
  }
  Bytes out(range.length);
  bool ok = std::fseek(f, static_cast<long>(range.offset), SEEK_SET) == 0;
  if (ok && !out.empty()) {
    ok = std::fread(out.data(), 1, out.size(), f) == out.size();
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short read from " + PathFor(id));
  return BufferSlice(std::move(out));
}

Result<uint64_t> FileBlobStore::Size(BlobId id) const {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return NoSuchBlob(id);
  return it->second;
}

Status FileBlobStore::Delete(BlobId id) {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return NoSuchBlob(id);
  std::error_code ec;
  fs::remove(PathFor(id), ec);
  if (ec) {
    return Status::IOError("cannot delete " + PathFor(id) + ": " +
                           ec.message());
  }
  sizes_.erase(it);
  return Status::OK();
}

bool FileBlobStore::Exists(BlobId id) const { return sizes_.count(id) > 0; }

std::vector<BlobId> FileBlobStore::List() const {
  std::vector<BlobId> ids;
  ids.reserve(sizes_.size());
  for (const auto& [id, size] : sizes_) ids.push_back(id);
  return ids;
}

}  // namespace tbm

#include "blob/file_store.h"

#include <cstdio>
#include <filesystem>

#include "blob/store_metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace fs = std::filesystem;

namespace {
Status NoSuchBlob(BlobId id) {
  return Status::NotFound("no such BLOB: " + std::to_string(id));
}
}  // namespace

Result<std::unique_ptr<FileBlobStore>> FileBlobStore::Open(
    const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  auto store = std::unique_ptr<FileBlobStore>(new FileBlobStore(dir));
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    BlobId id = 0;
    if (std::sscanf(name.c_str(), "blob_%llu.bin",
                    reinterpret_cast<unsigned long long*>(&id)) == 1) {
      store->sizes_[id] = entry.file_size();
      store->next_id_ = std::max(store->next_id_, id + 1);
    }
  }
  if (ec) {
    return Status::IOError("cannot scan directory " + dir + ": " +
                           ec.message());
  }
  return store;
}

std::string FileBlobStore::PathFor(BlobId id) const {
  return dir_ + "/blob_" + std::to_string(id) + ".bin";
}

Result<BlobId> FileBlobStore::Create() {
  BlobId id = next_id_++;
  std::FILE* f = std::fopen(PathFor(id).c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create blob file: " + PathFor(id));
  }
  std::fclose(f);
  sizes_[id] = 0;
  return id;
}

Status FileBlobStore::Append(BlobId id, ByteSpan data) {
  obs::ScopedSpan span("blob.append");
  const auto& metrics = blob_internal::StoreMetrics::Get();
  obs::ScopedTimerUs timer(metrics.append_us);
  metrics.appends->Add();
  metrics.bytes_written->Add(data.size());
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return NoSuchBlob(id);
  std::FILE* f = std::fopen(PathFor(id).c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open blob file: " + PathFor(id));
  }
  size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int rc = std::fclose(f);
  if (written != data.size() || rc != 0) {
    return Status::IOError("short append to " + PathFor(id));
  }
  it->second += data.size();
  return Status::OK();
}

Result<BufferSlice> FileBlobStore::Read(BlobId id, ByteRange range) const {
  obs::ScopedSpan span("blob.read");
  const auto& metrics = blob_internal::StoreMetrics::Get();
  obs::ScopedTimerUs timer(metrics.read_us);
  metrics.reads->Add();
  metrics.bytes_read->Add(range.length);
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return NoSuchBlob(id);
  if (range.end() > it->second) {
    return Status::OutOfRange("read past end of BLOB " + std::to_string(id));
  }
  std::FILE* f = std::fopen(PathFor(id).c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open blob file: " + PathFor(id));
  }
  Bytes out(range.length);
  bool ok = std::fseek(f, static_cast<long>(range.offset), SEEK_SET) == 0;
  if (ok && !out.empty()) {
    ok = std::fread(out.data(), 1, out.size(), f) == out.size();
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short read from " + PathFor(id));
  return BufferSlice(std::move(out));
}

Result<uint64_t> FileBlobStore::Size(BlobId id) const {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return NoSuchBlob(id);
  return it->second;
}

Status FileBlobStore::Delete(BlobId id) {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return NoSuchBlob(id);
  std::error_code ec;
  fs::remove(PathFor(id), ec);
  if (ec) {
    return Status::IOError("cannot delete " + PathFor(id) + ": " +
                           ec.message());
  }
  sizes_.erase(it);
  return Status::OK();
}

bool FileBlobStore::Exists(BlobId id) const { return sizes_.count(id) > 0; }

std::vector<BlobId> FileBlobStore::List() const {
  std::vector<BlobId> ids;
  ids.reserve(sizes_.size());
  for (const auto& [id, size] : sizes_) ids.push_back(id);
  return ids;
}

}  // namespace tbm

#ifndef TBM_BLOB_FAULT_STORE_H_
#define TBM_BLOB_FAULT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "blob/blob_store.h"
#include "blob/paged_store.h"

namespace tbm {

/// Behaviour of a FaultInjectingStore.
struct FaultConfig {
  /// Probability that a Read fails with `code`, per call, in [0, 1].
  /// Draws are deterministic: a hash of (seed, call index).
  double read_fault_rate = 0.0;

  /// Probability that a push handle Push fails with `code`, per call.
  double append_fault_rate = 0.0;

  /// Seed of the deterministic fault sequence.
  uint64_t seed = 1;

  /// Error code injected faults carry. Retry policies treat IOError
  /// and ResourceExhausted as transient (see blob/read_policy.h).
  StatusCode code = StatusCode::kIOError;

  /// Simulated device latency added to every successful Read: a fixed
  /// per-operation cost (seek / request round-trip) plus a throughput
  /// cost per KiB transferred. Both in microseconds; 0 disables. This
  /// turns any store into a model of a slow sequential device, which
  /// is what the streaming ablation bench uses for its cold-read
  /// baseline.
  double read_latency_fixed_us = 0.0;
  double read_latency_per_kib_us = 0.0;
};

/// Decorator injecting transient faults and device latency into any
/// BlobStore — the adversary the streaming pipeline's retry/backoff
/// layer is tested against.
///
/// Probabilistic faults are drawn from a counter-hash PRNG, so a run
/// is reproducible given the seed yet thread-safe (the counter is
/// atomic). Scripted faults (`FailNextReads`) take precedence over
/// probabilistic ones and fail deterministically, which is what the
/// retry tests use to exercise exact fault sequences.
class FaultInjectingStore final : public BlobStore {
 public:
  explicit FaultInjectingStore(std::unique_ptr<BlobStore> inner,
                               FaultConfig config = {});

  /// Streaming push through the fault layer: wraps the inner store's
  /// handle and injects `append_fault_rate` faults into Push calls.
  Result<std::unique_ptr<PushHandle>> StartPush() override;

  /// Chunked reads preserve the inner store's geometry: the effective
  /// chunk size is taken from the wrapped store's own reader (so a
  /// PagedBlobStore behind the decorator keeps page-aligned chunks and
  /// its cache-friendly no-boundary-page-overlap property), while the
  /// chunk reads themselves still pass through the fault layer.
  Result<std::unique_ptr<ChunkReader>> OpenChunkReader(
      BlobId id, const ChunkReaderOptions& options) const override;

  /// The wrapped store (owned).
  BlobStore* inner() { return inner_.get(); }
  const BlobStore* inner() const { return inner_.get(); }

  const FaultConfig& config() const { return config_; }

  /// Forces the next `n` Read calls to fail (before any probabilistic
  /// draw). Thread-safe.
  void FailNextReads(int n) { forced_read_faults_.store(n); }

  /// Total faults injected into reads / appends so far.
  uint64_t injected_read_faults() const { return read_faults_.load(); }
  uint64_t injected_append_faults() const { return append_faults_.load(); }
  /// Total Read calls observed (failed or not).
  uint64_t reads_seen() const { return reads_seen_.load(); }

  Result<BufferSlice> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;
  Status Delete(BlobId id) override;
  bool Exists(BlobId id) const override;
  std::vector<BlobId> List() const override;

 private:
  Status MakeFault(const char* op) const;
  bool DrawFault(double rate) const;

  std::unique_ptr<BlobStore> inner_;
  FaultConfig config_;
  mutable std::atomic<uint64_t> draws_{0};
  mutable std::atomic<int> forced_read_faults_{0};
  mutable std::atomic<uint64_t> read_faults_{0};
  mutable std::atomic<uint64_t> append_faults_{0};
  mutable std::atomic<uint64_t> reads_seen_{0};
};

/// Decorator injecting transient faults into a PageDevice — the layer
/// *below* PagedBlobStore, so injected failures strike in the middle
/// of the store's own machinery: during LRU page-cache refills, tail-
/// page read-modify-write appends, and defragmentation copies. This is
/// the adversary the page cache's no-poisoned-residents invariant is
/// tested against (a failed refill must never leave a stale or partial
/// payload resident).
///
/// Fault draws use the same deterministic counter-hash scheme as
/// FaultInjectingStore: reproducible given the seed, thread-safe.
/// `read_fault_rate` applies to ReadPage, `append_fault_rate` to
/// WritePage; the latency model applies to successful ReadPage calls
/// (one page per operation).
class FaultInjectingPageDevice final : public PageDevice {
 public:
  explicit FaultInjectingPageDevice(std::unique_ptr<PageDevice> inner,
                                    FaultConfig config = {});
  ~FaultInjectingPageDevice() override;

  PageDevice* inner() { return inner_.get(); }

  /// Forces the next `n` ReadPage calls to fail. Thread-safe.
  void FailNextPageReads(int n) { forced_read_faults_.store(n); }

  uint64_t injected_read_faults() const { return read_faults_.load(); }
  uint64_t injected_write_faults() const { return write_faults_.load(); }

  uint32_t page_size() const override;
  uint64_t page_count() const override;
  Result<uint64_t> GrowOnePage() override;
  Status ReadPage(uint64_t index, uint8_t* out) const override;
  Status WritePage(uint64_t index, const uint8_t* data) override;

 private:
  Status MakeFault(const char* op) const;
  bool DrawFault(double rate) const;

  std::unique_ptr<PageDevice> inner_;
  FaultConfig config_;
  mutable std::atomic<uint64_t> draws_{0};
  mutable std::atomic<int> forced_read_faults_{0};
  mutable std::atomic<uint64_t> read_faults_{0};
  mutable std::atomic<uint64_t> write_faults_{0};
};

}  // namespace tbm

#endif  // TBM_BLOB_FAULT_STORE_H_

#ifndef TBM_BLOB_FAULT_STORE_H_
#define TBM_BLOB_FAULT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "blob/blob_store.h"

namespace tbm {

/// Behaviour of a FaultInjectingStore.
struct FaultConfig {
  /// Probability that a Read fails with `code`, per call, in [0, 1].
  /// Draws are deterministic: a hash of (seed, call index).
  double read_fault_rate = 0.0;

  /// Probability that an Append fails with `code`, per call.
  double append_fault_rate = 0.0;

  /// Seed of the deterministic fault sequence.
  uint64_t seed = 1;

  /// Error code injected faults carry. Retry policies treat IOError
  /// and ResourceExhausted as transient (see blob/read_policy.h).
  StatusCode code = StatusCode::kIOError;

  /// Simulated device latency added to every successful Read: a fixed
  /// per-operation cost (seek / request round-trip) plus a throughput
  /// cost per KiB transferred. Both in microseconds; 0 disables. This
  /// turns any store into a model of a slow sequential device, which
  /// is what the streaming ablation bench uses for its cold-read
  /// baseline.
  double read_latency_fixed_us = 0.0;
  double read_latency_per_kib_us = 0.0;
};

/// Decorator injecting transient faults and device latency into any
/// BlobStore — the adversary the streaming pipeline's retry/backoff
/// layer is tested against.
///
/// Probabilistic faults are drawn from a counter-hash PRNG, so a run
/// is reproducible given the seed yet thread-safe (the counter is
/// atomic). Scripted faults (`FailNextReads`) take precedence over
/// probabilistic ones and fail deterministically, which is what the
/// retry tests use to exercise exact fault sequences.
class FaultInjectingStore final : public BlobStore {
 public:
  explicit FaultInjectingStore(std::unique_ptr<BlobStore> inner,
                               FaultConfig config = {});

  /// The wrapped store (owned).
  BlobStore* inner() { return inner_.get(); }
  const BlobStore* inner() const { return inner_.get(); }

  const FaultConfig& config() const { return config_; }

  /// Forces the next `n` Read calls to fail (before any probabilistic
  /// draw). Thread-safe.
  void FailNextReads(int n) { forced_read_faults_.store(n); }

  /// Total faults injected into reads / appends so far.
  uint64_t injected_read_faults() const { return read_faults_.load(); }
  uint64_t injected_append_faults() const { return append_faults_.load(); }
  /// Total Read calls observed (failed or not).
  uint64_t reads_seen() const { return reads_seen_.load(); }

  Result<BlobId> Create() override;
  Status Append(BlobId id, ByteSpan data) override;
  Result<BufferSlice> Read(BlobId id, ByteRange range) const override;
  Result<uint64_t> Size(BlobId id) const override;
  Status Delete(BlobId id) override;
  bool Exists(BlobId id) const override;
  std::vector<BlobId> List() const override;

 private:
  Status MakeFault(const char* op) const;
  bool DrawFault(double rate) const;

  std::unique_ptr<BlobStore> inner_;
  FaultConfig config_;
  mutable std::atomic<uint64_t> draws_{0};
  mutable std::atomic<int> forced_read_faults_{0};
  mutable std::atomic<uint64_t> read_faults_{0};
  mutable std::atomic<uint64_t> append_faults_{0};
  mutable std::atomic<uint64_t> reads_seen_{0};
};

}  // namespace tbm

#endif  // TBM_BLOB_FAULT_STORE_H_

#ifndef TBM_BLOB_READ_POLICY_H_
#define TBM_BLOB_READ_POLICY_H_

#include <cstdint>

#include "base/buffer.h"
#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm {

class BlobStore;
using BlobId = uint64_t;

/// Robustness policy for a single logical read against a BlobStore.
///
/// Playback consumes timed streams at a constant rate; a transient
/// store failure (a dropped page read, a saturated device, an injected
/// fault) should cost a retry, not abort the whole presentation. A
/// ReadPolicy bounds that tolerance: up to `max_retries` re-attempts
/// with exponential backoff, all within a total `timeout_us` budget.
///
/// Retries apply only to *transient* errors (IOError and
/// ResourceExhausted by default; Corruption too when
/// `retry_corruption` is set, for media where a re-read can succeed).
/// Definite errors — NotFound, OutOfRange, InvalidArgument — are
/// returned immediately: retrying cannot make a missing BLOB appear.
struct ReadPolicy {
  /// Re-attempts after the first failed read. 0 = fail fast.
  int max_retries = 0;

  /// Delay before the first retry, microseconds.
  double backoff_initial_us = 500.0;

  /// Multiplier applied to the delay after every retry.
  double backoff_multiplier = 2.0;

  /// Upper bound on a single backoff delay, microseconds.
  double backoff_max_us = 50'000.0;

  /// Total time budget for the read across all attempts and backoff
  /// sleeps, microseconds. 0 = unbounded. The budget is checked
  /// between attempts; a synchronous store read in progress is never
  /// interrupted, so the bound is approximate by one attempt.
  double timeout_us = 0.0;

  /// Also treat Corruption as transient (e.g. scratched optical media
  /// where a re-read may pass the checksum).
  bool retry_corruption = false;
};

/// True iff `status` is an error this policy considers transient.
bool IsTransientReadError(const Status& status, const ReadPolicy& policy);

/// Reads `range` of BLOB `id` from `store` under `policy`: transient
/// failures are retried with exponential backoff until they succeed,
/// the retry budget is exhausted, or the timeout expires. The returned
/// error is the last attempt's, with retry context prepended.
///
/// Retry counts land in the obs registry ("blob.read_retries",
/// "blob.read_gave_up").
Result<BufferSlice> ReadWithPolicy(const BlobStore& store, BlobId id,
                                   ByteRange range, const ReadPolicy& policy);

}  // namespace tbm

#endif  // TBM_BLOB_READ_POLICY_H_

#include "stream/timed_stream.h"

#include <algorithm>

namespace tbm {

Status TimedStream::Append(StreamElement element) {
  if (element.duration < 0) {
    return Status::InvalidArgument("element duration must be >= 0, got " +
                                   std::to_string(element.duration));
  }
  if (!elements_.empty() && element.start < elements_.back().start) {
    return Status::InvalidArgument(
        "element start " + std::to_string(element.start) +
        " precedes previous start " +
        std::to_string(elements_.back().start) +
        " (Def. 3 requires s_{i+1} >= s_i)");
  }
  max_end_ = std::max(max_end_, element.start + element.duration);
  elements_.push_back(std::move(element));
  return Status::OK();
}

Status TimedStream::AppendContiguous(BufferSlice data, int64_t duration,
                                     ElementDescriptor descriptor) {
  StreamElement e;
  e.data = std::move(data);
  e.duration = duration;
  e.start = elements_.empty()
                ? 0
                : elements_.back().start + elements_.back().duration;
  e.descriptor = std::move(descriptor);
  return Append(std::move(e));
}

Status TimedStream::AppendEvent(BufferSlice data, int64_t start,
                                ElementDescriptor descriptor) {
  StreamElement e;
  e.data = std::move(data);
  e.start = start;
  e.duration = 0;
  e.descriptor = std::move(descriptor);
  return Append(std::move(e));
}

int64_t TimedStream::StartTime() const {
  return elements_.empty() ? 0 : elements_.front().start;
}

int64_t TimedStream::EndTime() const {
  return elements_.empty() ? 0 : max_end_;
}

uint64_t TimedStream::TotalBytes() const {
  uint64_t total = 0;
  for (const StreamElement& e : elements_) total += e.data.size();
  return total;
}

double TimedStream::MeanDataRate() const {
  double seconds = DurationSeconds().ToDouble();
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(TotalBytes()) / seconds;
}

Result<size_t> TimedStream::ElementAtTime(int64_t t) const {
  // Elements are sorted by start. Find the first element with
  // start > t, then scan backwards for a span containing t. The
  // backward scan is needed for overlapping elements (chords); for
  // continuous media it terminates after one step.
  auto it = std::upper_bound(
      elements_.begin(), elements_.end(), t,
      [](int64_t value, const StreamElement& e) { return value < e.start; });
  while (it != elements_.begin()) {
    --it;
    if (it->span().Contains(t) || (it->duration == 0 && it->start == t)) {
      return static_cast<size_t>(it - elements_.begin());
    }
  }
  return Status::NotFound("no element at time " + std::to_string(t));
}

std::vector<size_t> TimedStream::ElementsInSpan(TickSpan span) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < elements_.size(); ++i) {
    const StreamElement& e = elements_[i];
    if (e.duration == 0) {
      if (span.Contains(e.start)) out.push_back(i);
    } else if (e.span().Overlaps(span)) {
      out.push_back(i);
    }
    if (e.start >= span.end()) break;
  }
  return out;
}

}  // namespace tbm

#include "stream/category.h"

#include "base/macros.h"

namespace tbm {

std::string StreamCategories::ToString() const {
  std::string out = homogeneous ? "homogeneous" : "heterogeneous";
  // Report the most specific continuity-related category, mirroring the
  // paper's descriptors ("homogeneous, constant frequency",
  // "homogeneous, uniform").
  if (event_based) {
    out += ", event-based";
  } else if (uniform) {
    out += ", uniform";
  } else if (constant_data_rate && constant_frequency) {
    out += ", constant frequency, constant data rate";
  } else if (constant_frequency) {
    out += ", constant frequency";
  } else if (constant_data_rate) {
    out += ", constant data rate";
  } else if (continuous) {
    out += ", continuous";
  } else {
    out += ", non-continuous";
  }
  return out;
}

StreamCategories Classify(const TimedStream& stream) {
  StreamCategories c;
  const auto& elements = stream.elements();
  if (elements.empty()) {
    c.constant_frequency = true;
    c.constant_data_rate = true;
    c.uniform = true;
    return c;
  }

  c.event_based = true;
  bool constant_duration = true;
  bool constant_size = true;
  bool constant_ratio = true;
  const int64_t d0 = elements.front().duration;
  const size_t size0 = elements.front().data.size();

  for (size_t i = 0; i < elements.size(); ++i) {
    const StreamElement& e = elements[i];
    if (e.duration != 0) c.event_based = false;
    if (e.duration != d0) constant_duration = false;
    if (e.data.size() != size0) constant_size = false;
    if (!(e.descriptor == elements.front().descriptor)) c.homogeneous = false;
    if (i + 1 < elements.size() &&
        elements[i + 1].start != e.start + e.duration) {
      c.continuous = false;
    }
    // Constant data rate: size_i / d_i constant. Cross-multiplied to
    // stay in integers: size_i * d_0 == size_0 * d_i.
    if (e.duration == 0 || d0 == 0) {
      if (e.duration != d0) constant_ratio = false;
    } else if (static_cast<__int128>(e.data.size()) * d0 !=
               static_cast<__int128>(size0) * e.duration) {
      constant_ratio = false;
    }
  }

  c.constant_frequency = c.continuous && constant_duration && d0 > 0;
  c.constant_data_rate = c.continuous && constant_ratio && d0 > 0;
  c.uniform = c.continuous && constant_duration && constant_size && d0 > 0;
  return c;
}

Status ValidateAgainstType(const TimedStream& stream,
                           const MediaTypeRegistry& registry) {
  TBM_ASSIGN_OR_RETURN(MediaType type,
                       registry.Find(stream.descriptor().type_name));
  TBM_RETURN_IF_ERROR(type.ValidateDescriptor(stream.descriptor().attrs));

  if (type.fixed_time_system().has_value() &&
      stream.time_system() != *type.fixed_time_system()) {
    return Status::InvalidArgument(
        "type " + type.name() + " requires time system " +
        type.fixed_time_system()->ToString() + ", stream uses " +
        stream.time_system().ToString());
  }

  StreamCategories cats = Classify(stream);
  if (type.requires_continuous() && !cats.continuous) {
    return Status::InvalidArgument("type " + type.name() +
                                   " requires a continuous stream");
  }
  if (type.event_based() && !stream.empty() && !cats.event_based) {
    return Status::InvalidArgument("type " + type.name() +
                                   " requires an event-based stream");
  }
  if (type.fixed_element_duration().has_value()) {
    for (size_t i = 0; i < stream.size(); ++i) {
      if (stream.at(i).duration != *type.fixed_element_duration()) {
        return Status::InvalidArgument(
            "type " + type.name() + " requires element duration " +
            std::to_string(*type.fixed_element_duration()) + "; element " +
            std::to_string(i) + " has " +
            std::to_string(stream.at(i).duration));
      }
    }
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    TBM_RETURN_IF_ERROR(
        type.ValidateElementDescriptor(stream.at(i).descriptor)
            .WithContext("element " + std::to_string(i)));
  }
  return Status::OK();
}

}  // namespace tbm

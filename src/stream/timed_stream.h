#ifndef TBM_STREAM_TIMED_STREAM_H_
#define TBM_STREAM_TIMED_STREAM_H_

#include <cstdint>
#include <vector>

#include "base/buffer.h"
#include "base/bytes.h"
#include "base/result.h"
#include "media/descriptor.h"
#include "time/time_system.h"

namespace tbm {

/// One tuple <e_i, s_i, d_i> of a timed stream (paper Definition 3):
/// a media element `data`, its start time and its duration, both
/// measured as discrete time values of the stream's time system. The
/// optional per-element descriptor carries attributes that vary element
/// to element (heterogeneous streams); it is empty in homogeneous
/// streams, whose elements are fully described by the media descriptor.
struct StreamElement {
  /// Element payload as a zero-copy view of shared storage: assembling
  /// a stream from a BLOB, slicing one out of a derivation or decoding
  /// it all alias the same ref-counted bytes (mutate via
  /// `data.MutableCopy()` only).
  BufferSlice data;
  int64_t start = 0;
  int64_t duration = 0;
  ElementDescriptor descriptor;

  TickSpan span() const { return TickSpan{start, duration}; }
};

/// A timed stream (paper Definition 3): a finite sequence of tuples
/// <e_i, s_i, d_i>, i = 1..n, based on a media type T and a discrete
/// time system D. Start times and durations satisfy the paper's
/// invariant s_{i+1} >= s_i and d_i >= 0, enforced on every append.
///
/// The start time of an element is *scheduling* information — when the
/// element should be presented relative to the others — not a capture
/// timestamp (paper §5 contrasts this with temporal databases).
class TimedStream {
 public:
  TimedStream() = default;

  /// A stream over `descriptor`'s media type using `time_system`.
  TimedStream(MediaDescriptor descriptor, TimeSystem time_system)
      : descriptor_(std::move(descriptor)), time_system_(time_system) {}

  const MediaDescriptor& descriptor() const { return descriptor_; }
  MediaDescriptor* mutable_descriptor() { return &descriptor_; }
  const TimeSystem& time_system() const { return time_system_; }

  /// Appends an element; InvalidArgument if it violates the Def. 3
  /// ordering invariant (start < previous start, or negative duration).
  Status Append(StreamElement element);

  /// Appends an element immediately after the current last element
  /// (s = previous end, or 0 for the first element) — the common case
  /// for continuous media.
  Status AppendContiguous(BufferSlice data, int64_t duration,
                          ElementDescriptor descriptor = {});

  /// Appends a duration-less event at `start` (event-based streams).
  Status AppendEvent(BufferSlice data, int64_t start,
                     ElementDescriptor descriptor = {});

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const StreamElement& at(size_t i) const { return elements_[i]; }
  const std::vector<StreamElement>& elements() const { return elements_; }

  auto begin() const { return elements_.begin(); }
  auto end() const { return elements_.end(); }

  /// First start time s_1 (0 for empty streams).
  int64_t StartTime() const;

  /// End of the stream's span: max over i of s_i + d_i. For an
  /// event-based stream this is the last event time.
  int64_t EndTime() const;

  /// EndTime() - StartTime(), in ticks.
  int64_t DurationTicks() const { return EndTime() - StartTime(); }

  /// Span duration in seconds under the stream's time system.
  Rational DurationSeconds() const {
    return time_system_.ToSeconds(DurationTicks());
  }

  /// Total payload bytes across all elements.
  uint64_t TotalBytes() const;

  /// Mean data rate in bytes per second over the stream span
  /// (0 for empty or zero-duration streams).
  double MeanDataRate() const;

  /// Index of the element whose span contains discrete time `t`
  /// (binary search over start times; NotFound if `t` falls in a gap
  /// or outside the stream). When elements overlap, returns the
  /// latest-starting element containing `t` (the most specific match).
  Result<size_t> ElementAtTime(int64_t t) const;

  /// Indexes of all elements whose spans intersect `span`, plus events
  /// (d = 0) with start inside it.
  std::vector<size_t> ElementsInSpan(TickSpan span) const;

 private:
  MediaDescriptor descriptor_;
  TimeSystem time_system_;
  std::vector<StreamElement> elements_;
  int64_t max_end_ = 0;
};

}  // namespace tbm

#endif  // TBM_STREAM_TIMED_STREAM_H_

#ifndef TBM_STREAM_CATEGORY_H_
#define TBM_STREAM_CATEGORY_H_

#include <string>

#include "stream/timed_stream.h"

namespace tbm {

/// The timed-stream categories of paper §3.3 / Figure 1.
///
/// Definitions (n = element count):
///  - homogeneous:        element descriptors are constant
///  - heterogeneous:      element descriptors vary (¬homogeneous)
///  - continuous:         s_{i+1} = s_i + d_i for i = 1..n-1
///  - non-continuous:     s_{i+1} ≷ s_i + d_i for some i (gaps/overlaps)
///  - event-based:        d_i = 0 for all i
///  - constant frequency: continuous and element duration constant
///  - constant data rate: continuous and size/duration ratio constant
///  - uniform:            continuous and size and duration both constant
struct StreamCategories {
  bool homogeneous = true;
  bool continuous = true;
  bool event_based = false;
  bool constant_frequency = false;
  bool constant_data_rate = false;
  bool uniform = false;

  bool heterogeneous() const { return !homogeneous; }
  bool non_continuous() const { return !continuous; }

  /// Comma-separated category list in the paper's descriptor style,
  /// e.g. "homogeneous, constant frequency" or "homogeneous, uniform".
  std::string ToString() const;

  friend bool operator==(const StreamCategories&,
                         const StreamCategories&) = default;
};

/// Classifies a stream into the Figure 1 categories by inspecting its
/// elements. Empty and single-element streams classify as homogeneous,
/// continuous and uniform (all universally-quantified predicates hold
/// vacuously); an empty stream is not event-based.
StreamCategories Classify(const TimedStream& stream);

/// Checks a stream against the constraints its media type imposes
/// (paper §3.3: "a media type imposes restrictions on the form of
/// timed streams based on that type"):
///  - fixed time system (e.g. CD audio forces D_44100),
///  - required continuity,
///  - fixed element duration (e.g. d_i = 1 for CD audio),
///  - event-basedness,
///  - element descriptors valid per the type's element spec.
Status ValidateAgainstType(const TimedStream& stream,
                           const MediaTypeRegistry& registry);

}  // namespace tbm

#endif  // TBM_STREAM_CATEGORY_H_

file(REMOVE_RECURSE
  "CMakeFiles/video_editing.dir/video_editing.cpp.o"
  "CMakeFiles/video_editing.dir/video_editing.cpp.o.d"
  "video_editing"
  "video_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

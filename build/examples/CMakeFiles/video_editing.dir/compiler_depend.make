# Empty compiler generated dependencies file for video_editing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multilingual_movie.dir/multilingual_movie.cpp.o"
  "CMakeFiles/multilingual_movie.dir/multilingual_movie.cpp.o.d"
  "multilingual_movie"
  "multilingual_movie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilingual_movie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

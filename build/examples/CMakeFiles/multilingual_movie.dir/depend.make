# Empty dependencies file for multilingual_movie.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/music_production.dir/music_production.cpp.o"
  "CMakeFiles/music_production.dir/music_production.cpp.o.d"
  "music_production"
  "music_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for music_production.
# This may be replaced when dependencies are built.

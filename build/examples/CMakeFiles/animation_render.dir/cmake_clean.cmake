file(REMOVE_RECURSE
  "CMakeFiles/animation_render.dir/animation_render.cpp.o"
  "CMakeFiles/animation_render.dir/animation_render.cpp.o.d"
  "animation_render"
  "animation_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animation_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for animation_render.
# This may be replaced when dependencies are built.

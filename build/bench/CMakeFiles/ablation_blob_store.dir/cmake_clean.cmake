file(REMOVE_RECURSE
  "CMakeFiles/ablation_blob_store.dir/ablation_blob_store.cc.o"
  "CMakeFiles/ablation_blob_store.dir/ablation_blob_store.cc.o.d"
  "ablation_blob_store"
  "ablation_blob_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blob_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

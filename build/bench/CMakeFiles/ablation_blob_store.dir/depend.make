# Empty dependencies file for ablation_blob_store.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/claim_scalability.dir/claim_scalability.cc.o"
  "CMakeFiles/claim_scalability.dir/claim_scalability.cc.o.d"
  "claim_scalability"
  "claim_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for claim_scalability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/claim_playback_timing.dir/claim_playback_timing.cc.o"
  "CMakeFiles/claim_playback_timing.dir/claim_playback_timing.cc.o.d"
  "claim_playback_timing"
  "claim_playback_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_playback_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for claim_playback_timing.
# This may be replaced when dependencies are built.

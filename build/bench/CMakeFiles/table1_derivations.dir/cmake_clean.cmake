file(REMOVE_RECURSE
  "CMakeFiles/table1_derivations.dir/table1_derivations.cc.o"
  "CMakeFiles/table1_derivations.dir/table1_derivations.cc.o.d"
  "table1_derivations"
  "table1_derivations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_derivations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_derivations.
# This may be replaced when dependencies are built.

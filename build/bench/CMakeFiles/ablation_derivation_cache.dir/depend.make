# Empty dependencies file for ablation_derivation_cache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_derivation_cache.dir/ablation_derivation_cache.cc.o"
  "CMakeFiles/ablation_derivation_cache.dir/ablation_derivation_cache.cc.o.d"
  "ablation_derivation_cache"
  "ablation_derivation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_derivation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

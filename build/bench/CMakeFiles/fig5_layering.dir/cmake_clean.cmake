file(REMOVE_RECURSE
  "CMakeFiles/fig5_layering.dir/fig5_layering.cc.o"
  "CMakeFiles/fig5_layering.dir/fig5_layering.cc.o.d"
  "fig5_layering"
  "fig5_layering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_layering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/claim_quality_factors.dir/claim_quality_factors.cc.o"
  "CMakeFiles/claim_quality_factors.dir/claim_quality_factors.cc.o.d"
  "claim_quality_factors"
  "claim_quality_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_quality_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for claim_quality_factors.
# This may be replaced when dependencies are built.

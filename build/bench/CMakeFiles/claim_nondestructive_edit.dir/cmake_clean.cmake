file(REMOVE_RECURSE
  "CMakeFiles/claim_nondestructive_edit.dir/claim_nondestructive_edit.cc.o"
  "CMakeFiles/claim_nondestructive_edit.dir/claim_nondestructive_edit.cc.o.d"
  "claim_nondestructive_edit"
  "claim_nondestructive_edit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_nondestructive_edit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for claim_nondestructive_edit.
# This may be replaced when dependencies are built.

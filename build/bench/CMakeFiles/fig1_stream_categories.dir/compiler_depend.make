# Empty compiler generated dependencies file for fig1_stream_categories.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig1_stream_categories.dir/fig1_stream_categories.cc.o"
  "CMakeFiles/fig1_stream_categories.dir/fig1_stream_categories.cc.o.d"
  "fig1_stream_categories"
  "fig1_stream_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_stream_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

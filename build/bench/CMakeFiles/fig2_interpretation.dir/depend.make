# Empty dependencies file for fig2_interpretation.
# This may be replaced when dependencies are built.

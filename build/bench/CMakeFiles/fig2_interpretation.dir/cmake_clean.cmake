file(REMOVE_RECURSE
  "CMakeFiles/fig2_interpretation.dir/fig2_interpretation.cc.o"
  "CMakeFiles/fig2_interpretation.dir/fig2_interpretation.cc.o.d"
  "fig2_interpretation"
  "fig2_interpretation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

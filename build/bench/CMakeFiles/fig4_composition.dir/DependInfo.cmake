
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_composition.cc" "bench/CMakeFiles/fig4_composition.dir/fig4_composition.cc.o" "gcc" "bench/CMakeFiles/fig4_composition.dir/fig4_composition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/playback/CMakeFiles/tbm_playback.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/tbm_db.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tbm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/tbm_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/compose/CMakeFiles/tbm_compose.dir/DependInfo.cmake"
  "/root/repo/build/src/derive/CMakeFiles/tbm_derive.dir/DependInfo.cmake"
  "/root/repo/build/src/midi/CMakeFiles/tbm_midi.dir/DependInfo.cmake"
  "/root/repo/build/src/anim/CMakeFiles/tbm_anim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tbm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tbm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/tbm_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/tbm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/tbm_time.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

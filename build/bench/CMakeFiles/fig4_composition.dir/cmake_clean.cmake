file(REMOVE_RECURSE
  "CMakeFiles/fig4_composition.dir/fig4_composition.cc.o"
  "CMakeFiles/fig4_composition.dir/fig4_composition.cc.o.d"
  "fig4_composition"
  "fig4_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for claim_structured_queries.
# This may be replaced when dependencies are built.

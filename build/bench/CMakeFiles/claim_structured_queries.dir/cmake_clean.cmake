file(REMOVE_RECURSE
  "CMakeFiles/claim_structured_queries.dir/claim_structured_queries.cc.o"
  "CMakeFiles/claim_structured_queries.dir/claim_structured_queries.cc.o.d"
  "claim_structured_queries"
  "claim_structured_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_structured_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tbmctl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tbmctl.dir/tbmctl.cpp.o"
  "CMakeFiles/tbmctl.dir/tbmctl.cpp.o.d"
  "tbmctl"
  "tbmctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbmctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tbm_interp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtbm_interp.a"
)

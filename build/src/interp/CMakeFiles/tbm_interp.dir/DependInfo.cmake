
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/av_capture.cc" "src/interp/CMakeFiles/tbm_interp.dir/av_capture.cc.o" "gcc" "src/interp/CMakeFiles/tbm_interp.dir/av_capture.cc.o.d"
  "/root/repo/src/interp/capture.cc" "src/interp/CMakeFiles/tbm_interp.dir/capture.cc.o" "gcc" "src/interp/CMakeFiles/tbm_interp.dir/capture.cc.o.d"
  "/root/repo/src/interp/index.cc" "src/interp/CMakeFiles/tbm_interp.dir/index.cc.o" "gcc" "src/interp/CMakeFiles/tbm_interp.dir/index.cc.o.d"
  "/root/repo/src/interp/interpretation.cc" "src/interp/CMakeFiles/tbm_interp.dir/interpretation.cc.o" "gcc" "src/interp/CMakeFiles/tbm_interp.dir/interpretation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/tbm_time.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/tbm_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/tbm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tbm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/tbm_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tbm_interp.dir/av_capture.cc.o"
  "CMakeFiles/tbm_interp.dir/av_capture.cc.o.d"
  "CMakeFiles/tbm_interp.dir/capture.cc.o"
  "CMakeFiles/tbm_interp.dir/capture.cc.o.d"
  "CMakeFiles/tbm_interp.dir/index.cc.o"
  "CMakeFiles/tbm_interp.dir/index.cc.o.d"
  "CMakeFiles/tbm_interp.dir/interpretation.cc.o"
  "CMakeFiles/tbm_interp.dir/interpretation.cc.o.d"
  "libtbm_interp.a"
  "libtbm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tbm_codec.dir/adpcm.cc.o"
  "CMakeFiles/tbm_codec.dir/adpcm.cc.o.d"
  "CMakeFiles/tbm_codec.dir/color.cc.o"
  "CMakeFiles/tbm_codec.dir/color.cc.o.d"
  "CMakeFiles/tbm_codec.dir/dct.cc.o"
  "CMakeFiles/tbm_codec.dir/dct.cc.o.d"
  "CMakeFiles/tbm_codec.dir/export.cc.o"
  "CMakeFiles/tbm_codec.dir/export.cc.o.d"
  "CMakeFiles/tbm_codec.dir/image.cc.o"
  "CMakeFiles/tbm_codec.dir/image.cc.o.d"
  "CMakeFiles/tbm_codec.dir/layered.cc.o"
  "CMakeFiles/tbm_codec.dir/layered.cc.o.d"
  "CMakeFiles/tbm_codec.dir/pcm.cc.o"
  "CMakeFiles/tbm_codec.dir/pcm.cc.o.d"
  "CMakeFiles/tbm_codec.dir/rle.cc.o"
  "CMakeFiles/tbm_codec.dir/rle.cc.o.d"
  "CMakeFiles/tbm_codec.dir/synthetic.cc.o"
  "CMakeFiles/tbm_codec.dir/synthetic.cc.o.d"
  "CMakeFiles/tbm_codec.dir/tjpeg.cc.o"
  "CMakeFiles/tbm_codec.dir/tjpeg.cc.o.d"
  "CMakeFiles/tbm_codec.dir/tmpeg.cc.o"
  "CMakeFiles/tbm_codec.dir/tmpeg.cc.o.d"
  "libtbm_codec.a"
  "libtbm_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

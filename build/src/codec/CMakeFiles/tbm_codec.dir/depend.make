# Empty dependencies file for tbm_codec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtbm_codec.a"
)

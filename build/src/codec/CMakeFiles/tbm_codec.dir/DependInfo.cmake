
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/adpcm.cc" "src/codec/CMakeFiles/tbm_codec.dir/adpcm.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/adpcm.cc.o.d"
  "/root/repo/src/codec/color.cc" "src/codec/CMakeFiles/tbm_codec.dir/color.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/color.cc.o.d"
  "/root/repo/src/codec/dct.cc" "src/codec/CMakeFiles/tbm_codec.dir/dct.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/dct.cc.o.d"
  "/root/repo/src/codec/export.cc" "src/codec/CMakeFiles/tbm_codec.dir/export.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/export.cc.o.d"
  "/root/repo/src/codec/image.cc" "src/codec/CMakeFiles/tbm_codec.dir/image.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/image.cc.o.d"
  "/root/repo/src/codec/layered.cc" "src/codec/CMakeFiles/tbm_codec.dir/layered.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/layered.cc.o.d"
  "/root/repo/src/codec/pcm.cc" "src/codec/CMakeFiles/tbm_codec.dir/pcm.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/pcm.cc.o.d"
  "/root/repo/src/codec/rle.cc" "src/codec/CMakeFiles/tbm_codec.dir/rle.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/rle.cc.o.d"
  "/root/repo/src/codec/synthetic.cc" "src/codec/CMakeFiles/tbm_codec.dir/synthetic.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/synthetic.cc.o.d"
  "/root/repo/src/codec/tjpeg.cc" "src/codec/CMakeFiles/tbm_codec.dir/tjpeg.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/tjpeg.cc.o.d"
  "/root/repo/src/codec/tmpeg.cc" "src/codec/CMakeFiles/tbm_codec.dir/tmpeg.cc.o" "gcc" "src/codec/CMakeFiles/tbm_codec.dir/tmpeg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/tbm_time.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/tbm_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

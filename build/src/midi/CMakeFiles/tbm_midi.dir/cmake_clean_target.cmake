file(REMOVE_RECURSE
  "libtbm_midi.a"
)

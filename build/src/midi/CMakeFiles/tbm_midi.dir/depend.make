# Empty dependencies file for tbm_midi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tbm_midi.dir/midi.cc.o"
  "CMakeFiles/tbm_midi.dir/midi.cc.o.d"
  "CMakeFiles/tbm_midi.dir/synth.cc.o"
  "CMakeFiles/tbm_midi.dir/synth.cc.o.d"
  "libtbm_midi.a"
  "libtbm_midi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_midi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtbm_db.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tbm_db.dir/codec_bridge.cc.o"
  "CMakeFiles/tbm_db.dir/codec_bridge.cc.o.d"
  "CMakeFiles/tbm_db.dir/database.cc.o"
  "CMakeFiles/tbm_db.dir/database.cc.o.d"
  "CMakeFiles/tbm_db.dir/edit_list.cc.o"
  "CMakeFiles/tbm_db.dir/edit_list.cc.o.d"
  "CMakeFiles/tbm_db.dir/rights.cc.o"
  "CMakeFiles/tbm_db.dir/rights.cc.o.d"
  "libtbm_db.a"
  "libtbm_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tbm_db.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtbm_media.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tbm_media.dir/attr.cc.o"
  "CMakeFiles/tbm_media.dir/attr.cc.o.d"
  "CMakeFiles/tbm_media.dir/descriptor.cc.o"
  "CMakeFiles/tbm_media.dir/descriptor.cc.o.d"
  "CMakeFiles/tbm_media.dir/media_type.cc.o"
  "CMakeFiles/tbm_media.dir/media_type.cc.o.d"
  "CMakeFiles/tbm_media.dir/quality.cc.o"
  "CMakeFiles/tbm_media.dir/quality.cc.o.d"
  "libtbm_media.a"
  "libtbm_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

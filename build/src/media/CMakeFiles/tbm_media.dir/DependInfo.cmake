
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/attr.cc" "src/media/CMakeFiles/tbm_media.dir/attr.cc.o" "gcc" "src/media/CMakeFiles/tbm_media.dir/attr.cc.o.d"
  "/root/repo/src/media/descriptor.cc" "src/media/CMakeFiles/tbm_media.dir/descriptor.cc.o" "gcc" "src/media/CMakeFiles/tbm_media.dir/descriptor.cc.o.d"
  "/root/repo/src/media/media_type.cc" "src/media/CMakeFiles/tbm_media.dir/media_type.cc.o" "gcc" "src/media/CMakeFiles/tbm_media.dir/media_type.cc.o.d"
  "/root/repo/src/media/quality.cc" "src/media/CMakeFiles/tbm_media.dir/quality.cc.o" "gcc" "src/media/CMakeFiles/tbm_media.dir/quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/tbm_time.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

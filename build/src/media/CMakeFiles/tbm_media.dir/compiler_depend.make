# Empty compiler generated dependencies file for tbm_media.
# This may be replaced when dependencies are built.

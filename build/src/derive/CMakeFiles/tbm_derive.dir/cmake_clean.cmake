file(REMOVE_RECURSE
  "CMakeFiles/tbm_derive.dir/graph.cc.o"
  "CMakeFiles/tbm_derive.dir/graph.cc.o.d"
  "CMakeFiles/tbm_derive.dir/operators.cc.o"
  "CMakeFiles/tbm_derive.dir/operators.cc.o.d"
  "CMakeFiles/tbm_derive.dir/value.cc.o"
  "CMakeFiles/tbm_derive.dir/value.cc.o.d"
  "libtbm_derive.a"
  "libtbm_derive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_derive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

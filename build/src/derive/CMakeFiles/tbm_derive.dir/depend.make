# Empty dependencies file for tbm_derive.
# This may be replaced when dependencies are built.

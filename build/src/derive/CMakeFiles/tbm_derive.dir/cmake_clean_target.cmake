file(REMOVE_RECURSE
  "libtbm_derive.a"
)

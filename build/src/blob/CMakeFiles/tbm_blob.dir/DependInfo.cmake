
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blob/blob_store.cc" "src/blob/CMakeFiles/tbm_blob.dir/blob_store.cc.o" "gcc" "src/blob/CMakeFiles/tbm_blob.dir/blob_store.cc.o.d"
  "/root/repo/src/blob/file_store.cc" "src/blob/CMakeFiles/tbm_blob.dir/file_store.cc.o" "gcc" "src/blob/CMakeFiles/tbm_blob.dir/file_store.cc.o.d"
  "/root/repo/src/blob/memory_store.cc" "src/blob/CMakeFiles/tbm_blob.dir/memory_store.cc.o" "gcc" "src/blob/CMakeFiles/tbm_blob.dir/memory_store.cc.o.d"
  "/root/repo/src/blob/paged_store.cc" "src/blob/CMakeFiles/tbm_blob.dir/paged_store.cc.o" "gcc" "src/blob/CMakeFiles/tbm_blob.dir/paged_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for tbm_blob.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tbm_blob.dir/blob_store.cc.o"
  "CMakeFiles/tbm_blob.dir/blob_store.cc.o.d"
  "CMakeFiles/tbm_blob.dir/file_store.cc.o"
  "CMakeFiles/tbm_blob.dir/file_store.cc.o.d"
  "CMakeFiles/tbm_blob.dir/memory_store.cc.o"
  "CMakeFiles/tbm_blob.dir/memory_store.cc.o.d"
  "CMakeFiles/tbm_blob.dir/paged_store.cc.o"
  "CMakeFiles/tbm_blob.dir/paged_store.cc.o.d"
  "libtbm_blob.a"
  "libtbm_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtbm_blob.a"
)

file(REMOVE_RECURSE
  "libtbm_anim.a"
)

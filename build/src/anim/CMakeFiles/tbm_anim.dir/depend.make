# Empty dependencies file for tbm_anim.
# This may be replaced when dependencies are built.

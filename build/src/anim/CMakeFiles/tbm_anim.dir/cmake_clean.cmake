file(REMOVE_RECURSE
  "CMakeFiles/tbm_anim.dir/animation.cc.o"
  "CMakeFiles/tbm_anim.dir/animation.cc.o.d"
  "libtbm_anim.a"
  "libtbm_anim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_anim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

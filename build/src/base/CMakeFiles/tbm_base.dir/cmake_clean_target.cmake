file(REMOVE_RECURSE
  "libtbm_base.a"
)

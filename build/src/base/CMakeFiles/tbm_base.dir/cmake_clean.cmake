file(REMOVE_RECURSE
  "CMakeFiles/tbm_base.dir/bytes.cc.o"
  "CMakeFiles/tbm_base.dir/bytes.cc.o.d"
  "CMakeFiles/tbm_base.dir/crc32.cc.o"
  "CMakeFiles/tbm_base.dir/crc32.cc.o.d"
  "CMakeFiles/tbm_base.dir/io.cc.o"
  "CMakeFiles/tbm_base.dir/io.cc.o.d"
  "CMakeFiles/tbm_base.dir/status.cc.o"
  "CMakeFiles/tbm_base.dir/status.cc.o.d"
  "libtbm_base.a"
  "libtbm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tbm_base.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtbm_stream.a"
)

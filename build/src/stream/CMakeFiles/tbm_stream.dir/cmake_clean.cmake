file(REMOVE_RECURSE
  "CMakeFiles/tbm_stream.dir/category.cc.o"
  "CMakeFiles/tbm_stream.dir/category.cc.o.d"
  "CMakeFiles/tbm_stream.dir/timed_stream.cc.o"
  "CMakeFiles/tbm_stream.dir/timed_stream.cc.o.d"
  "libtbm_stream.a"
  "libtbm_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tbm_stream.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/category.cc" "src/stream/CMakeFiles/tbm_stream.dir/category.cc.o" "gcc" "src/stream/CMakeFiles/tbm_stream.dir/category.cc.o.d"
  "/root/repo/src/stream/timed_stream.cc" "src/stream/CMakeFiles/tbm_stream.dir/timed_stream.cc.o" "gcc" "src/stream/CMakeFiles/tbm_stream.dir/timed_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/tbm_time.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/tbm_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("time")
subdirs("blob")
subdirs("media")
subdirs("stream")
subdirs("codec")
subdirs("text")
subdirs("interp")
subdirs("midi")
subdirs("anim")
subdirs("derive")
subdirs("compose")
subdirs("playback")
subdirs("db")

file(REMOVE_RECURSE
  "CMakeFiles/tbm_time.dir/rational.cc.o"
  "CMakeFiles/tbm_time.dir/rational.cc.o.d"
  "CMakeFiles/tbm_time.dir/time_system.cc.o"
  "CMakeFiles/tbm_time.dir/time_system.cc.o.d"
  "CMakeFiles/tbm_time.dir/timecode.cc.o"
  "CMakeFiles/tbm_time.dir/timecode.cc.o.d"
  "libtbm_time.a"
  "libtbm_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

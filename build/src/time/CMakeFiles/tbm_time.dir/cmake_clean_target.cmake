file(REMOVE_RECURSE
  "libtbm_time.a"
)

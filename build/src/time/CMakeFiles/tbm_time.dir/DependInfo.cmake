
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/time/rational.cc" "src/time/CMakeFiles/tbm_time.dir/rational.cc.o" "gcc" "src/time/CMakeFiles/tbm_time.dir/rational.cc.o.d"
  "/root/repo/src/time/time_system.cc" "src/time/CMakeFiles/tbm_time.dir/time_system.cc.o" "gcc" "src/time/CMakeFiles/tbm_time.dir/time_system.cc.o.d"
  "/root/repo/src/time/timecode.cc" "src/time/CMakeFiles/tbm_time.dir/timecode.cc.o" "gcc" "src/time/CMakeFiles/tbm_time.dir/timecode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

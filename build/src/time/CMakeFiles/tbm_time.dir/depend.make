# Empty dependencies file for tbm_time.
# This may be replaced when dependencies are built.

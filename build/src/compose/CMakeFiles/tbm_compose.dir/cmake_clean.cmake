file(REMOVE_RECURSE
  "CMakeFiles/tbm_compose.dir/multimedia.cc.o"
  "CMakeFiles/tbm_compose.dir/multimedia.cc.o.d"
  "CMakeFiles/tbm_compose.dir/timeline.cc.o"
  "CMakeFiles/tbm_compose.dir/timeline.cc.o.d"
  "libtbm_compose.a"
  "libtbm_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

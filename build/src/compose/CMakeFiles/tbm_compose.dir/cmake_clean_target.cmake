file(REMOVE_RECURSE
  "libtbm_compose.a"
)

# Empty dependencies file for tbm_compose.
# This may be replaced when dependencies are built.

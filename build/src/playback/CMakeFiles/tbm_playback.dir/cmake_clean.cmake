file(REMOVE_RECURSE
  "CMakeFiles/tbm_playback.dir/activity.cc.o"
  "CMakeFiles/tbm_playback.dir/activity.cc.o.d"
  "CMakeFiles/tbm_playback.dir/admission.cc.o"
  "CMakeFiles/tbm_playback.dir/admission.cc.o.d"
  "CMakeFiles/tbm_playback.dir/simulator.cc.o"
  "CMakeFiles/tbm_playback.dir/simulator.cc.o.d"
  "libtbm_playback.a"
  "libtbm_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tbm_playback.
# This may be replaced when dependencies are built.

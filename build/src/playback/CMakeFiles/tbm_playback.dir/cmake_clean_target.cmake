file(REMOVE_RECURSE
  "libtbm_playback.a"
)

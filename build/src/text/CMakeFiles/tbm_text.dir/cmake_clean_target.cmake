file(REMOVE_RECURSE
  "libtbm_text.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tbm_text.dir/captions.cc.o"
  "CMakeFiles/tbm_text.dir/captions.cc.o.d"
  "CMakeFiles/tbm_text.dir/font.cc.o"
  "CMakeFiles/tbm_text.dir/font.cc.o.d"
  "libtbm_text.a"
  "libtbm_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbm_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

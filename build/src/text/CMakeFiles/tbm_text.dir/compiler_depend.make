# Empty compiler generated dependencies file for tbm_text.
# This may be replaced when dependencies are built.

# Empty dependencies file for tbm_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/admission_test.cc" "tests/CMakeFiles/tbm_tests.dir/admission_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/admission_test.cc.o.d"
  "/root/repo/tests/anim_test.cc" "tests/CMakeFiles/tbm_tests.dir/anim_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/anim_test.cc.o.d"
  "/root/repo/tests/base_test.cc" "tests/CMakeFiles/tbm_tests.dir/base_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/base_test.cc.o.d"
  "/root/repo/tests/blob_test.cc" "tests/CMakeFiles/tbm_tests.dir/blob_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/blob_test.cc.o.d"
  "/root/repo/tests/bridge_test.cc" "tests/CMakeFiles/tbm_tests.dir/bridge_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/bridge_test.cc.o.d"
  "/root/repo/tests/codec_test.cc" "tests/CMakeFiles/tbm_tests.dir/codec_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/codec_test.cc.o.d"
  "/root/repo/tests/compose_test.cc" "tests/CMakeFiles/tbm_tests.dir/compose_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/compose_test.cc.o.d"
  "/root/repo/tests/db_test.cc" "tests/CMakeFiles/tbm_tests.dir/db_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/db_test.cc.o.d"
  "/root/repo/tests/derive_test.cc" "tests/CMakeFiles/tbm_tests.dir/derive_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/derive_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/tbm_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tbm_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/interp_test.cc" "tests/CMakeFiles/tbm_tests.dir/interp_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/interp_test.cc.o.d"
  "/root/repo/tests/media_test.cc" "tests/CMakeFiles/tbm_tests.dir/media_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/media_test.cc.o.d"
  "/root/repo/tests/midi_test.cc" "tests/CMakeFiles/tbm_tests.dir/midi_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/midi_test.cc.o.d"
  "/root/repo/tests/playback_test.cc" "tests/CMakeFiles/tbm_tests.dir/playback_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/playback_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/tbm_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/tbm_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/tbm_tests.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/text_test.cc.o.d"
  "/root/repo/tests/time_test.cc" "tests/CMakeFiles/tbm_tests.dir/time_test.cc.o" "gcc" "tests/CMakeFiles/tbm_tests.dir/time_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/playback/CMakeFiles/tbm_playback.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/tbm_db.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tbm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/tbm_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/compose/CMakeFiles/tbm_compose.dir/DependInfo.cmake"
  "/root/repo/build/src/derive/CMakeFiles/tbm_derive.dir/DependInfo.cmake"
  "/root/repo/build/src/midi/CMakeFiles/tbm_midi.dir/DependInfo.cmake"
  "/root/repo/build/src/anim/CMakeFiles/tbm_anim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tbm_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tbm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/tbm_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/tbm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/tbm_time.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/tbm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

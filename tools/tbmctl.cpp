// tbmctl — command-line inspector for tbm database directories.
//
//   tbmctl mkdemo <dbdir>                 create (or populate) a demo
//                                         database with one synthetic
//                                         media object "clip", for
//                                         trying serve/top/trace
//   tbmctl ls     <dbdir>                 list the catalog
//   tbmctl show   <dbdir> <name>          descriptor / entry details
//   tbmctl export <dbdir> <name> <out>    materialize and export
//                                         (.wav audio, .ppm/.pgm image,
//                                          video -> <out>_NNNN.ppm frames)
//   tbmctl play   <dbdir> <name>          simulate presentation timing
//   tbmctl eval   <dbdir> <name> [threads] [--quiet] [--prefetch N]
//                 [--stats] [--no-fuse]   materialize; engine statistics
//                                         go to stderr (--quiet omits them).
//                                         --prefetch N streams BLOB reads
//                                         with N chunks of readahead;
//                                         --stats dumps the metrics
//                                         registry after evaluation;
//                                         --no-fuse disables the plan
//                                         compiler (node-at-a-time)
//   tbmctl stats  <dbdir>                 storage + metrics statistics
//   tbmctl trace  <dbdir> <name> [-o trace.json]
//                                         materialize under the tracer and
//                                         write Chrome trace_event JSON
//                                         (open in chrome://tracing)
//   tbmctl serve  <dbdir> [sessions] [--object <name>] [--trace <out.json>]
//                                         demo the media service: N
//                                         loopback client sessions stream
//                                         the catalog's media objects
//                                         through admission control;
//                                         flight-recorder dumps of
//                                         sessions that ended badly go
//                                         to stderr; --trace writes the
//                                         merged client+server Chrome
//                                         trace of the whole run
//   tbmctl top    <dbdir> [--sessions N] [--object <name>]
//                 [--interval ms] [--once] [--prom]
//                                         live per-QoS SLO view: runs an
//                                         in-process server under N
//                                         looping loopback sessions and
//                                         renders p50/p95/p99 READ
//                                         latency, bytes, admits,
//                                         degrades, evicts and deadline
//                                         misses per QoS class from the
//                                         TELEMETRY frame. --once prints
//                                         a single snapshot; --prom
//                                         prints Prometheus text instead
//                                         of the table
//   tbmctl blob stat <dbdir>              BLOB tier occupancy; for a
//                                         content-addressed store also the
//                                         dedup ratio and per-hash refcounts
//   tbmctl blob gc <dbdir>                mark-and-sweep collection of
//                                         BLOBs no interpretation references
//   tbmctl db status <dbdir>              durability state: WAL LSNs,
//                                         segment/log sizes, checkpoint
//                                         position, and what recovery did
//                                         on this open
//   tbmctl db checkpoint <dbdir>          take a checkpoint now (fold the
//                                         WAL into the snapshot and
//                                         truncate it)
//
// A database directory whose BLOB tier is content-addressed (it has a
// cas/ledger.tbm) is detected automatically and opened over the CAS
// store; everything else opens over the classic file store.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "tbm.h"

using namespace tbm;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "tbmctl: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tbmctl mkdemo <dbdir>\n"
               "       tbmctl ls <dbdir>\n"
               "       tbmctl show <dbdir> <name>\n"
               "       tbmctl export <dbdir> <name> <out>\n"
               "       tbmctl play <dbdir> <name>\n"
               "       tbmctl eval <dbdir> <name> [threads] [--quiet] "
               "[--prefetch N] [--stats] [--no-fuse]\n"
               "       tbmctl stats <dbdir>\n"
               "       tbmctl trace <dbdir> <name> [-o trace.json]\n"
               "       tbmctl serve <dbdir> [sessions] [--object <name>]\n"
               "                  [--trace <out.json>]\n"
               "       tbmctl top <dbdir> [--sessions N] [--object <name>]\n"
               "                  [--interval ms] [--once] [--prom]\n"
               "       tbmctl blob stat <dbdir>\n"
               "       tbmctl blob gc <dbdir>\n"
               "       tbmctl db status <dbdir>\n"
               "       tbmctl db checkpoint <dbdir>\n");
  return 2;
}

int CmdLs(MediaDatabase* db) {
  std::printf("%-6s %-28s %-18s %s\n", "id", "name", "kind", "details");
  for (ObjectId id : db->List()) {
    auto lookup = db->Get(id);
    if (!lookup.ok()) return Fail(lookup.status());
    const CatalogEntry* entry = *lookup;
    std::string details;
    switch (entry->kind) {
      case CatalogKind::kDerivedObject:
        details = entry->op + "(" + std::to_string(entry->inputs.size()) +
                  " input" + (entry->inputs.size() == 1 ? "" : "s") + ")";
        break;
      case CatalogKind::kMediaObject:
        details = "stream \"" + entry->stream_name + "\" of interp " +
                  std::to_string(entry->interpretation_ref);
        break;
      case CatalogKind::kMultimediaObject:
        details = std::to_string(entry->components.size()) + " components";
        break;
      case CatalogKind::kInterpretation:
        details = "BLOB " + std::to_string(entry->interpretation.blob()) +
                  ", " + std::to_string(entry->interpretation.objects().size()) +
                  " objects";
        break;
      case CatalogKind::kEntity:
        details = std::to_string(entry->attrs.size()) + " attributes";
        break;
    }
    std::printf("%-6llu %-28s %-18s %s\n", (unsigned long long)id,
                entry->name.c_str(),
                std::string(CatalogKindToString(entry->kind)).c_str(),
                details.c_str());
  }
  return 0;
}

int CmdShow(MediaDatabase* db, const std::string& name) {
  auto id = db->FindByName(name);
  if (!id.ok()) return Fail(id.status());
  auto entry = db->Get(*id);
  if (!entry.ok()) return Fail(entry.status());
  std::printf("[%llu] %s — %s\n", (unsigned long long)*id,
              (*entry)->name.c_str(),
              std::string(CatalogKindToString((*entry)->kind)).c_str());
  if (!(*entry)->attrs.empty()) {
    std::printf("attributes:\n%s", (*entry)->attrs.ToString().c_str());
  }
  switch ((*entry)->kind) {
    case CatalogKind::kMediaObject: {
      auto stream = db->MaterializeStream(*id);
      if (!stream.ok()) return Fail(stream.status());
      std::printf("\n%s\n", stream->descriptor().ToString(name).c_str());
      std::printf("category: %s\n", Classify(*stream).ToString().c_str());
      std::printf("elements: %zu, span %.3f s, payload %s, mean rate %s\n",
                  stream->size(), stream->DurationSeconds().ToDouble(),
                  HumanBytes(stream->TotalBytes()).c_str(),
                  HumanRate(stream->MeanDataRate()).c_str());
      break;
    }
    case CatalogKind::kDerivedObject: {
      std::printf("derivation: %s\n", (*entry)->op.c_str());
      std::printf("inputs:");
      for (ObjectId input : (*entry)->inputs) {
        auto in_entry = db->Get(input);
        if (!in_entry.ok()) {
          std::printf("\n");
          return Fail(in_entry.status().WithContext(
              "resolving input " + std::to_string(input)));
        }
        std::printf(" %s", (*in_entry)->name.c_str());
      }
      std::printf("\nparameters:\n%s", (*entry)->params.ToString().c_str());
      auto record = db->DerivationRecordBytes(*id);
      if (record.ok()) {
        std::printf("derivation record: %llu bytes\n",
                    (unsigned long long)*record);
      }
      break;
    }
    case CatalogKind::kMultimediaObject: {
      auto view = db->Compose(*id);
      if (!view.ok()) return Fail(view.status());
      auto ascii = (*view)->object.RenderTimelineAscii(56);
      if (ascii.ok()) std::printf("\ntimeline:\n%s", ascii->c_str());
      break;
    }
    case CatalogKind::kInterpretation: {
      const Interpretation& interp = (*entry)->interpretation;
      auto blob_size = db->blob_store()->Size(interp.blob());
      std::printf("BLOB %llu (%s), coverage %.1f%%\n",
                  (unsigned long long)interp.blob(),
                  blob_size.ok() ? HumanBytes(*blob_size).c_str() : "?",
                  blob_size.ok() ? 100.0 * interp.Coverage(*blob_size) : 0.0);
      for (const InterpretedObject& object : interp.objects()) {
        std::printf("  object \"%s\": %zu elements, %s payload\n",
                    object.name.c_str(), object.elements.size(),
                    HumanBytes(object.PayloadBytes()).c_str());
      }
      break;
    }
    case CatalogKind::kEntity:
      break;
  }
  if (db->rights().IsProtected(*id)) {
    auto record = db->rights().Get(*id);
    if (record.ok()) {
      std::printf("rights: owner %s%s%s\n", (*record)->owner.c_str(),
                  (*record)->copyright_notice.empty() ? "" : ", ",
                  (*record)->copyright_notice.c_str());
    }
  }
  return 0;
}

bool EndsWith(const std::string& text, const char* suffix) {
  size_t n = std::strlen(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

int CmdExport(MediaDatabase* db, const std::string& name,
              const std::string& out) {
  auto id = db->FindByName(name);
  if (!id.ok()) return Fail(id.status());
  auto value = db->Materialize(*id);
  if (!value.ok()) return Fail(value.status());
  switch (KindOfValue(*value)) {
    case MediaKind::kAudio: {
      if (!EndsWith(out, ".wav")) {
        std::fprintf(stderr, "tbmctl: audio exports to .wav\n");
        return 2;
      }
      if (auto s = WriteWav(std::get<AudioBuffer>(*value), out); !s.ok()) {
        return Fail(s);
      }
      std::printf("wrote %s\n", out.c_str());
      return 0;
    }
    case MediaKind::kImage: {
      if (auto s = WritePnm(std::get<Image>(*value), out); !s.ok()) {
        return Fail(s);
      }
      std::printf("wrote %s\n", out.c_str());
      return 0;
    }
    case MediaKind::kVideo: {
      const VideoValue& video = std::get<VideoValue>(*value);
      for (size_t i = 0; i < video.frames.size(); ++i) {
        char path[512];
        std::snprintf(path, sizeof(path), "%s_%04zu.ppm", out.c_str(), i);
        if (auto s = WritePnm(video.frames[i], path); !s.ok()) {
          return Fail(s);
        }
      }
      std::printf("wrote %zu frames to %s_NNNN.ppm\n", video.frames.size(),
                  out.c_str());
      return 0;
    }
    default:
      std::fprintf(stderr, "tbmctl: no exporter for this media kind\n");
      return 2;
  }
}

int CmdPlay(MediaDatabase* db, const std::string& name) {
  auto id = db->FindByName(name);
  if (!id.ok()) return Fail(id.status());
  auto stream = db->MaterializeStream(*id);
  if (!stream.ok()) return Fail(stream.status());
  PlaybackConfig config;
  config.seconds_per_megabyte = 0.02;
  config.load_noise_us = 500.0;
  config.buffer_delay_ms = 10.0;
  auto report = SimulatePlayback({&*stream}, config);
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "simulated playback of \"%s\": %lld elements, %lld misses, "
      "mean lateness %.1f us, pipeline utilization %.2f\n",
      name.c_str(), (long long)report->total_elements,
      (long long)report->total_misses, report->mean_lateness_us,
      report->utilization);
  return 0;
}

int CmdEval(MediaDatabase* db, const std::string& name, int threads,
            bool quiet, int prefetch, bool dump_metrics, bool fuse) {
  auto id = db->FindByName(name);
  if (!id.ok()) return Fail(id.status());
  EvalOptions options;
  options.threads = threads;
  options.fuse = fuse;
  db->set_eval_options(options);
  if (prefetch > 0) {
    StreamReadOptions read_options;
    read_options.prefetch_depth = prefetch;
    db->set_read_options(read_options);
  }
  auto value = db->Materialize(*id);
  if (!value.ok()) return Fail(value.status());
  std::printf("materialized \"%s\": %s, %s expanded\n", name.c_str(),
              std::string(MediaKindToString(KindOfValue(*value))).c_str(),
              HumanBytes(ExpandedBytes(*value)).c_str());
  // Statistics go to stderr so stdout stays scriptable.
  if (!quiet) {
    if (threads == 0) {
      std::fprintf(stderr, "engine (threads=auto):\n%s",
                   db->last_eval_stats().ToString().c_str());
    } else {
      std::fprintf(stderr, "engine (threads=%d):\n%s", threads,
                   db->last_eval_stats().ToString().c_str());
    }
  }
  if (dump_metrics) {
    obs::MetricsSnapshot metrics = obs::Registry::Global().Snapshot();
    if (metrics.empty()) {
      std::fprintf(stderr,
                   "tbmctl: metrics registry is empty "
                   "(built with TBM_OBS_DISABLED?)\n");
    } else {
      std::fprintf(stderr, "metrics:\n%s", metrics.ToString().c_str());
    }
  }
  return 0;
}

// Streams every requested media object through the serve layer as
// multiplexed streams over in-process loopback connections — a
// self-contained demonstration of admission, degradation, and the v2
// wire protocol against a real database directory. With `trace_out`
// non-empty, the run happens under the span tracer and the merged
// client+server timeline is written as Chrome trace_event JSON (each
// connection is one trace id; its streams are spans within it).
int CmdServe(MediaDatabase* db, int sessions, const std::string& object_name,
             const std::string& trace_out) {
  if (!trace_out.empty()) obs::Tracer::Global().Clear();
  std::vector<std::string> names;
  if (!object_name.empty()) {
    auto id = db->FindByName(object_name);
    if (!id.ok()) return Fail(id.status());
    auto entry = db->Get(*id);
    if (!entry.ok()) return Fail(entry.status());
    if ((*entry)->kind != CatalogKind::kMediaObject) {
      std::fprintf(stderr, "tbmctl: \"%s\" is not a media object\n",
                   object_name.c_str());
      return 2;
    }
    names.push_back(object_name);
  } else {
    for (ObjectId id : db->List()) {
      auto entry = db->Get(id);
      if (entry.ok() && (*entry)->kind == CatalogKind::kMediaObject) {
        names.push_back((*entry)->name);
      }
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "tbmctl: database has no media objects to serve\n");
    return 2;
  }
  if (sessions <= 0) sessions = static_cast<int>(names.size());

  serve::MediaServer server(db);
  struct Outcome {
    std::string object;
    Status status = Status::OK();
    serve::SessionStatsWire stats;
    uint32_t admitted_stride = 1;
  };
  std::vector<Outcome> outcomes(static_cast<size_t>(sessions));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(sessions));

  // Sessions are multiplexed streams now: one loopback connection
  // carries up to max_streams_per_connection of them, so open only as
  // many connections as the session count requires.
  const int per_connection =
      static_cast<int>(serve::ServeConfig{}.max_streams_per_connection);
  const int connection_count =
      (sessions + per_connection - 1) / per_connection;
  std::vector<std::unique_ptr<serve::Connection>> connections;
  std::vector<Status> adoption;
  for (int c = 0; c < connection_count; ++c) {
    auto [client_end, server_end] = serve::CreateLoopbackPair();
    Status adopted = server.Serve(std::move(server_end));
    adoption.push_back(adopted);
    connections.push_back(
        adopted.ok() ? serve::Connect(std::move(client_end)) : nullptr);
  }

  for (int i = 0; i < sessions; ++i) {
    Outcome& outcome = outcomes[static_cast<size_t>(i)];
    outcome.object = names[static_cast<size_t>(i) % names.size()];
    const size_t slot = static_cast<size_t>(i / per_connection);
    serve::Connection* connection = connections[slot].get();
    if (connection == nullptr) {
      outcome.status = adoption[slot];
      continue;
    }
    threads.emplace_back([&outcome, connection] {
      auto stream = connection->OpenStream(outcome.object);
      if (!stream.ok()) {
        outcome.status = stream.status();
        return;
      }
      outcome.admitted_stride = (*stream)->info().stride;
      bool end_of_stream = false;
      while (!end_of_stream) {
        auto batch = (*stream)->Read(16);
        if (!batch.ok()) {
          outcome.status = batch.status();
          return;
        }
        end_of_stream = batch->end_of_stream;
      }
      auto stats = (*stream)->Stats();
      if (!stats.ok()) {
        outcome.status = stats.status();
        return;
      }
      outcome.stats = *stats;
      (void)(*stream)->Close();
    });
  }
  for (std::thread& thread : threads) thread.join();
  connections.clear();
  server.Stop();

  std::printf("%-4s %-24s %-10s %-7s %10s %8s %12s\n", "#", "object", "state",
              "stride", "delivered", "skipped", "bytes");
  for (int i = 0; i < sessions; ++i) {
    const Outcome& outcome = outcomes[static_cast<size_t>(i)];
    if (!outcome.status.ok()) {
      std::printf("%-4d %-24s %s\n", i, outcome.object.c_str(),
                  outcome.status.ToString().c_str());
      continue;
    }
    std::printf("%-4d %-24s %-10s %-7u %10llu %8llu %12s\n", i,
                outcome.object.c_str(),
                std::string(serve::SessionStateToString(outcome.stats.state))
                    .c_str(),
                outcome.stats.stride,
                (unsigned long long)outcome.stats.elements_delivered,
                (unsigned long long)outcome.stats.elements_skipped,
                HumanBytes(outcome.stats.bytes_sent).c_str());
  }
  serve::ServerStatsSnapshot stats = server.stats();
  std::printf(
      "server: %llu admitted (%llu degraded), %llu denied, %llu evicted, "
      "%llu requests, %s sent\n",
      (unsigned long long)stats.sessions_admitted,
      (unsigned long long)stats.sessions_degraded,
      (unsigned long long)stats.sessions_denied,
      (unsigned long long)stats.sessions_evicted,
      (unsigned long long)stats.requests,
      HumanBytes(stats.response_bytes).c_str());
  // Post-mortems of sessions that ended badly (evicted or lossy) go to
  // stderr — stdout stays scriptable.
  for (const std::string& dump : server.flight_dumps()) {
    std::fprintf(stderr, "%s", dump.c_str());
  }
  if (!trace_out.empty()) {
    std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Collect();
    if (Status s = obs::WriteChromeTrace(spans, trace_out); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %zu spans to %s (open in chrome://tracing; each "
                "connection's client+server spans share one trace id)\n",
                spans.size(), trace_out.c_str());
  }
  return 0;
}

// Renders one telemetry snapshot as a per-QoS-class SLO table. Metric
// families are the serve.* names from DESIGN.md §13; labeled variants
// are stored as `name{qos=<class>}` and parsed back apart here.
void RenderQosTable(const obs::MetricsSnapshot& snapshot) {
  auto gauge = snapshot.gauges.find("serve.sessions");
  std::printf("live sessions: %lld\n",
              gauge != snapshot.gauges.end() ? (long long)gauge->second : 0);
  std::printf("%-8s %10s %9s %9s %9s %12s %8s %9s %7s %7s\n", "qos", "reads",
              "p50us", "p95us", "p99us", "bytes", "admits", "degrades",
              "evicts", "misses");
  const char* kClasses[] = {"s1", "s2", "s4", "s8", "s16plus"};
  auto labeled_counter = [&](const char* base, const char* qos) -> uint64_t {
    auto it = snapshot.counters.find(std::string(base) + "{qos=" + qos + "}");
    return it != snapshot.counters.end() ? it->second : 0;
  };
  for (const char* qos : kClasses) {
    auto hist = snapshot.histograms.find(std::string("serve.read_us{qos=") +
                                         qos + "}");
    uint64_t admits = labeled_counter("serve.admitted", qos);
    if (hist == snapshot.histograms.end() && admits == 0) continue;
    const obs::HistogramSnapshot empty;
    const obs::HistogramSnapshot& h =
        hist != snapshot.histograms.end() ? hist->second : empty;
    std::printf("%-8s %10llu %9.0f %9.0f %9.0f %12s %8llu %9llu %7llu "
                "%7llu\n",
                qos, (unsigned long long)h.count, h.P50(), h.P95(), h.P99(),
                HumanBytes(labeled_counter("serve.read_bytes", qos)).c_str(),
                (unsigned long long)admits,
                (unsigned long long)labeled_counter("serve.degraded", qos),
                (unsigned long long)labeled_counter("serve.evicted", qos),
                (unsigned long long)labeled_counter("serve.deadline_miss",
                                                    qos));
  }
}

// Live per-QoS SLO view: an in-process server, N looping loopback load
// sessions, and a TELEMETRY scraper rendering each snapshot.
int CmdTop(MediaDatabase* db, int sessions, const std::string& object_name,
           int interval_ms, bool once, bool prom) {
  std::vector<std::string> names;
  if (!object_name.empty()) {
    names.push_back(object_name);
  } else {
    for (ObjectId id : db->List()) {
      auto entry = db->Get(id);
      if (entry.ok() && (*entry)->kind == CatalogKind::kMediaObject) {
        names.push_back((*entry)->name);
      }
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "tbmctl: database has no media objects to serve\n");
    return 2;
  }
  if (sessions <= 0) sessions = 4;
  if (interval_ms <= 0) interval_ms = 1000;

  serve::MediaServer server(db);
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  load.reserve(static_cast<size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    const std::string& object = names[static_cast<size_t>(i) % names.size()];
    load.emplace_back([&server, &stop, object] {
      // Each load thread holds one connection and repeatedly opens a
      // stream, reads it to the end, and closes it — a steady request
      // stream for the scraper to observe.
      auto [client_end, server_end] = serve::CreateLoopbackPair();
      if (!server.Serve(std::move(server_end)).ok()) return;
      auto connection = serve::Connect(std::move(client_end));
      while (!stop.load(std::memory_order_relaxed)) {
        auto stream = connection->OpenStream(object);
        if (!stream.ok()) return;
        bool end_of_stream = false;
        while (!end_of_stream && !stop.load(std::memory_order_relaxed)) {
          auto batch = (*stream)->Read(8);
          if (!batch.ok()) break;
          end_of_stream = batch->end_of_stream;
        }
        (void)(*stream)->Close();
      }
    });
  }

  int exit_code = 0;
  {
    auto [client_end, server_end] = serve::CreateLoopbackPair();
    if (Status adopted = server.Serve(std::move(server_end)); !adopted.ok()) {
      exit_code = Fail(adopted);
    } else {
      auto scraper = serve::Connect(std::move(client_end));
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
        auto telemetry = scraper->Telemetry();
        if (!telemetry.ok()) {
          exit_code = Fail(telemetry.status());
          break;
        }
        if (prom) {
          std::fputs(obs::ToPrometheusText(*telemetry).c_str(), stdout);
        } else {
          if (!once) std::fputs("\x1b[2J\x1b[H", stdout);  // Clear screen.
          RenderQosTable(*telemetry);
        }
        std::fflush(stdout);
        if (once) break;
      }
    }
  }

  stop.store(true, std::memory_order_relaxed);
  server.Stop();  // Unblocks any client parked in Recv.
  for (std::thread& thread : load) thread.join();
  for (const std::string& dump : server.flight_dumps()) {
    std::fprintf(stderr, "%s", dump.c_str());
  }
  return exit_code;
}

// Synthesizes a demo database in place: one audio media object "clip"
// (64 elements x 4000 bytes at 25 elements/s = 100 kB/s booked rate),
// so the serve demos (`tbmctl serve`, `tbmctl top`) have something to
// stream without ingesting real media first.
int CmdMkdemo(MediaDatabase* db) {
  if (db->FindByName("clip").ok()) {
    std::fprintf(stderr, "tbmctl: database already has a 'clip' object\n");
    return 0;  // Idempotent: re-running is not an error.
  }
  auto capture = CaptureSession::Begin(db->blob_store());
  if (!capture.ok()) return Fail(capture.status());
  MediaDescriptor descriptor;
  descriptor.type_name = "audio/pcm-block";
  descriptor.kind = MediaKind::kAudio;
  auto handle = capture->DeclareObject("clip", descriptor, TimeSystem(25));
  if (!handle.ok()) return Fail(handle.status());
  constexpr int kDemoElements = 64;
  constexpr int kDemoElementBytes = 4000;
  Bytes element(kDemoElementBytes);
  for (int i = 0; i < kDemoElements; ++i) {
    for (int j = 0; j < kDemoElementBytes; ++j) {
      element[static_cast<size_t>(j)] =
          static_cast<uint8_t>(i * 131 + j * 7 + 3);
    }
    if (Status s = capture->CaptureContiguous(*handle, element, 1); !s.ok()) {
      return Fail(s);
    }
  }
  auto interpretation = capture->Finish();
  if (!interpretation.ok()) return Fail(interpretation.status());
  auto interp_id = db->AddInterpretation("clip_interp", *interpretation);
  if (!interp_id.ok()) return Fail(interp_id.status());
  if (auto obj = db->AddMediaObject("clip", *interp_id, "clip"); !obj.ok()) {
    return Fail(obj.status());
  }
  if (Status s = db->Save(); !s.ok()) return Fail(s);
  std::printf("created media object \"clip\": %d elements, %d bytes each, "
              "%d elements/s\n",
              kDemoElements, kDemoElementBytes, 25);
  return 0;
}

int CmdTrace(MediaDatabase* db, const std::string& name,
             const std::string& out_path) {
  auto id = db->FindByName(name);
  if (!id.ok()) return Fail(id.status());
  obs::Tracer::Global().Clear();
  int64_t t0 = obs::NowTicksNs();
  auto value = db->Materialize(*id);
  int64_t t1 = obs::NowTicksNs();
  if (!value.ok()) return Fail(value.status());
  std::vector<obs::SpanRecord> spans = obs::Tracer::Global().Collect();
  if (auto s = obs::WriteChromeTrace(spans, out_path); !s.ok()) {
    return Fail(s);
  }
  // Coverage: merged span intervals against the materialize wall time
  // (span clocks and t0/t1 tick together, so interval lengths are
  // directly comparable).
  std::vector<std::pair<int64_t, int64_t>> intervals;
  intervals.reserve(spans.size());
  for (const obs::SpanRecord& span : spans) {
    intervals.emplace_back(span.start_ns, span.start_ns + span.duration_ns);
  }
  std::sort(intervals.begin(), intervals.end());
  int64_t covered = 0, cur_start = 0, cur_end = -1;
  for (const auto& [start, end] : intervals) {
    if (start > cur_end) {
      if (cur_end > cur_start) covered += cur_end - cur_start;
      cur_start = start;
      cur_end = end;
    } else {
      cur_end = std::max(cur_end, end);
    }
  }
  if (cur_end > cur_start) covered += cur_end - cur_start;
  int64_t wall = t1 - t0;
  std::printf("traced \"%s\": %zu spans", name.c_str(), spans.size());
  if (wall > 0) {
    std::printf(", covering %.1f%% of %.3f ms materialize wall",
                100.0 * static_cast<double>(covered) /
                    static_cast<double>(wall),
                static_cast<double>(wall) / 1e6);
  }
  std::printf("\nwrote %s (open in chrome://tracing)\n", out_path.c_str());
  if (spans.empty()) {
    std::fprintf(stderr,
                 "tbmctl: no spans recorded (built with TBM_OBS_DISABLED?)\n");
  }
  return 0;
}

int CmdStats(MediaDatabase* db, const std::string& dir) {
  std::printf("database: %s\n", dir.c_str());
  std::printf("catalog objects: %zu\n", db->size());
  int counts[5] = {0};
  for (ObjectId id : db->List()) {
    auto entry = db->Get(id);
    if (!entry.ok()) return Fail(entry.status());
    ++counts[static_cast<int>((*entry)->kind)];
  }
  const char* names[5] = {"entities", "interpretations", "media objects",
                          "derived objects", "multimedia objects"};
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-20s %d\n", names[i], counts[i]);
  }
  uint64_t blob_bytes = 0;
  auto blobs = db->blob_store()->List();
  for (BlobId blob : blobs) {
    auto size = db->blob_store()->Size(blob);
    if (size.ok()) blob_bytes += *size;
  }
  std::printf("BLOBs: %zu holding %s\n", blobs.size(),
              HumanBytes(blob_bytes).c_str());
  obs::MetricsSnapshot metrics = obs::Registry::Global().Snapshot();
  if (!metrics.empty()) {
    std::printf("metrics (this process):\n%s", metrics.ToString().c_str());
  }
  return 0;
}

int CmdBlobStat(MediaDatabase* db) {
  const auto* cas = dynamic_cast<const CasBlobStore*>(db->blob_store());
  if (cas == nullptr) {
    uint64_t blob_bytes = 0;
    auto blobs = db->blob_store()->List();
    for (BlobId blob : blobs) {
      auto size = db->blob_store()->Size(blob);
      if (size.ok()) blob_bytes += *size;
    }
    std::printf("store: not content-addressed\n");
    std::printf("BLOBs: %zu holding %s\n", blobs.size(),
                HumanBytes(blob_bytes).c_str());
    return 0;
  }
  CasStoreStats stats = cas->Stats();
  std::printf("store: content-addressed (%s)\n", cas->root().c_str());
  std::printf("distinct blobs:  %llu\n", (unsigned long long)stats.blob_count);
  std::printf("logical bytes:   %s\n", HumanBytes(stats.logical_bytes).c_str());
  std::printf("stored bytes:    %s\n", HumanBytes(stats.stored_bytes).c_str());
  std::printf("dedup ratio:     %.2fx\n", stats.dedup_ratio());
  // Push counters reset with the process; on a freshly opened store
  // they describe this invocation, while the byte figures above come
  // from the persistent ledger.
  std::printf("pushes:          %llu this session (%llu dedup hits)\n",
              (unsigned long long)stats.pushes,
              (unsigned long long)stats.dedup_hits);
  std::printf("%-6s %-16s %5s %12s\n", "id", "hash", "refs", "size");
  for (BlobId id : cas->List()) {
    auto hash = cas->HashOf(id);
    auto refs = cas->RefCount(id);
    auto size = cas->Size(id);
    if (!hash.ok() || !refs.ok() || !size.ok()) continue;
    std::printf("%-6llu %-16s %5u %12s\n", (unsigned long long)id,
                hash->ToHex().substr(0, 16).c_str(), *refs,
                HumanBytes(*size).c_str());
  }
  return 0;
}

int CmdDbStatus(MediaDatabase* db, const std::string& dir) {
  wal::WalStatus status = db->wal_status();
  if (!status.enabled) {
    std::printf("database: %s (no WAL — in-memory?)\n", dir.c_str());
    return 0;
  }
  std::printf("database:         %s\n", dir.c_str());
  std::printf("catalog objects:  %zu\n", db->size());
  std::printf("last LSN:         %llu\n",
              (unsigned long long)status.last_lsn);
  std::printf("durable LSN:      %llu\n",
              (unsigned long long)status.durable_lsn);
  std::printf("checkpoint LSN:   %llu (%llu checkpoint%s taken)\n",
              (unsigned long long)status.checkpoint_lsn,
              (unsigned long long)status.checkpoint_count,
              status.checkpoint_count == 1 ? "" : "s");
  std::printf("log:              %zu segment%s, %s\n", status.segments,
              status.segments == 1 ? "" : "s",
              HumanBytes(status.wal_bytes).c_str());
  wal::RecoveryStats recovery = db->recovery_stats();
  if (recovery.replayed > 0 || recovery.torn_tail ||
      recovery.discarded_bytes > 0) {
    std::printf("recovery (this open): snapshot LSN %llu, replayed %llu, "
                "skipped %llu, discarded %s%s, %llu us\n",
                (unsigned long long)recovery.snapshot_lsn,
                (unsigned long long)recovery.replayed,
                (unsigned long long)recovery.skipped,
                HumanBytes(recovery.discarded_bytes).c_str(),
                recovery.torn_tail ? " (torn tail)" : "",
                (unsigned long long)recovery.recovery_us);
  } else {
    std::printf("recovery (this open): clean, nothing to replay\n");
  }
  return 0;
}

int CmdDbCheckpoint(MediaDatabase* db) {
  wal::WalStatus before = db->wal_status();
  if (Status s = db->Checkpoint(); !s.ok()) return Fail(s);
  wal::WalStatus after = db->wal_status();
  std::printf("checkpoint %llu at LSN %llu: log %s -> %s\n",
              (unsigned long long)after.checkpoint_count,
              (unsigned long long)after.checkpoint_lsn,
              HumanBytes(before.wal_bytes).c_str(),
              HumanBytes(after.wal_bytes).c_str());
  return 0;
}

int CmdBlobGc(MediaDatabase* db) {
  auto stats = db->CollectBlobGarbage();
  if (!stats.ok()) return Fail(stats.status());
  std::printf(
      "collected: %llu live, %llu swept (%s reclaimed), %llu pinned, "
      "pause %llu us\n",
      (unsigned long long)stats->live, (unsigned long long)stats->swept,
      HumanBytes(stats->reclaimed_bytes).c_str(),
      (unsigned long long)stats->pinned, (unsigned long long)stats->pause_us);
  return 0;
}

// On a fatal signal, dump every live session's flight recorder to
// stderr before dying: the crash post-mortem this tool exists to
// demonstrate. Best-effort — the process is already doomed, so the
// non-async-signal-safe string work is an acceptable gamble.
extern "C" void FlightCrashHandler(int sig) {
  std::string dumps = tbm::obs::DumpAllFlightRecorders("fatal signal");
  if (!dumps.empty()) {
    ssize_t ignored = write(2, dumps.data(), dumps.size());
    (void)ignored;
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGSEGV, &FlightCrashHandler);
  std::signal(SIGABRT, &FlightCrashHandler);
  if (argc < 3) return Usage();
  std::string command = argv[1];
  std::string subcommand;
  int dir_arg = 2;
  if (command == "blob" || command == "db") {
    if (argc < 4) return Usage();
    subcommand = argv[2];
    dir_arg = 3;
  }
  std::string dir = argv[dir_arg];

  // A cas/ledger.tbm marks the directory's BLOB tier as
  // content-addressed; open over the matching store.
  auto db = [&dir]() -> Result<std::unique_ptr<MediaDatabase>> {
    if (std::filesystem::exists(dir + "/cas/ledger.tbm")) {
      auto store = CasBlobStore::Open(dir + "/cas");
      if (!store.ok()) return store.status();
      return MediaDatabase::Open(dir, std::move(*store));
    }
    return MediaDatabase::Open(dir);
  }();
  if (!db.ok()) return Fail(db.status());

  if (command == "blob") {
    if (subcommand == "stat") return CmdBlobStat(db->get());
    if (subcommand == "gc") return CmdBlobGc(db->get());
    return Usage();
  }
  if (command == "db") {
    if (subcommand == "status") return CmdDbStatus(db->get(), dir);
    if (subcommand == "checkpoint") return CmdDbCheckpoint(db->get());
    return Usage();
  }

  if (command == "mkdemo") return CmdMkdemo(db->get());
  if (command == "ls") return CmdLs(db->get());
  if (command == "stats") return CmdStats(db->get(), dir);
  if (command == "show" && argc >= 4) return CmdShow(db->get(), argv[3]);
  if (command == "play" && argc >= 4) return CmdPlay(db->get(), argv[3]);
  if (command == "eval" && argc >= 4) {
    int threads = 1;
    bool quiet = false;
    int prefetch = 0;
    bool dump_metrics = false;
    bool fuse = true;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quiet") == 0) {
        quiet = true;
      } else if (std::strcmp(argv[i], "--stats") == 0) {
        dump_metrics = true;
      } else if (std::strcmp(argv[i], "--no-fuse") == 0) {
        fuse = false;
      } else if (std::strcmp(argv[i], "--prefetch") == 0 && i + 1 < argc) {
        prefetch = std::atoi(argv[++i]);
      } else {
        threads = std::atoi(argv[i]);
      }
    }
    if (threads < 0 || prefetch < 0) return Usage();
    return CmdEval(db->get(), argv[3], threads, quiet, prefetch, dump_metrics,
                   fuse);
  }
  if (command == "serve") {
    int sessions = 0;
    std::string object_name;
    std::string trace_out;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--object") == 0 && i + 1 < argc) {
        object_name = argv[++i];
      } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        trace_out = argv[++i];
      } else {
        sessions = std::atoi(argv[i]);
        if (sessions <= 0) return Usage();
      }
    }
    return CmdServe(db->get(), sessions, object_name, trace_out);
  }
  if (command == "top") {
    int sessions = 0;
    int interval_ms = 0;
    bool once = false;
    bool prom = false;
    std::string object_name;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--object") == 0 && i + 1 < argc) {
        object_name = argv[++i];
      } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
        sessions = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
        interval_ms = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--once") == 0) {
        once = true;
      } else if (std::strcmp(argv[i], "--prom") == 0) {
        prom = true;
      } else {
        return Usage();
      }
    }
    return CmdTop(db->get(), sessions, object_name, interval_ms, once, prom);
  }
  if (command == "trace" && argc >= 4) {
    std::string out = "trace.json";
    for (int i = 4; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "-o") == 0) out = argv[i + 1];
    }
    return CmdTrace(db->get(), argv[3], out);
  }
  if (command == "export" && argc >= 5) {
    return CmdExport(db->get(), argv[3], argv[4]);
  }
  return Usage();
}

#!/bin/sh
# Lint: application code (examples/, tools/) must consume the library
# through the umbrella header only. Per-module headers are include
# points for code *inside* src/; everything outside goes through
# `#include "tbm.h"` so the public surface stays a single, finished
# API.
#
# Usage: tools/check_includes.sh [repo-root]
set -eu

root="${1:-.}"
fail=0

for file in "$root"/examples/*.cpp "$root"/examples/*.cc \
            "$root"/tools/*.cpp "$root"/tools/*.cc; do
  [ -e "$file" ] || continue
  # Quoted includes other than "tbm.h" reach into module headers.
  bad=$(grep -nE '^[[:space:]]*#[[:space:]]*include[[:space:]]*"' "$file" |
        grep -v '"tbm\.h"' || true)
  if [ -n "$bad" ]; then
    echo "ERROR: $file includes module headers directly:" >&2
    echo "$bad" >&2
    fail=1
  fi
done

# The inverse rule for library code: src/ modules (serve/ included)
# must name their exact dependencies, never the umbrella — including
# "tbm.h" from inside the library would hide layering violations and
# make every module depend on all of them.
for file in "$root"/src/*/*.h "$root"/src/*/*.cc \
            "$root"/src/*/*/*.h "$root"/src/*/*/*.cc; do
  [ -e "$file" ] || continue
  bad=$(grep -nE '^[[:space:]]*#[[:space:]]*include[[:space:]]*"tbm\.h"' \
        "$file" || true)
  if [ -n "$bad" ]; then
    echo "ERROR: $file includes the umbrella header \"tbm.h\":" >&2
    echo "$bad" >&2
    fail=1
  fi
done

# Umbrella completeness: every public module header must be reachable
# through "tbm.h", or applications silently lose API surface. Headers
# internal to the library (cross-module metric singletons and the
# like) are excluded explicitly so additions to the list are reviewed.
internal_headers="blob/store_metrics.h codec/codec_metrics.h"

for file in "$root"/src/*/*.h "$root"/src/*/*/*.h; do
  [ -e "$file" ] || continue
  rel=${file#"$root"/src/}
  skip=0
  for internal in $internal_headers; do
    [ "$rel" = "$internal" ] && skip=1
  done
  [ "$skip" -eq 1 ] && continue
  if ! grep -qE "^#[[:space:]]*include[[:space:]]*\"$rel\"" \
       "$root"/src/tbm.h; then
    echo "ERROR: src/$rel is not included by src/tbm.h" >&2
    echo "  (add it to the umbrella, or list it in internal_headers" >&2
    echo "   in tools/check_includes.sh if it is library-internal)" >&2
    fail=1
  fi
done

# Event-loop discipline: the server core runs entirely on the reactor
# and must never park a thread in the blocking transport helpers —
# those exist for clients, tools, and tests. A blocking call slipped
# into the serve core stalls every connection on that loop. The client
# pump (connection.cc) and the helpers' own definitions (transport.*)
# are the only legitimate users inside src/serve/.
for file in "$root"/src/serve/server.cc "$root"/src/serve/reactor.cc \
            "$root"/src/serve/session.cc; do
  [ -e "$file" ] || continue
  bad=$(grep -nE \
        '(BlockingSend|BlockingRecv|WaitReadable|WaitWritable|ReadFrame|WriteFrame)[[:space:]]*\(' \
        "$file" || true)
  if [ -n "$bad" ]; then
    echo "ERROR: $file calls a blocking transport helper:" >&2
    echo "$bad" >&2
    echo "  (the server core is non-blocking; use the Reactor)" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "" >&2
  echo "Application code must include only \"tbm.h\"; library code" >&2
  echo "under src/ must never include it (see src/tbm.h); every" >&2
  echo "public src/ header must be listed in the umbrella." >&2
  exit 1
fi
echo "include lint OK: examples/ and tools/ use only \"tbm.h\";" \
     "src/ modules never do; umbrella covers all public headers;" \
     "serve core stays non-blocking"

#!/bin/sh
# Lint: application code (examples/, tools/) must consume the library
# through the umbrella header only. Per-module headers are include
# points for code *inside* src/; everything outside goes through
# `#include "tbm.h"` so the public surface stays a single, finished
# API.
#
# Usage: tools/check_includes.sh [repo-root]
set -eu

root="${1:-.}"
fail=0

for file in "$root"/examples/*.cpp "$root"/examples/*.cc \
            "$root"/tools/*.cpp "$root"/tools/*.cc; do
  [ -e "$file" ] || continue
  # Quoted includes other than "tbm.h" reach into module headers.
  bad=$(grep -nE '^[[:space:]]*#[[:space:]]*include[[:space:]]*"' "$file" |
        grep -v '"tbm\.h"' || true)
  if [ -n "$bad" ]; then
    echo "ERROR: $file includes module headers directly:" >&2
    echo "$bad" >&2
    fail=1
  fi
done

# The inverse rule for library code: src/ modules (serve/ included)
# must name their exact dependencies, never the umbrella — including
# "tbm.h" from inside the library would hide layering violations and
# make every module depend on all of them.
for file in "$root"/src/*/*.h "$root"/src/*/*.cc; do
  [ -e "$file" ] || continue
  bad=$(grep -nE '^[[:space:]]*#[[:space:]]*include[[:space:]]*"tbm\.h"' \
        "$file" || true)
  if [ -n "$bad" ]; then
    echo "ERROR: $file includes the umbrella header \"tbm.h\":" >&2
    echo "$bad" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "" >&2
  echo "Application code must include only \"tbm.h\"; library code" >&2
  echo "under src/ must never include it (see src/tbm.h)." >&2
  exit 1
fi
echo "include lint OK: examples/ and tools/ use only \"tbm.h\";" \
     "src/ modules never do"

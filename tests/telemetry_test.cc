// Tests of the request-telemetry layer: trace-context propagation
// across the serve wire protocol (with hostile-input decode cases for
// the extension block), the TELEMETRY frame, Prometheus text
// exposition, per-QoS SLO metrics, and flight-recorder dumps from
// sessions that end badly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/io.h"
#include "blob/fault_store.h"
#include "blob/memory_store.h"
#include "db/database.h"
#include "interp/capture.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace tbm {
namespace serve {
namespace {

constexpr int kElements = 32;
constexpr int kElementBytes = 1000;

Bytes ElementPayload(int index) {
  Bytes bytes(kElementBytes);
  for (int j = 0; j < kElementBytes; ++j) {
    bytes[static_cast<size_t>(j)] =
        static_cast<uint8_t>(index * 131 + j * 7 + 3);
  }
  return bytes;
}

// One media object "clip": kElements elements of kElementBytes, 10
// ticks/s. With `read_fault_rate` > 0 reads fail at that rate.
std::unique_ptr<MediaDatabase> BuildTelemetryDb(double read_fault_rate = 0.0) {
  std::unique_ptr<BlobStore> store = std::make_unique<MemoryBlobStore>();
  if (read_fault_rate > 0.0) {
    FaultConfig faults;
    faults.read_fault_rate = read_fault_rate;
    faults.seed = 17;
    store = std::make_unique<FaultInjectingStore>(std::move(store), faults);
  }
  auto db = MediaDatabase::CreateWithStore(std::move(store));
  auto capture = CaptureSession::Begin(db->blob_store());
  EXPECT_TRUE(capture.ok());
  MediaDescriptor descriptor;
  descriptor.type_name = "audio/pcm-block";
  descriptor.kind = MediaKind::kAudio;
  auto handle = capture->DeclareObject("clip", descriptor, TimeSystem(10));
  EXPECT_TRUE(handle.ok());
  for (int i = 0; i < kElements; ++i) {
    EXPECT_TRUE(capture->CaptureContiguous(*handle, ElementPayload(i), 1).ok());
  }
  auto interpretation = capture->Finish();
  EXPECT_TRUE(interpretation.ok());
  auto interp_id = db->AddInterpretation("clip_interp", *interpretation);
  EXPECT_TRUE(interp_id.ok());
  EXPECT_TRUE(db->AddMediaObject("clip", *interp_id, "clip").ok());
  return db;
}

// ---------------------------------------------------------------------------
// Trace-context extension block on the wire

TEST(TraceContextTest, RoundTripsOnEveryVerb) {
  for (RequestType type :
       {RequestType::kOpen, RequestType::kRead, RequestType::kSeek,
        RequestType::kStats, RequestType::kClose, RequestType::kTelemetry}) {
    Request request;
    request.type = type;
    request.session_id = 9;
    request.object_name = type == RequestType::kOpen ? "clip" : "";
    request.trace.trace_id = 0xCAFEF00DDEADBEEFull;
    request.trace.parent_span_id = 0x1234000000000042ull;
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_TRUE(decoded->trace.present());
    EXPECT_EQ(decoded->trace.trace_id, request.trace.trace_id);
    EXPECT_EQ(decoded->trace.parent_span_id, request.trace.parent_span_id);
  }
}

TEST(TraceContextTest, AbsentContextDecodesAbsentAndAddsNoBytes) {
  Request request;
  request.type = RequestType::kRead;
  request.session_id = 3;
  request.max_elements = 8;
  Bytes encoded = EncodeRequest(request);

  Request with_trace = request;
  with_trace.trace.trace_id = 1;
  with_trace.trace.parent_span_id = 2;
  EXPECT_GT(EncodeRequest(with_trace).size(), encoded.size());

  auto decoded = DecodeRequest(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->trace.present());
  EXPECT_EQ(decoded->trace.trace_id, 0u);
}

TEST(TraceContextTest, UnknownExtensionTagIsSkipped) {
  Request request;
  request.type = RequestType::kStats;
  request.session_id = 5;
  request.trace.trace_id = 77;
  request.trace.parent_span_id = 78;
  Bytes encoded = EncodeRequest(request);

  // A future client appends an extension this decoder has never heard
  // of: tag 9 with a 3-byte body. Forward compatibility says: skip it.
  BinaryWriter extra;
  extra.WriteU8(9);
  Bytes body = {0xAA, 0xBB, 0xCC};
  extra.WriteBytes(body);
  Bytes future = encoded;
  future.insert(future.end(), extra.buffer().begin(), extra.buffer().end());

  auto decoded = DecodeRequest(future);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->session_id, 5u);
  EXPECT_EQ(decoded->trace.trace_id, 77u);  // Known tag still parsed.
}

TEST(TraceContextTest, ZeroExtensionTagRejected) {
  Request request;
  request.type = RequestType::kStats;
  Bytes encoded = EncodeRequest(request);
  encoded.push_back(0x00);
  auto decoded = DecodeRequest(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(TraceContextTest, TruncatedExtensionBodyRejected) {
  Request request;
  request.type = RequestType::kStats;
  Bytes encoded = EncodeRequest(request);
  // Tag 1 claiming a 10-byte body with only 1 byte present.
  encoded.push_back(1);
  encoded.push_back(10);
  encoded.push_back(0x01);
  auto decoded = DecodeRequest(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(TraceContextTest, TraceBodyWithTrailingBytesRejected) {
  Request request;
  request.type = RequestType::kStats;
  Bytes encoded = EncodeRequest(request);
  // Tag 1 whose body holds the two varints plus a stray byte: a known
  // tag must parse exactly.
  BinaryWriter body;
  body.WriteVarU64(1);
  body.WriteVarU64(2);
  body.WriteU8(0xEE);
  BinaryWriter ext;
  ext.WriteU8(1);
  ext.WriteBytes(body.buffer());
  encoded.insert(encoded.end(), ext.buffer().begin(), ext.buffer().end());
  auto decoded = DecodeRequest(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(TraceContextTest, TruncatedTraceVarintRejected) {
  Request request;
  request.type = RequestType::kStats;
  Bytes encoded = EncodeRequest(request);
  // Tag 1 whose 1-byte body is an unterminated varint.
  encoded.push_back(1);
  encoded.push_back(1);
  encoded.push_back(0x80);
  auto decoded = DecodeRequest(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// TELEMETRY frame

obs::MetricsSnapshot SampleSnapshot() {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["serve.admitted"] = 12;
  snapshot.counters["serve.read_bytes{qos=s1}"] = 48000;
  snapshot.counters["serve.read_bytes{qos=s2}"] = 9000;
  snapshot.gauges["serve.sessions"] = 3;
  snapshot.gauges["pool.queue_depth"] = -1;  // Signed survives the wire.
  obs::HistogramSnapshot h;
  h.count = 4;
  h.sum = 1000;
  h.min = 10;
  h.max = 700;
  h.buckets[4] = 2;
  h.buckets[10] = 2;
  snapshot.histograms["serve.read_us{qos=s1}"] = h;
  return snapshot;
}

TEST(TelemetryFrameTest, ResponseRoundTrips) {
  Response response;
  response.type = RequestType::kTelemetry;
  response.telemetry = SampleSnapshot();
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->telemetry.counters, response.telemetry.counters);
  EXPECT_EQ(decoded->telemetry.gauges, response.telemetry.gauges);
  ASSERT_EQ(decoded->telemetry.histograms.size(), 1u);
  const obs::HistogramSnapshot& h =
      decoded->telemetry.histograms.at("serve.read_us{qos=s1}");
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 1000u);
  EXPECT_EQ(h.min, 10u);
  EXPECT_EQ(h.max, 700u);
  EXPECT_EQ(h.buckets[4], 2u);
  EXPECT_EQ(h.buckets[10], 2u);
}

TEST(TelemetryFrameTest, EveryTruncationRejected) {
  Response response;
  response.type = RequestType::kTelemetry;
  response.telemetry = SampleSnapshot();
  Bytes encoded = EncodeResponse(response);
  // Chopping the frame anywhere after the (type, status) prefix must
  // produce Corruption — never a crash or a silently partial snapshot.
  for (size_t len = 2; len < encoded.size(); ++len) {
    ByteSpan prefix(encoded.data(), len);
    auto decoded = DecodeResponse(prefix);
    ASSERT_FALSE(decoded.ok()) << "length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
        << "length " << len;
  }
  auto whole = DecodeResponse(encoded);
  EXPECT_TRUE(whole.ok());
}

TEST(TelemetryFrameTest, HostileSectionCountRejected) {
  // A frame claiming 2^40 counters in a few bytes of payload.
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(RequestType::kTelemetry));
  writer.WriteU8(0);  // StatusCode::kOk.
  writer.WriteString("");
  writer.WriteVarU64(1ull << 40);
  auto decoded = DecodeResponse(writer.buffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(TelemetryFrameTest, HostileBucketCountRejected) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(RequestType::kTelemetry));
  writer.WriteU8(0);
  writer.WriteString("");
  writer.WriteVarU64(0);  // No counters.
  writer.WriteVarU64(0);  // No gauges.
  writer.WriteVarU64(1);  // One histogram...
  writer.WriteString("h");
  writer.WriteVarU64(1);  // count
  writer.WriteVarU64(1);  // sum
  writer.WriteVarU64(1);  // min
  writer.WriteVarU64(1);  // max
  writer.WriteVarU64(1u << 20);  // ...claiming a million buckets.
  auto decoded = DecodeResponse(writer.buffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(TelemetryFrameTest, ForeignBucketLayoutStillDecodes) {
  // A peer built with a different (smaller) histogram shape: its two
  // buckets land in ours, nothing rejected.
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(RequestType::kTelemetry));
  writer.WriteU8(0);
  writer.WriteString("");
  writer.WriteVarU64(0);
  writer.WriteVarU64(0);
  writer.WriteVarU64(1);
  writer.WriteString("h");
  writer.WriteVarU64(3);
  writer.WriteVarU64(30);
  writer.WriteVarU64(5);
  writer.WriteVarU64(20);
  writer.WriteVarU64(2);  // Two buckets only.
  writer.WriteVarU64(1);
  writer.WriteVarU64(2);
  auto decoded = DecodeResponse(writer.buffer());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const obs::HistogramSnapshot& h = decoded->telemetry.histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 2u);
}

TEST(TelemetryFrameTest, TelemetryRequestTrailingBytesRejected) {
  Request request;
  request.type = RequestType::kTelemetry;
  Bytes encoded = EncodeRequest(request);
  encoded.push_back(0xAA);  // Parses as a tag whose body is missing.
  auto decoded = DecodeRequest(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Metric-name parsing and Prometheus exposition

TEST(MetricExportTest, ParseMetricNameSplitsLabeledNames) {
  obs::ParsedMetricName parsed =
      obs::ParseMetricName("serve.read_us{qos=s2}");
  EXPECT_EQ(parsed.base, "serve.read_us");
  EXPECT_EQ(parsed.label_key, "qos");
  EXPECT_EQ(parsed.label_value, "s2");
  EXPECT_TRUE(parsed.labeled());

  obs::ParsedMetricName plain = obs::ParseMetricName("serve.admitted");
  EXPECT_EQ(plain.base, "serve.admitted");
  EXPECT_FALSE(plain.labeled());

  // Malformed suffixes stay whole rather than mis-splitting.
  EXPECT_FALSE(obs::ParseMetricName("weird{novalue}").labeled());
  EXPECT_FALSE(obs::ParseMetricName("{k=v}").labeled());
  EXPECT_FALSE(obs::ParseMetricName("trailing{k=v").labeled());
  EXPECT_FALSE(obs::ParseMetricName("").labeled());
}

TEST(MetricExportTest, PrometheusNameSanitizes) {
  EXPECT_EQ(obs::PrometheusName("serve.read_us"), "tbm_serve_read_us");
  EXPECT_EQ(obs::PrometheusName("pool.queue-depth"), "tbm_pool_queue_depth");
}

TEST(MetricExportTest, PrometheusTextRendersAllFamilies) {
  std::string text = obs::ToPrometheusText(SampleSnapshot());
  // One TYPE line per family, shared by labeled variants.
  EXPECT_NE(text.find("# TYPE tbm_serve_read_bytes counter"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE tbm_serve_read_bytes counter"),
            text.rfind("# TYPE tbm_serve_read_bytes counter"));
  EXPECT_NE(text.find("tbm_serve_read_bytes{qos=\"s1\"} 48000"),
            std::string::npos);
  EXPECT_NE(text.find("tbm_serve_read_bytes{qos=\"s2\"} 9000"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tbm_serve_sessions gauge"), std::string::npos);
  EXPECT_NE(text.find("tbm_pool_queue_depth -1"), std::string::npos);
  // Histogram: cumulative le buckets, then sum and count.
  EXPECT_NE(text.find("# TYPE tbm_serve_read_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tbm_serve_read_us_bucket{qos=\"s1\",le=\"16\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tbm_serve_read_us_bucket{qos=\"s1\",le=\"1024\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("tbm_serve_read_us_bucket{qos=\"s1\",le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("tbm_serve_read_us_sum{qos=\"s1\"} 1000"),
            std::string::npos);
  EXPECT_NE(text.find("tbm_serve_read_us_count{qos=\"s1\"} 4"),
            std::string::npos);
  // Deterministic for a given snapshot.
  EXPECT_EQ(text, obs::ToPrometheusText(SampleSnapshot()));
}

// ---------------------------------------------------------------------------
// End-to-end over loopback

#ifndef TBM_OBS_DISABLED

TEST(ServeTraceTest, LoopbackReadProducesMergedTrace) {
  obs::Tracer::Global().Clear();
  auto db = BuildTelemetryDb();
  MediaServer server(db.get());
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  MediaClient client(std::move(client_end));
  ASSERT_NE(client.trace_id(), 0u);

  ASSERT_TRUE(client.Open("clip").ok());
  auto batch = client.Read(64);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->end_of_stream);
  ASSERT_TRUE(client.Close().ok());
  server.Stop();

  // One collection holds both sides (loopback = one process); the
  // client's trace id selects the merged timeline for this session.
  std::vector<obs::SpanRecord> spans =
      obs::SpansForTrace(obs::Tracer::Global().Collect(), client.trace_id());
  ASSERT_FALSE(spans.empty());

  auto find = [&](const char* name) -> const obs::SpanRecord* {
    for (const obs::SpanRecord& span : spans) {
      if (std::string(span.name) == name) return &span;
    }
    return nullptr;
  };
  const obs::SpanRecord* client_open = find("client.open");
  const obs::SpanRecord* serve_open = find("serve.open");
  const obs::SpanRecord* client_read = find("client.read");
  const obs::SpanRecord* serve_read = find("serve.read");
  const obs::SpanRecord* read_next = find("serve.read_next");
  ASSERT_NE(client_open, nullptr);
  ASSERT_NE(serve_open, nullptr);
  ASSERT_NE(client_read, nullptr);
  ASSERT_NE(serve_read, nullptr);
  ASSERT_NE(read_next, nullptr);

  // Server-side spans parent into the client's round-trip spans, and
  // the worker-pool hop keeps the chain: read -> serve.read ->
  // serve.read_next.
  EXPECT_EQ(serve_open->parent_id, client_open->span_id);
  EXPECT_EQ(serve_read->parent_id, client_read->span_id);
  EXPECT_EQ(read_next->parent_id, serve_read->span_id);
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, client.trace_id());
  }

  // The merged timeline exports with trace ids in the args.
  std::string json = obs::ToChromeTraceJson(spans);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("client.read"), std::string::npos);
  EXPECT_NE(json.find("serve.read_next"), std::string::npos);
}

TEST(ServeTraceTest, TwoClientsKeepDistinctTraces) {
  obs::Tracer::Global().Clear();
  auto db = BuildTelemetryDb();
  MediaServer server(db.get());
  auto [c1, s1] = CreateLoopbackPair();
  auto [c2, s2] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(s1)).ok());
  ASSERT_TRUE(server.Serve(std::move(s2)).ok());
  MediaClient alpha(std::move(c1));
  MediaClient beta(std::move(c2));
  ASSERT_NE(alpha.trace_id(), beta.trace_id());
  ASSERT_TRUE(alpha.Open("clip").ok());
  ASSERT_TRUE(beta.Open("clip").ok());
  ASSERT_TRUE(alpha.Close().ok());
  ASSERT_TRUE(beta.Close().ok());
  server.Stop();

  std::vector<obs::SpanRecord> all = obs::Tracer::Global().Collect();
  std::vector<obs::SpanRecord> alpha_spans =
      obs::SpansForTrace(all, alpha.trace_id());
  std::vector<obs::SpanRecord> beta_spans =
      obs::SpansForTrace(all, beta.trace_id());
  ASSERT_FALSE(alpha_spans.empty());
  ASSERT_FALSE(beta_spans.empty());
  for (const obs::SpanRecord& span : alpha_spans) {
    EXPECT_EQ(span.trace_id, alpha.trace_id());
  }
}

TEST(QosMetricsTest, ReadSloRecordedPerClass) {
  auto& registry = obs::Registry::Global();
  uint64_t admitted_before =
      registry.counter("serve.admitted", "qos", "s1")->Value();
  uint64_t reads_before =
      registry.histogram("serve.read_us", "qos", "s1")->Snapshot().count;
  uint64_t bytes_before =
      registry.counter("serve.read_bytes", "qos", "s1")->Value();

  auto db = BuildTelemetryDb();
  MediaServer server(db.get());
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  MediaClient client(std::move(client_end));
  auto open = client.Open("clip");
  ASSERT_TRUE(open.ok());
  ASSERT_EQ(open->stride, 1u);  // Uncontended: full fidelity = class s1.
  bool end_of_stream = false;
  while (!end_of_stream) {
    auto batch = client.Read(8);
    ASSERT_TRUE(batch.ok());
    end_of_stream = batch->end_of_stream;
  }
  ASSERT_TRUE(client.Close().ok());
  server.Stop();

  EXPECT_EQ(registry.counter("serve.admitted", "qos", "s1")->Value(),
            admitted_before + 1);
  EXPECT_GE(registry.histogram("serve.read_us", "qos", "s1")
                ->Snapshot()
                .count,
            reads_before + 4);  // 32 elements in batches of 8.
  EXPECT_GT(registry.counter("serve.read_bytes", "qos", "s1")->Value(),
            bytes_before + kElements * kElementBytes / 2);
}

TEST(QosMetricsTest, DeadlineMissCounted) {
  auto& registry = obs::Registry::Global();
  uint64_t misses_before =
      registry.counter("serve.deadline_miss", "qos", "s1")->Value();

  auto db = BuildTelemetryDb();
  ServeConfig config;
  config.read_deadline_us = 1;  // Unmeetable: every READ misses.
  MediaServer server(db.get(), config);
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  MediaClient client(std::move(client_end));
  ASSERT_TRUE(client.Open("clip").ok());
  auto batch = client.Read(8);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(client.Close().ok());
  server.Stop();

  EXPECT_GE(registry.counter("serve.deadline_miss", "qos", "s1")->Value(),
            misses_before + 1);
}

TEST(FlightDumpTest, EvictedSessionLeavesDumpNamingCause) {
  auto db = BuildTelemetryDb();
  ServeConfig config;
  config.stall_timeout = std::chrono::milliseconds(100);
  MediaServer server(db.get(), config);
  LoopbackOptions options;
  options.buffer_bytes = 128;  // Smaller than one element payload.
  auto [client_end, server_end] = CreateLoopbackPair(options);
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());

  // Speak raw v1 frames so the transport is never drained by a client
  // pump thread — the point is to wedge the server's writes.
  constexpr uint64_t kTraceId = 0xFEEDFACEu;
  Request open;
  open.type = RequestType::kOpen;
  open.object_name = "clip";
  open.trace.trace_id = kTraceId;
  open.trace.parent_span_id = 1;
  ASSERT_TRUE(WriteFrame(*client_end, EncodeRequest(open)).ok());
  auto open_body = ReadFrame(*client_end, kMaxFrameBytes);
  ASSERT_TRUE(open_body.ok());
  auto open_frame = DecodeFrameBody(*open_body);
  ASSERT_TRUE(open_frame.ok());
  auto opened = DecodeResponse(open_frame->payload);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->status.ok()) << opened->status.message();

  // Request a batch far larger than the transport buffer and never
  // drain it: the server's writes stall past the timeout and the
  // session is evicted.
  Request request;
  request.type = RequestType::kRead;
  request.session_id = opened->open.session_id;
  request.max_elements = 16;
  request.trace.trace_id = kTraceId;
  request.trace.parent_span_id = 2;
  ASSERT_TRUE(WriteFrame(*client_end, EncodeRequest(request)).ok());

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().sessions_evicted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.stats().sessions_evicted, 1u);
  // The dump is stored by the handler thread as it finishes; wait for
  // it rather than racing it.
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.flight_dumps().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::vector<std::string> dumps = server.flight_dumps();
  ASSERT_EQ(dumps.size(), 1u);
  // The dump names the session, its connection and stream, the
  // eviction cause, and the trace.
  EXPECT_NE(
      dumps[0].find("session 1 conn=1 stream=0 object=clip state=EVICTED"),
      std::string::npos)
      << dumps[0];
  EXPECT_NE(dumps[0].find("send stalled past timeout (slow client)"),
            std::string::npos);
  EXPECT_NE(dumps[0].find("EVICT"), std::string::npos);
  EXPECT_NE(dumps[0].find("ADMIT"), std::string::npos);
  char trace_hex[32];
  std::snprintf(trace_hex, sizeof(trace_hex), "trace=0x%llx",
                (unsigned long long)kTraceId);
  EXPECT_NE(dumps[0].find(trace_hex), std::string::npos) << dumps[0];
}

TEST(FlightDumpTest, LossyCompletionLeavesDump) {
  // Heavy faults with no retries: some elements skip, the session
  // completes DEGRADED, and the post-mortem is retained.
  auto db = BuildTelemetryDb(/*read_fault_rate=*/0.4);
  ServeConfig config;
  config.read_options.policy.max_retries = 0;
  config.read_options.chunk_size = 512;  // Many reads => faults land.
  MediaServer server(db.get(), config);
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  MediaClient client(std::move(client_end));
  ASSERT_TRUE(client.Open("clip").ok());
  bool end_of_stream = false;
  while (!end_of_stream) {
    auto batch = client.Read(8);
    ASSERT_TRUE(batch.ok());
    end_of_stream = batch->end_of_stream;
  }
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats->elements_skipped, 0u);
  ASSERT_TRUE(client.Close().ok());
  server.Stop();

  std::vector<std::string> dumps = server.flight_dumps();
  ASSERT_FALSE(dumps.empty());
  EXPECT_NE(dumps[0].find("completed with skipped elements"),
            std::string::npos);
  EXPECT_NE(dumps[0].find("FAULT"), std::string::npos) << dumps[0];
}

#endif  // !TBM_OBS_DISABLED

TEST(TelemetryEndToEndTest, ClientScrapesServerRegistry) {
  auto db = BuildTelemetryDb();
  MediaServer server(db.get());
  auto [c1, s1] = CreateLoopbackPair();
  auto [c2, s2] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(s1)).ok());
  ASSERT_TRUE(server.Serve(std::move(s2)).ok());
  MediaClient streamer(std::move(c1));
  ASSERT_TRUE(streamer.Open("clip").ok());
  ASSERT_TRUE(streamer.Read(8).ok());

  MediaClient scraper(std::move(c2));
  auto telemetry = scraper.Telemetry();
  ASSERT_TRUE(telemetry.ok()) << telemetry.status().message();
#ifndef TBM_OBS_DISABLED
  // The scrape sees the shared process registry, streaming included.
  EXPECT_GT(telemetry->counters.count("serve.admitted{qos=s1}"), 0u);
  EXPECT_FALSE(obs::ToPrometheusText(*telemetry).empty());
#endif
  ASSERT_TRUE(streamer.Close().ok());
  server.Stop();
}

// Exercises the exporter scrape path racing live streaming sessions —
// the TSan target: snapshotting the registry and flight recorders
// while handler/worker threads record into them.
TEST(TelemetryRaceTest, ScrapeWhileStreaming) {
  auto db = BuildTelemetryDb(/*read_fault_rate=*/0.02);
  ServeConfig config;
  config.read_options.policy.max_retries = 4;
  config.read_options.policy.backoff_initial_us = 20.0;
  MediaServer server(db.get(), config);

  constexpr int kStreamers = 4;
  std::vector<std::thread> streamers;
  std::atomic<int> completed{0};
  for (int i = 0; i < kStreamers; ++i) {
    auto [client_end, server_end] = CreateLoopbackPair();
    ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
    streamers.emplace_back(
        [&completed, endpoint = std::move(client_end)]() mutable {
          MediaClient client(std::move(endpoint));
          if (!client.Open("clip").ok()) return;
          bool end_of_stream = false;
          while (!end_of_stream) {
            auto batch = client.Read(4);
            if (!batch.ok()) return;
            end_of_stream = batch->end_of_stream;
          }
          (void)client.Close();
          completed.fetch_add(1);
        });
  }

  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  MediaClient scraper(std::move(client_end));
  for (int i = 0; i < 25; ++i) {
    auto telemetry = scraper.Telemetry();
    ASSERT_TRUE(telemetry.ok()) << telemetry.status().message();
    (void)server.flight_dumps();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (std::thread& thread : streamers) thread.join();
  ASSERT_TRUE(scraper.Close().ok());
  server.Stop();
  EXPECT_EQ(completed.load(), kStreamers);
}

}  // namespace
}  // namespace serve
}  // namespace tbm

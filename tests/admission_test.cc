// Tests for rate profiles and descriptor-driven admission control —
// the paper's §4.1 "descriptors should also contain information that
// helps allocate resources for playback" and §6 "resource allocation".
#include <gtest/gtest.h>

#include "blob/memory_store.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "interp/av_capture.h"
#include "playback/admission.h"

namespace tbm {
namespace {

MediaDescriptor AudioDesc() {
  MediaDescriptor desc;
  desc.type_name = "audio/pcm-block";
  desc.kind = MediaKind::kAudio;
  return desc;
}

// Constant-rate stream: `rate` elements/s of `bytes` each.
TimedStream CbrStream(int64_t elements, size_t bytes, int64_t rate) {
  TimedStream stream(AudioDesc(), TimeSystem(rate));
  for (int64_t i = 0; i < elements; ++i) {
    EXPECT_TRUE(stream.AppendContiguous(Bytes(bytes, 0), 1).ok());
  }
  return stream;
}

TEST(RateProfileTest, ConstantRateStream) {
  // 25 el/s of 4000 B = 100 kB/s, no burstiness.
  TimedStream stream = CbrStream(100, 4000, 25);
  RateProfile profile = MeasureRateProfile(stream);
  EXPECT_NEAR(profile.average_bytes_per_second, 100000.0, 1.0);
  EXPECT_NEAR(profile.peak_bytes_per_second, 100000.0, 1.0);
  EXPECT_NEAR(profile.Burstiness(), 1.0, 0.01);
}

TEST(RateProfileTest, BurstyStreamHasHigherPeak) {
  // One second of big elements followed by nine seconds of small ones.
  TimedStream stream(AudioDesc(), TimeSystem(25));
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(stream.AppendContiguous(Bytes(20000, 0), 1).ok());
  }
  for (int i = 0; i < 225; ++i) {
    ASSERT_TRUE(stream.AppendContiguous(Bytes(1000, 0), 1).ok());
  }
  RateProfile profile = MeasureRateProfile(stream);
  // Average: (25*20000 + 225*1000) / 10 s = 72.5 kB/s; peak ~500 kB/s.
  EXPECT_NEAR(profile.average_bytes_per_second, 72500.0, 10.0);
  EXPECT_GT(profile.peak_bytes_per_second, 400000.0);
  EXPECT_GT(profile.Burstiness(), 5.0);
}

TEST(RateProfileTest, DescriptorRoundTrip) {
  TimedStream stream = CbrStream(50, 1000, 25);
  RateProfile profile = MeasureRateProfile(stream);
  MediaDescriptor desc = AudioDesc();
  EXPECT_TRUE(RateProfileFromDescriptor(desc).status().IsNotFound());
  AnnotateRateProfile(&desc, profile);
  auto restored = RateProfileFromDescriptor(desc);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->average_bytes_per_second,
            profile.average_bytes_per_second);
  EXPECT_EQ(restored->peak_bytes_per_second, profile.peak_bytes_per_second);
}

TEST(RateProfileTest, CaptureAnnotatesDescriptors) {
  // CaptureInterleavedAv writes the rates the paper asks for.
  MemoryBlobStore store;
  std::vector<Image> frames = videogen::Clip(64, 48, 25, 3);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 1.1);
  auto result =
      CaptureInterleavedAv(&store, frames, audio, AvCaptureConfig{});
  ASSERT_TRUE(result.ok());
  auto video = result->interpretation.FindObject("video1");
  ASSERT_TRUE(video.ok());
  auto profile = RateProfileFromDescriptor((*video)->descriptor);
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_GT(profile->average_bytes_per_second, 0.0);
  EXPECT_GE(profile->peak_bytes_per_second,
            profile->average_bytes_per_second * 0.99);
  auto audio_obj = result->interpretation.FindObject("audio1");
  ASSERT_TRUE(audio_obj.ok());
  auto audio_profile = RateProfileFromDescriptor((*audio_obj)->descriptor);
  ASSERT_TRUE(audio_profile.ok());
  EXPECT_NEAR(audio_profile->average_bytes_per_second, 176400.0, 1.0);
}

TEST(AdmissionTest, AdmitsUntilCapacityThenRejects) {
  AdmissionController controller(1000000.0,  // 1 MB/s server.
                                 AdmissionController::Policy::kAverageRate);
  MediaDescriptor desc = AudioDesc();
  AnnotateRateProfile(&desc, RateProfile{300000.0, 450000.0});
  EXPECT_TRUE(controller.Admit("client1", desc).ok());
  EXPECT_TRUE(controller.Admit("client2", desc).ok());
  EXPECT_TRUE(controller.Admit("client3", desc).ok());
  EXPECT_NEAR(controller.booked(), 900000.0, 1.0);
  // Fourth client would need 300 kB/s; only 100 kB/s remain.
  Status status = controller.Admit("client4", desc);
  EXPECT_TRUE(status.IsResourceExhausted());
  // Releasing one readmits.
  ASSERT_TRUE(controller.Release("client2").ok());
  EXPECT_TRUE(controller.Admit("client4", desc).ok());
  EXPECT_EQ(controller.session_count(), 3u);
}

TEST(AdmissionTest, PeakPolicyIsMoreConservative) {
  MediaDescriptor desc = AudioDesc();
  AnnotateRateProfile(&desc, RateProfile{300000.0, 600000.0});
  AdmissionController average(1000000.0,
                              AdmissionController::Policy::kAverageRate);
  AdmissionController peak(1000000.0,
                           AdmissionController::Policy::kPeakRate);
  EXPECT_TRUE(average.Admit("a", desc).ok());
  EXPECT_TRUE(average.Admit("b", desc).ok());
  EXPECT_TRUE(average.Admit("c", desc).ok());  // 3 x 300k fits.
  EXPECT_TRUE(peak.Admit("a", desc).ok());
  EXPECT_TRUE(peak.Admit("b", desc).IsResourceExhausted());  // 2 x 600k > 1M.
}

TEST(AdmissionTest, Validation) {
  AdmissionController controller(500000.0,
                                 AdmissionController::Policy::kAverageRate);
  MediaDescriptor no_rates = AudioDesc();
  EXPECT_TRUE(controller.Admit("x", no_rates).IsNotFound());
  MediaDescriptor desc = AudioDesc();
  AnnotateRateProfile(&desc, RateProfile{100000.0, 100000.0});
  ASSERT_TRUE(controller.Admit("x", desc).ok());
  EXPECT_TRUE(controller.Admit("x", desc).IsAlreadyExists());
  EXPECT_TRUE(controller.Release("y").IsNotFound());
  MediaDescriptor zero = AudioDesc();
  AnnotateRateProfile(&zero, RateProfile{0.0, 0.0});
  EXPECT_TRUE(controller.Admit("z", zero).IsInvalidArgument());
}

TEST(AdmissionTest, AdmitProfileSkipsDescriptorAnnotations) {
  AdmissionController controller(500000.0,
                                 AdmissionController::Policy::kAverageRate);
  RateProfile profile{200000.0, 220000.0};
  EXPECT_TRUE(controller.AdmitProfile("a", profile).ok());
  EXPECT_TRUE(controller.AdmitProfile("b", profile).ok());
  EXPECT_TRUE(controller.AdmitProfile("c", profile).IsResourceExhausted());
  EXPECT_TRUE(controller.AdmitProfile("a", profile).IsAlreadyExists());
  EXPECT_TRUE(
      controller.AdmitProfile("z", RateProfile{0.0, 0.0}).IsInvalidArgument());
  EXPECT_NEAR(controller.booked(), 400000.0, 1.0);
}

TEST(AdmissionTest, DegradesBeforeDenying) {
  AdmissionController controller(1000000.0,
                                 AdmissionController::Policy::kAverageRate);
  RateProfile profile{400000.0, 400000.0};

  // Two full-fidelity sessions fit (800k of 1M).
  auto first = controller.AdmitDegrading("s1", profile, 8);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stride, 1);
  EXPECT_FALSE(first->degraded());
  auto second = controller.AdmitDegrading("s2", profile, 8);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stride, 1);

  // The third doesn't fit at 400k but does at stride 2 (200k), which
  // books the server to exactly its capacity.
  auto third = controller.AdmitDegrading("s3", profile, 8);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->stride, 2);
  EXPECT_TRUE(third->degraded());
  EXPECT_NEAR(third->booked_bytes_per_second, 200000.0, 1.0);
  EXPECT_NEAR(controller.booked(), 1000000.0, 1.0);

  // A full server denies even the thinnest tier — but only after the
  // degrade ladder (stride up to 8) was tried.
  auto denied = controller.AdmitDegrading("s4", profile, 8);
  EXPECT_TRUE(denied.status().IsResourceExhausted());

  // Freeing a full-rate session readmits at full fidelity.
  ASSERT_TRUE(controller.Release("s1").ok());
  auto readmitted = controller.AdmitDegrading("s4", profile, 8);
  ASSERT_TRUE(readmitted.ok());
  EXPECT_EQ(readmitted->stride, 1);
  EXPECT_LE(controller.booked(), controller.capacity());
}

TEST(AdmissionTest, RebookAdjustsBookingInPlace) {
  AdmissionController controller(1000000.0,
                                 AdmissionController::Policy::kAverageRate);
  ASSERT_TRUE(
      controller.AdmitProfile("s1", RateProfile{600000.0, 600000.0}).ok());
  EXPECT_TRUE(controller.Rebook("ghost", 1.0).IsNotFound());
  EXPECT_TRUE(controller.Rebook("s1", 0.0).IsInvalidArgument());

  // Degrade to half rate mid-session; the freed capacity admits more.
  ASSERT_TRUE(controller.Rebook("s1", 300000.0).ok());
  EXPECT_NEAR(controller.booked(), 300000.0, 1.0);
  ASSERT_TRUE(
      controller.AdmitProfile("s2", RateProfile{600000.0, 600000.0}).ok());

  // An increase that no longer fits fails and keeps the old booking.
  EXPECT_TRUE(controller.Rebook("s1", 600000.0).IsResourceExhausted());
  EXPECT_NEAR(controller.booked(), 900000.0, 1.0);
  ASSERT_TRUE(controller.Rebook("s1", 400000.0).ok());  // Fits exactly.
  EXPECT_NEAR(controller.booked(), 1000000.0, 1.0);
}

TEST(AdmissionTest, EndToEndFromCapturedDescriptors) {
  // Server sizing straight from captured metadata: a 1 MB/s server
  // admits two of our ~0.38 MB/s VHS-quality clips plus audio, not
  // three.
  MemoryBlobStore store;
  std::vector<Image> frames = videogen::Clip(160, 120, 25, 9);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 1.1);
  auto capture =
      CaptureInterleavedAv(&store, frames, audio, AvCaptureConfig{});
  ASSERT_TRUE(capture.ok());
  auto video = capture->interpretation.FindObject("video1");
  ASSERT_TRUE(video.ok());

  AdmissionController controller(250000.0,
                                 AdmissionController::Policy::kAverageRate);
  int admitted = 0;
  for (int client = 0; client < 10; ++client) {
    if (controller
            .Admit("client" + std::to_string(client), (*video)->descriptor)
            .ok()) {
      ++admitted;
    }
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 10);
  EXPECT_LE(controller.booked(), controller.capacity());
}

}  // namespace
}  // namespace tbm

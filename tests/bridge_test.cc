// Tests for the stored-form <-> typed-value codec bridge, focusing on
// paths the integration suite doesn't reach: heterogeneous ADPCM
// streams rebuilt from element descriptors, corruption and
// unsupported-type handling, and TMPEG bidirectional re-sorting.
#include <gtest/gtest.h>

#include "blob/memory_store.h"
#include "codec/adpcm.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "db/codec_bridge.h"
#include "interp/capture.h"

namespace tbm {
namespace {

// Builds an audio/adpcm stream with per-element coder state in element
// descriptors — the paper's §3.3 heterogeneous example — and round
// trips it through BLOB storage and the bridge.
TEST(BridgeTest, AdpcmHeterogeneousRoundTrip) {
  AudioBuffer original = audiogen::Sine(22050, 2, 440.0, 0.6, 0.4);
  auto blocks = AdpcmEncode(original, 1024);
  ASSERT_TRUE(blocks.ok());

  MediaDescriptor desc;
  desc.type_name = "audio/adpcm";
  desc.kind = MediaKind::kAudio;
  desc.attrs.SetInt("sample rate", 22050);
  desc.attrs.SetInt("number of channels", 2);
  desc.attrs.SetInt("block size", 1024);
  desc.attrs.SetString("encoding", "IMA ADPCM");
  TimedStream stream(desc, TimeSystem(22050));
  for (const AdpcmBlock& block : *blocks) {
    ElementDescriptor ed;
    ed.SetInt("predictor", block.predictor[0]);
    ed.SetInt("step index", block.step_index[0]);
    ed.SetInt("predictor1", block.predictor[1]);
    ed.SetInt("step index1", block.step_index[1]);
    ASSERT_TRUE(
        stream.AppendContiguous(block.data, block.frames, std::move(ed)).ok());
  }

  // Store + materialize + decode.
  MemoryBlobStore store;
  auto interp = StoreValue(&store, MediaValue(stream), "adpcm");
  ASSERT_TRUE(interp.ok()) << interp.status();
  auto restored = interp->Materialize(store, "adpcm");
  ASSERT_TRUE(restored.ok());
  auto value = DecodeStream(*restored);
  ASSERT_TRUE(value.ok()) << value.status();
  const AudioBuffer& decoded = std::get<AudioBuffer>(*value);
  EXPECT_EQ(decoded.samples.size(), original.samples.size());
  EXPECT_GT(*AudioSnr(original, decoded), 15.0);
}

TEST(BridgeTest, AdpcmMissingStateFails) {
  MediaDescriptor desc;
  desc.type_name = "audio/adpcm";
  desc.kind = MediaKind::kAudio;
  desc.attrs.SetInt("sample rate", 22050);
  desc.attrs.SetInt("number of channels", 1);
  TimedStream stream(desc, TimeSystem(22050));
  // Element without predictor/step attributes.
  ASSERT_TRUE(stream.AppendContiguous(Bytes(128, 0), 256).ok());
  EXPECT_FALSE(DecodeStream(stream).ok());
}

TEST(BridgeTest, CorruptTjpegElementSurfacesError) {
  MemoryBlobStore store;
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(32, 24, 4, 1);
  auto interp = StoreValue(&store, MediaValue(video), "clip");
  ASSERT_TRUE(interp.ok());
  auto stream = interp->Materialize(store, "clip");
  ASSERT_TRUE(stream.ok());
  // Corrupt the second frame's payload in place.
  TimedStream broken(stream->descriptor(), stream->time_system());
  for (size_t i = 0; i < stream->size(); ++i) {
    StreamElement element = stream->at(i);
    if (i == 1) {
      element.data = Bytes(element.data.size(), 0x55);
    }
    ASSERT_TRUE(broken.Append(std::move(element)).ok());
  }
  EXPECT_FALSE(DecodeStream(broken).ok());
}

TEST(BridgeTest, UnknownTypeIsUnsupported) {
  MediaDescriptor desc;
  desc.type_name = "video/h264";
  desc.kind = MediaKind::kVideo;
  TimedStream stream(desc, TimeSystem(25));
  EXPECT_TRUE(DecodeStream(stream).status().IsUnsupported());
}

TEST(BridgeTest, RawVideoGeometryMismatchRejected) {
  MediaDescriptor desc;
  desc.type_name = "video/raw";
  desc.kind = MediaKind::kVideo;
  desc.attrs.SetRational("frame rate", Rational(25));
  desc.attrs.SetInt("frame width", 10);
  desc.attrs.SetInt("frame height", 10);
  TimedStream stream(desc, TimeSystem(25));
  ASSERT_TRUE(stream.AppendContiguous(Bytes(17, 0), 1).ok());  // Not 300 B.
  EXPECT_FALSE(DecodeStream(stream).ok());
}

TEST(BridgeTest, StoreOptionsSelectCodecs) {
  MemoryBlobStore store;
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(32, 24, 6, 2);

  StoreOptions raw;
  raw.video_codec = "raw";
  auto raw_interp = StoreValue(&store, MediaValue(video), "raw_clip", raw);
  ASSERT_TRUE(raw_interp.ok());
  auto raw_object = raw_interp->FindObject("raw_clip");
  ASSERT_TRUE(raw_object.ok());
  EXPECT_EQ((*raw_object)->descriptor.type_name, "video/raw");

  StoreOptions tjpeg;
  tjpeg.video_codec = "tjpeg";
  auto tjpeg_interp =
      StoreValue(&store, MediaValue(video), "tjpeg_clip", tjpeg);
  ASSERT_TRUE(tjpeg_interp.ok());
  auto tjpeg_object = tjpeg_interp->FindObject("tjpeg_clip");
  ASSERT_TRUE(tjpeg_object.ok());
  EXPECT_EQ((*tjpeg_object)->descriptor.type_name, "video/tjpeg");
  // Compression is real.
  EXPECT_LT((*tjpeg_object)->PayloadBytes(),
            (*raw_object)->PayloadBytes() / 3);

  StoreOptions bogus;
  bogus.video_codec = "divx";
  EXPECT_TRUE(StoreValue(&store, MediaValue(video), "x", bogus)
                  .status()
                  .IsInvalidArgument());
}

TEST(BridgeTest, TmpegForwardStreamDecodesViaBridge) {
  MemoryBlobStore store;
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(32, 24, 9, 4);
  StoreOptions options;
  options.video_codec = "tmpeg";
  options.key_interval = 3;
  auto interp = StoreValue(&store, MediaValue(video), "clip", options);
  ASSERT_TRUE(interp.ok());
  auto object = interp->FindObject("clip");
  ASSERT_TRUE(object.ok());
  // Frame kinds recorded per element.
  EXPECT_EQ(*(*object)->elements[0].descriptor.GetString("frame kind"),
            "key");
  EXPECT_EQ(*(*object)->elements[1].descriptor.GetString("frame kind"),
            "delta");
  auto stream = interp->Materialize(store, "clip");
  ASSERT_TRUE(stream.ok());
  auto value = DecodeStream(*stream);
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(std::get<VideoValue>(*value).frames.size(), 9u);
}

TEST(BridgeTest, EmptyAudioStoresAndDecodes) {
  MemoryBlobStore store;
  AudioBuffer empty;
  empty.sample_rate = 8000;
  empty.channels = 1;
  auto interp = StoreValue(&store, MediaValue(empty), "silence");
  ASSERT_TRUE(interp.ok());
  auto stream = interp->Materialize(store, "silence");
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(stream->empty());
  auto value = DecodeStream(*stream);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(std::get<AudioBuffer>(*value).samples.size(), 0u);
}

TEST(BridgeTest, StoreEmptyVideoFails) {
  MemoryBlobStore store;
  VideoValue empty;
  EXPECT_TRUE(StoreValue(&store, MediaValue(empty), "x")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>

#include <cmath>

#include "midi/midi.h"
#include "midi/synth.h"
#include "stream/category.h"

namespace tbm {
namespace {

MidiSequence SimpleMelody() {
  MidiSequence seq(480, 120.0);  // 480 PPQ at 120 BPM: 1 quarter = 0.5 s.
  EXPECT_TRUE(seq.AddNote(0, 480, 60).ok());     // C4.
  EXPECT_TRUE(seq.AddNote(480, 480, 64).ok());   // E4.
  EXPECT_TRUE(seq.AddNote(960, 960, 67).ok());   // G4, half note.
  return seq;
}

// ---------------------------------------------------------------------------
// Sequence structure

TEST(MidiTest, EventsKeptSorted) {
  MidiSequence seq(480, 120.0);
  ASSERT_TRUE(seq.AddNote(960, 480, 60).ok());
  ASSERT_TRUE(seq.AddNote(0, 480, 62).ok());  // Earlier note added later.
  const auto& events = seq.events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].tick, events[i].tick);
  }
  EXPECT_EQ(seq.LastTick(), 1440);
}

TEST(MidiTest, FieldValidation) {
  MidiSequence seq(480, 120.0);
  MidiEvent bad;
  bad.tick = -1;
  EXPECT_TRUE(seq.AddEvent(bad).IsInvalidArgument());
  bad.tick = 0;
  bad.note = 200;
  EXPECT_TRUE(seq.AddEvent(bad).IsInvalidArgument());
  EXPECT_TRUE(seq.AddNote(0, 0, 60).IsInvalidArgument());  // Zero duration.
}

TEST(MidiTest, DurationFollowsTempo) {
  MidiSequence seq = SimpleMelody();
  // Last tick 1920 = 4 quarters = 2 seconds at 120 BPM.
  EXPECT_DOUBLE_EQ(seq.DurationSeconds(), 2.0);
  EXPECT_EQ(seq.time_system().frequency(), Rational(480 * 120, 60));
}

TEST(MidiTest, SerializeRoundTrip) {
  MidiSequence seq = SimpleMelody();
  ASSERT_TRUE(seq.SetProgram(0, 4).ok());
  BinaryWriter writer;
  seq.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto restored = MidiSequence::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->division(), seq.division());
  EXPECT_EQ(restored->events(), seq.events());
}

// ---------------------------------------------------------------------------
// Stream views (paper §3.3 examples)

TEST(MidiTest, EventStreamIsEventBased) {
  MidiSequence seq = SimpleMelody();
  auto stream = seq.ToEventStream();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 6u);  // 3 notes -> 3 on + 3 off.
  StreamCategories cats = Classify(*stream);
  EXPECT_TRUE(cats.event_based);
  // Element descriptors carry the event kind -> heterogeneous.
  EXPECT_TRUE(cats.heterogeneous());
  // Stream validates against the music/midi type (event-based).
  EXPECT_TRUE(
      ValidateAgainstType(*stream, MediaTypeRegistry::Builtin()).ok());
}

TEST(MidiTest, NoteStreamShowsChordOverlap) {
  MidiSequence seq(480, 120.0);
  // A chord: three simultaneous notes (the paper's overlap example).
  ASSERT_TRUE(seq.AddNote(0, 960, 60).ok());
  ASSERT_TRUE(seq.AddNote(0, 960, 64).ok());
  ASSERT_TRUE(seq.AddNote(0, 960, 67).ok());
  ASSERT_TRUE(seq.AddNote(1000, 480, 72).ok());  // Then a gap, then a note.
  auto stream = seq.ToNoteStream();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 4u);
  StreamCategories cats = Classify(*stream);
  EXPECT_FALSE(cats.continuous);  // Overlaps + gap.
  EXPECT_FALSE(cats.event_based);
  EXPECT_EQ(stream->at(0).duration, 960);
}

TEST(MidiTest, EventStreamRoundTrip) {
  MidiSequence seq = SimpleMelody();
  auto stream = seq.ToEventStream();
  ASSERT_TRUE(stream.ok());
  auto restored = MidiSequence::FromEventStream(*stream);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->events(), seq.events());
  EXPECT_EQ(restored->division(), 480);
}

// ---------------------------------------------------------------------------
// Synthesis (the Table 1 type-changing derivation)

TEST(SynthTest, RendersAudioOfExpectedLength) {
  MidiSequence seq = SimpleMelody();
  SynthParams params;
  params.sample_rate = 22050;
  params.channels = 1;
  auto audio = Synthesize(seq, params);
  ASSERT_TRUE(audio.ok());
  EXPECT_EQ(audio->sample_rate, 22050);
  // ~2 seconds plus release tail.
  EXPECT_NEAR(audio->DurationSeconds(), 2.0, 0.3);
  EXPECT_GT(RmsAmplitude(*audio), 100.0);  // Audibly non-silent.
}

TEST(SynthTest, TempoParameterScalesDuration) {
  // Paper: tempo is a parameter of the MIDI-synthesis derivation.
  MidiSequence seq = SimpleMelody();
  SynthParams normal;
  normal.sample_rate = 8000;
  SynthParams fast = normal;
  fast.tempo_bpm = 240.0;  // Twice the sequence's 120 BPM.
  auto slow_audio = Synthesize(seq, normal);
  auto fast_audio = Synthesize(seq, fast);
  ASSERT_TRUE(slow_audio.ok() && fast_audio.ok());
  EXPECT_NEAR(slow_audio->DurationSeconds() / fast_audio->DurationSeconds(),
              2.0, 0.3);
}

TEST(SynthTest, InstrumentsSoundDifferent) {
  MidiSequence seq(480, 120.0);
  ASSERT_TRUE(seq.AddNote(0, 960, 69).ok());  // A4 = 440 Hz.
  SynthParams sine_params;
  sine_params.sample_rate = 8000;
  sine_params.default_instrument = Instrument::kSine;
  SynthParams square_params = sine_params;
  square_params.default_instrument = Instrument::kSquare;
  auto sine = Synthesize(seq, sine_params);
  auto square = Synthesize(seq, square_params);
  ASSERT_TRUE(sine.ok() && square.ok());
  EXPECT_NE(sine->samples, square->samples);
}

TEST(SynthTest, ProgramChangeSelectsInstrument) {
  MidiSequence with_program(480, 120.0);
  ASSERT_TRUE(with_program.SetProgram(0, 1).ok());  // Square.
  ASSERT_TRUE(with_program.AddNote(0, 960, 69).ok());
  MidiSequence without(480, 120.0);
  ASSERT_TRUE(without.AddNote(0, 960, 69).ok());
  SynthParams params;
  params.sample_rate = 8000;
  params.default_instrument = Instrument::kSine;
  auto a = Synthesize(with_program, params);
  auto b = Synthesize(without, params);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->samples, b->samples);
}

TEST(SynthTest, VelocityScalesAmplitude) {
  MidiSequence loud(480, 120.0), quiet(480, 120.0);
  ASSERT_TRUE(loud.AddNote(0, 960, 69, 127).ok());
  ASSERT_TRUE(quiet.AddNote(0, 960, 69, 32).ok());
  SynthParams params;
  params.sample_rate = 8000;
  auto la = Synthesize(loud, params);
  auto qa = Synthesize(quiet, params);
  ASSERT_TRUE(la.ok() && qa.ok());
  EXPECT_GT(RmsAmplitude(*la), RmsAmplitude(*qa) * 2);
}

TEST(SynthTest, PitchIsCorrect) {
  // Count zero crossings of a synthesized A4 sine: ≈ 880 per second.
  MidiSequence seq(480, 120.0);
  ASSERT_TRUE(seq.AddNote(0, 1920, 69, 127).ok());  // 2 s at 120 BPM.
  SynthParams params;
  params.sample_rate = 44100;
  params.channels = 1;
  params.attack_seconds = 0.0;
  auto audio = Synthesize(seq, params);
  ASSERT_TRUE(audio.ok());
  int64_t crossings = 0;
  int64_t frames = std::min<int64_t>(audio->FrameCount(), 44100);
  for (int64_t i = 1; i < frames; ++i) {
    if ((audio->samples[i - 1] < 0) != (audio->samples[i] < 0)) ++crossings;
  }
  EXPECT_NEAR(crossings, 880, 10);
}

TEST(SynthTest, RejectsBadFormat) {
  MidiSequence seq = SimpleMelody();
  SynthParams params;
  params.sample_rate = 0;
  EXPECT_TRUE(Synthesize(seq, params).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>

#include "stream/category.h"
#include "stream/timed_stream.h"

namespace tbm {
namespace {

MediaDescriptor PcmDescriptor() {
  MediaDescriptor desc;
  desc.type_name = "audio/pcm";
  desc.kind = MediaKind::kAudio;
  desc.attrs.SetInt("sample rate", 44100);
  desc.attrs.SetInt("sample size", 16);
  desc.attrs.SetInt("number of channels", 2);
  desc.attrs.SetString("encoding", "PCM");
  return desc;
}

Bytes Data(size_t n, uint8_t fill = 0) { return Bytes(n, fill); }

// ---------------------------------------------------------------------------
// Def. 3 invariants

TEST(TimedStreamTest, AppendEnforcesOrdering) {
  TimedStream stream(PcmDescriptor(), TimeSystem(44100));
  EXPECT_TRUE(stream.Append({Data(4), 10, 5, {}}).ok());
  EXPECT_TRUE(stream.Append({Data(4), 15, 5, {}}).ok());
  // Equal start is allowed (chords); earlier start is not.
  EXPECT_TRUE(stream.Append({Data(4), 15, 2, {}}).ok());
  EXPECT_TRUE(stream.Append({Data(4), 14, 1, {}}).IsInvalidArgument());
  EXPECT_EQ(stream.size(), 3u);
}

TEST(TimedStreamTest, NegativeDurationRejected) {
  TimedStream stream(PcmDescriptor(), TimeSystem(44100));
  EXPECT_TRUE(stream.Append({Data(4), 0, -1, {}}).IsInvalidArgument());
}

TEST(TimedStreamTest, AppendContiguousChainsStarts) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  ASSERT_TRUE(stream.AppendContiguous(Data(10), 4).ok());
  ASSERT_TRUE(stream.AppendContiguous(Data(10), 4).ok());
  ASSERT_TRUE(stream.AppendContiguous(Data(10), 4).ok());
  EXPECT_EQ(stream.at(0).start, 0);
  EXPECT_EQ(stream.at(1).start, 4);
  EXPECT_EQ(stream.at(2).start, 8);
  EXPECT_EQ(stream.EndTime(), 12);
}

TEST(TimedStreamTest, SpanAndDuration) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  ASSERT_TRUE(stream.Append({Data(1), 5, 10, {}}).ok());
  ASSERT_TRUE(stream.Append({Data(1), 20, 5, {}}).ok());
  EXPECT_EQ(stream.StartTime(), 5);
  EXPECT_EQ(stream.EndTime(), 25);
  EXPECT_EQ(stream.DurationTicks(), 20);
  EXPECT_EQ(stream.DurationSeconds(), Rational(20, 25));
}

TEST(TimedStreamTest, EndTimeWithOverlapsIsMaxEnd) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  ASSERT_TRUE(stream.Append({Data(1), 0, 100, {}}).ok());  // Long element.
  ASSERT_TRUE(stream.Append({Data(1), 10, 5, {}}).ok());   // Inside it.
  EXPECT_EQ(stream.EndTime(), 100);
}

TEST(TimedStreamTest, TotalBytesAndRate) {
  TimedStream stream(PcmDescriptor(), TimeSystem(1));
  ASSERT_TRUE(stream.AppendContiguous(Data(1000), 1).ok());
  ASSERT_TRUE(stream.AppendContiguous(Data(1000), 1).ok());
  EXPECT_EQ(stream.TotalBytes(), 2000u);
  EXPECT_DOUBLE_EQ(stream.MeanDataRate(), 1000.0);  // 2000 B over 2 s.
}

TEST(TimedStreamTest, EmptyStream) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  EXPECT_TRUE(stream.empty());
  EXPECT_EQ(stream.EndTime(), 0);
  EXPECT_EQ(stream.MeanDataRate(), 0.0);
  EXPECT_TRUE(stream.ElementAtTime(0).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Lookup

TEST(TimedStreamTest, ElementAtTimeContinuous) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stream.AppendContiguous(Data(1), 4).ok());
  }
  EXPECT_EQ(*stream.ElementAtTime(0), 0u);
  EXPECT_EQ(*stream.ElementAtTime(3), 0u);
  EXPECT_EQ(*stream.ElementAtTime(4), 1u);
  EXPECT_EQ(*stream.ElementAtTime(39), 9u);
  EXPECT_TRUE(stream.ElementAtTime(40).status().IsNotFound());
  EXPECT_TRUE(stream.ElementAtTime(-1).status().IsNotFound());
}

TEST(TimedStreamTest, ElementAtTimeWithGaps) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  ASSERT_TRUE(stream.Append({Data(1), 0, 5, {}}).ok());
  ASSERT_TRUE(stream.Append({Data(1), 10, 5, {}}).ok());  // Gap at [5,10).
  EXPECT_TRUE(stream.ElementAtTime(4).ok());
  EXPECT_TRUE(stream.ElementAtTime(7).status().IsNotFound());
  EXPECT_EQ(*stream.ElementAtTime(10), 1u);
}

TEST(TimedStreamTest, ElementAtTimeWithOverlaps) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  ASSERT_TRUE(stream.Append({Data(1), 0, 100, {}}).ok());
  ASSERT_TRUE(stream.Append({Data(1), 10, 5, {}}).ok());
  ASSERT_TRUE(stream.Append({Data(1), 50, 5, {}}).ok());
  // Time 60: only the long element covers it; scan must reach back.
  EXPECT_EQ(*stream.ElementAtTime(60), 0u);
  // Time 12: the latest-starting (most specific) match wins.
  EXPECT_EQ(*stream.ElementAtTime(12), 1u);
  // Time 52: element 2 starts latest and contains it.
  EXPECT_EQ(*stream.ElementAtTime(52), 2u);
}

TEST(TimedStreamTest, EventLookup) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  ASSERT_TRUE(stream.AppendEvent(Data(1), 5).ok());
  ASSERT_TRUE(stream.AppendEvent(Data(1), 9).ok());
  EXPECT_EQ(*stream.ElementAtTime(5), 0u);
  EXPECT_EQ(*stream.ElementAtTime(9), 1u);
  EXPECT_TRUE(stream.ElementAtTime(6).status().IsNotFound());
}

TEST(TimedStreamTest, ElementsInSpan) {
  TimedStream stream(PcmDescriptor(), TimeSystem(25));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stream.AppendContiguous(Data(1), 10).ok());
  }
  auto hits = stream.ElementsInSpan(TickSpan{25, 30});  // [25, 55).
  EXPECT_EQ(hits, (std::vector<size_t>{2, 3, 4, 5}));
  EXPECT_TRUE(stream.ElementsInSpan(TickSpan{100, 10}).empty());
  // Events in span.
  TimedStream events(PcmDescriptor(), TimeSystem(25));
  ASSERT_TRUE(events.AppendEvent(Data(1), 5).ok());
  ASSERT_TRUE(events.AppendEvent(Data(1), 15).ok());
  EXPECT_EQ(events.ElementsInSpan(TickSpan{0, 10}).size(), 1u);
}

// ---------------------------------------------------------------------------
// Figure 1 categories

struct CategoryCase {
  const char* name;
  // Elements: (start, duration, size, descriptor tag).
  std::vector<std::tuple<int64_t, int64_t, size_t, int>> elements;
  const char* expected;
  bool continuous;
  bool event_based;
  bool homogeneous;
};

class CategoryTest : public ::testing::TestWithParam<CategoryCase> {};

TEST_P(CategoryTest, ClassifiesAsExpected) {
  const CategoryCase& c = GetParam();
  TimedStream stream(PcmDescriptor(), TimeSystem(100));
  for (const auto& [start, duration, size, tag] : c.elements) {
    StreamElement e;
    e.data = Data(size);
    e.start = start;
    e.duration = duration;
    if (tag != 0) e.descriptor.SetInt("variant", tag);
    ASSERT_TRUE(stream.Append(std::move(e)).ok());
  }
  StreamCategories cats = Classify(stream);
  EXPECT_EQ(cats.continuous, c.continuous) << c.name;
  EXPECT_EQ(cats.event_based, c.event_based) << c.name;
  EXPECT_EQ(cats.homogeneous, c.homogeneous) << c.name;
  EXPECT_EQ(cats.ToString(), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Figure1, CategoryTest,
    ::testing::Values(
        // Uniform: continuous, constant size and duration (raw audio).
        CategoryCase{"uniform",
                     {{0, 1, 4, 0}, {1, 1, 4, 0}, {2, 1, 4, 0}},
                     "homogeneous, uniform",
                     true,
                     false,
                     true},
        // Constant frequency, varying size (compressed video).
        CategoryCase{"constant_frequency",
                     {{0, 4, 100, 0}, {4, 4, 60, 0}, {8, 4, 80, 0}},
                     "homogeneous, constant frequency",
                     true,
                     false,
                     true},
        // Constant data rate: size proportional to duration.
        CategoryCase{"constant_data_rate",
                     {{0, 2, 20, 0}, {2, 4, 40, 0}, {6, 1, 10, 0}},
                     "homogeneous, constant data rate",
                     true,
                     false,
                     true},
        // Continuous but neither constant frequency nor data rate.
        CategoryCase{"continuous_only",
                     {{0, 2, 100, 0}, {2, 5, 10, 0}, {7, 1, 40, 0}},
                     "homogeneous, continuous",
                     true,
                     false,
                     true},
        // Non-continuous: gap between elements (animation at rest).
        CategoryCase{"gap",
                     {{0, 2, 10, 0}, {5, 2, 10, 0}},
                     "homogeneous, non-continuous",
                     false,
                     false,
                     true},
        // Non-continuous: overlap (a chord).
        CategoryCase{"overlap",
                     {{0, 4, 10, 0}, {2, 4, 10, 0}},
                     "homogeneous, non-continuous",
                     false,
                     false,
                     true},
        // Event-based: durationless MIDI events.
        CategoryCase{"events",
                     {{0, 0, 3, 0}, {5, 0, 3, 0}, {9, 0, 3, 0}},
                     "homogeneous, event-based",
                     false,
                     true,
                     true},
        // Heterogeneous: element descriptors vary (ADPCM parameters).
        CategoryCase{"heterogeneous",
                     {{0, 1, 4, 1}, {1, 1, 4, 2}, {2, 1, 4, 3}},
                     "heterogeneous, uniform",
                     true,
                     false,
                     false}));

TEST(CategoryTest, SingleEventIsNotContinuousCategory) {
  TimedStream stream(PcmDescriptor(), TimeSystem(100));
  ASSERT_TRUE(stream.AppendEvent(Data(1), 0).ok());
  StreamCategories cats = Classify(stream);
  EXPECT_TRUE(cats.event_based);
  EXPECT_FALSE(cats.uniform);  // d = 0 excludes the continuous subtypes.
  EXPECT_FALSE(cats.constant_frequency);
}

TEST(CategoryTest, EmptyStreamVacuous) {
  TimedStream stream(PcmDescriptor(), TimeSystem(100));
  StreamCategories cats = Classify(stream);
  EXPECT_TRUE(cats.homogeneous);
  EXPECT_TRUE(cats.continuous);
  EXPECT_TRUE(cats.uniform);
  EXPECT_TRUE(cats.constant_frequency);
  EXPECT_TRUE(cats.constant_data_rate);
  EXPECT_FALSE(cats.event_based);
  EXPECT_EQ(cats.ToString(), "homogeneous, uniform");
}

TEST(CategoryTest, SingleElementIsUniform) {
  // One timed element: every universally-quantified predicate holds,
  // and d != 0 keeps the continuous subtypes (unlike a single event).
  TimedStream stream(PcmDescriptor(), TimeSystem(100));
  StreamElement e;
  e.data = Data(4);
  e.start = 7;  // A nonzero start must not affect continuity.
  e.duration = 2;
  ASSERT_TRUE(stream.Append(std::move(e)).ok());
  StreamCategories cats = Classify(stream);
  EXPECT_TRUE(cats.homogeneous);
  EXPECT_TRUE(cats.continuous);
  EXPECT_TRUE(cats.uniform);
  EXPECT_TRUE(cats.constant_frequency);
  EXPECT_TRUE(cats.constant_data_rate);
  EXPECT_FALSE(cats.event_based);
  EXPECT_EQ(cats.ToString(), "homogeneous, uniform");
}

// ---------------------------------------------------------------------------
// Type constraints (paper §3.3)

TEST(ValidateTest, CdAudioStreamSatisfiesItsType) {
  TimedStream stream(PcmDescriptor(), TimeSystem(44100));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(stream.AppendContiguous(Data(4), 1).ok());
  }
  EXPECT_TRUE(
      ValidateAgainstType(stream, MediaTypeRegistry::Builtin()).ok());
}

TEST(ValidateTest, WrongTimeSystemRejected) {
  TimedStream stream(PcmDescriptor(), TimeSystem(48000));
  ASSERT_TRUE(stream.AppendContiguous(Data(4), 1).ok());
  // audio/pcm imposes no fixed frequency in the registry, so this
  // passes; but a CD-audio-constrained variant is testable through
  // element durations below. Use duration violation instead:
  ASSERT_TRUE(stream.AppendContiguous(Data(4), 2).ok());  // d != 1.
  EXPECT_TRUE(ValidateAgainstType(stream, MediaTypeRegistry::Builtin())
                  .IsInvalidArgument());
}

TEST(ValidateTest, NonContinuousPcmRejected) {
  TimedStream stream(PcmDescriptor(), TimeSystem(44100));
  ASSERT_TRUE(stream.Append({Data(4), 0, 1, {}}).ok());
  ASSERT_TRUE(stream.Append({Data(4), 5, 1, {}}).ok());  // Gap.
  EXPECT_TRUE(ValidateAgainstType(stream, MediaTypeRegistry::Builtin())
                  .IsInvalidArgument());
}

TEST(ValidateTest, UnknownTypeRejected) {
  MediaDescriptor desc;
  desc.type_name = "video/unknown";
  desc.kind = MediaKind::kVideo;
  TimedStream stream(desc, TimeSystem(25));
  EXPECT_TRUE(ValidateAgainstType(stream, MediaTypeRegistry::Builtin())
                  .IsNotFound());
}

TEST(ValidateTest, ElementDescriptorSpecEnforced) {
  MediaDescriptor desc;
  desc.type_name = "audio/adpcm";
  desc.kind = MediaKind::kAudio;
  desc.attrs.SetInt("sample rate", 44100);
  desc.attrs.SetInt("number of channels", 1);
  desc.attrs.SetInt("block size", 512);
  desc.attrs.SetString("encoding", "IMA ADPCM");
  TimedStream stream(desc, TimeSystem(44100));
  StreamElement e;
  e.data = Data(256);
  e.start = 0;
  e.duration = 512;
  // Missing the required "predictor"/"step index" element attributes.
  ASSERT_TRUE(stream.Append(std::move(e)).ok());
  EXPECT_TRUE(ValidateAgainstType(stream, MediaTypeRegistry::Builtin())
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>

#include "base/crc32.h"
#include "base/io.h"
#include "base/macros.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm {
namespace {

// ---------------------------------------------------------------------------
// Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("thing is missing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "thing is missing");
  EXPECT_EQ(s.ToString(), "NotFound: thing is missing");
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::Corruption("bad bytes");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad bytes");
  // Original unaffected by copying.
  EXPECT_TRUE(s.IsCorruption());
}

TEST(StatusTest, AssignmentReplacesState) {
  Status s = Status::IOError("disk");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
  s = Status::OutOfRange("index");
  EXPECT_TRUE(s.IsOutOfRange());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::InvalidArgument("negative");
  Status wrapped = s.WithContext("element 3");
  EXPECT_TRUE(wrapped.IsInvalidArgument());
  EXPECT_EQ(wrapped.message(), "element 3: negative");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, AllNamedConstructorsProduceTheirCode) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::Unsupported("").IsUnsupported());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

// ---------------------------------------------------------------------------
// Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = *std::move(r);
  EXPECT_EQ(moved, "payload");
}

namespace macro_helpers {
Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}
Status UseValue(int v, int* out) {
  TBM_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}
Status Chain(int v, int* out) {
  TBM_RETURN_IF_ERROR(UseValue(v, out));
  return Status::OK();
}
}  // namespace macro_helpers

TEST(MacroTest, AssignOrReturnPassesValue) {
  int out = 0;
  EXPECT_TRUE(macro_helpers::Chain(21, &out).ok());
  EXPECT_EQ(out, 42);
}

TEST(MacroTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = macro_helpers::Chain(-1, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(out, 0);
}

// ---------------------------------------------------------------------------
// Binary IO

TEST(BinaryIoTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-7);
  w.WriteI64(-1234567890123LL);
  w.WriteF64(3.25);

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0xBEEF);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadI32(), -7);
  EXPECT_EQ(*r.ReadI64(), -1234567890123LL);
  EXPECT_EQ(*r.ReadF64(), 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, StringsAndBytes) {
  BinaryWriter w;
  w.WriteString("hello");
  w.WriteString("");
  Bytes blob = {1, 2, 3};
  w.WriteBytes(blob);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadBytes(), blob);
}

TEST(BinaryIoTest, TruncatedReadsAreCorruption) {
  BinaryWriter w;
  w.WriteU32(5);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.ReadU64().status().IsCorruption());
  BinaryReader r2(w.buffer());
  EXPECT_TRUE(r2.ReadU32().ok());
  EXPECT_TRUE(r2.ReadU8().status().IsCorruption());
}

TEST(BinaryIoTest, TruncatedStringIsCorruption) {
  BinaryWriter w;
  w.WriteVarU64(100);  // Claims 100 bytes follow; none do.
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.ReadString().status().IsCorruption());
}

// Property: varints round-trip across magnitudes and signs.
class VarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(VarintRoundTrip, Signed) {
  BinaryWriter w;
  w.WriteVarI64(GetParam());
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadVarI64(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

TEST_P(VarintRoundTrip, UnsignedOfAbs) {
  uint64_t v = static_cast<uint64_t>(GetParam());
  BinaryWriter w;
  w.WriteVarU64(v);
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadVarU64(), v);
}

INSTANTIATE_TEST_SUITE_P(
    Magnitudes, VarintRoundTrip,
    ::testing::Values(0, 1, -1, 127, 128, -128, 300, -300, 1 << 20,
                      -(1 << 20), 1LL << 40, -(1LL << 40), INT64_MAX,
                      INT64_MIN + 1, INT64_MIN));

TEST(BinaryIoTest, SmallVarintsAreOneByte) {
  BinaryWriter w;
  w.WriteVarU64(127);
  EXPECT_EQ(w.size(), 1u);
  w.WriteVarU64(128);
  EXPECT_EQ(w.size(), 3u);  // Second varint takes two bytes.
}

TEST(BinaryIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/tbm_io_test.bin";
  Bytes data = {9, 8, 7, 6, 5};
  ASSERT_TRUE(WriteFile(path, data).ok());
  auto read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ReadFileBytes("/nonexistent/dir/file.bin").status().IsIOError());
}

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32Test, KnownVectors) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* digits = "123456789";
  Bytes data(digits, digits + 9);
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
  EXPECT_EQ(Crc32(Bytes{}), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<uint8_t>(i * 7));
  uint32_t crc = kCrc32Init;
  crc = Crc32Extend(crc, ByteSpan(data.data(), 400));
  crc = Crc32Extend(crc, ByteSpan(data.data() + 400, 600));
  EXPECT_EQ(Crc32Finish(crc), Crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Bytes data(64, 0x55);
  uint32_t original = Crc32(data);
  data[13] ^= 0x01;
  EXPECT_NE(Crc32(data), original);
}

// ---------------------------------------------------------------------------
// Byte helpers

TEST(BytesTest, ByteRangeOperations) {
  ByteRange a{10, 20};
  EXPECT_EQ(a.end(), 30u);
  EXPECT_TRUE(a.Contains(ByteRange{15, 5}));
  EXPECT_FALSE(a.Contains(ByteRange{15, 50}));
  EXPECT_TRUE(a.Overlaps(ByteRange{25, 10}));
  EXPECT_FALSE(a.Overlaps(ByteRange{30, 10}));  // Half-open: [30,..) touches.
  EXPECT_TRUE((ByteRange{0, 0}).empty());
}

TEST(BytesTest, HumanFormatting) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00 MiB");
  EXPECT_EQ(HumanRate(500.0), "500.00 B/s");
  EXPECT_EQ(HumanRate(500000.0), "500.00 kB/s");
}

}  // namespace
}  // namespace tbm

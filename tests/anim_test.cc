#include <gtest/gtest.h>

#include "anim/animation.h"
#include "stream/category.h"

namespace tbm {
namespace {

AnimationScene BouncingBall() {
  AnimationScene scene(160, 120, Rational(25));
  SceneObject ball;
  ball.id = 1;
  ball.shape = ShapeKind::kCircle;
  ball.r = 255;
  ball.g = 40;
  ball.b = 40;
  ball.size = 10;
  ball.x = 20;
  ball.y = 20;
  EXPECT_TRUE(scene.AddObject(ball).ok());
  // Move right over frames [0, 25), rest during [25, 50), drop down
  // over [50, 75).
  EXPECT_TRUE(scene.AddMovement({0, 25, 1, 120, 20}).ok());
  EXPECT_TRUE(scene.AddMovement({50, 25, 1, 120, 100}).ok());
  return scene;
}

TEST(AnimTest, SceneValidation) {
  AnimationScene scene(100, 100, Rational(25));
  SceneObject object;
  object.id = 1;
  ASSERT_TRUE(scene.AddObject(object).ok());
  EXPECT_TRUE(scene.AddObject(object).IsAlreadyExists());
  EXPECT_TRUE(scene.AddMovement({0, 10, 99, 0, 0}).IsNotFound());
  EXPECT_TRUE(scene.AddMovement({0, 0, 1, 0, 0}).IsInvalidArgument());
}

TEST(AnimTest, PerObjectMovementsMustNotOverlap) {
  AnimationScene scene = BouncingBall();
  EXPECT_TRUE(scene.AddMovement({60, 10, 1, 0, 0}).IsInvalidArgument());
  // A second object may move during the first's movements.
  SceneObject box;
  box.id = 2;
  box.shape = ShapeKind::kRectangle;
  ASSERT_TRUE(scene.AddObject(box).ok());
  EXPECT_TRUE(scene.AddMovement({60, 10, 2, 50, 50}).ok());
}

TEST(AnimTest, PositionInterpolatesAndRests) {
  AnimationScene scene = BouncingBall();
  // Start of first movement.
  auto pos = scene.PositionAt(1, 0);
  ASSERT_TRUE(pos.ok());
  EXPECT_NEAR(pos->first, 20, 1e-9);
  // Halfway through the first movement: x halfway 20 -> 120.
  pos = scene.PositionAt(1, 12);
  ASSERT_TRUE(pos.ok());
  EXPECT_NEAR(pos->first, 20 + (120 - 20) * 12.0 / 25.0, 1e-9);
  // At rest between movements: parked at the first movement's target.
  pos = scene.PositionAt(1, 40);
  ASSERT_TRUE(pos.ok());
  EXPECT_NEAR(pos->first, 120, 1e-9);
  EXPECT_NEAR(pos->second, 20, 1e-9);
  // After everything: final position.
  pos = scene.PositionAt(1, 1000);
  ASSERT_TRUE(pos.ok());
  EXPECT_NEAR(pos->second, 100, 1e-9);
  EXPECT_TRUE(scene.PositionAt(99, 0).status().IsNotFound());
}

TEST(AnimTest, RenderPutsObjectWhereItIs) {
  AnimationScene scene = BouncingBall();
  auto frame = scene.RenderFrame(0);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->Validate().ok());
  // Ball center at (20, 20) should be red.
  const uint8_t* px =
      frame->data.data() + 3 * (20 * frame->width + 20);
  EXPECT_EQ(px[0], 255);
  EXPECT_EQ(px[1], 40);
  // A far corner is background.
  const uint8_t* bg = frame->data.data() + 3 * (110 * frame->width + 150);
  EXPECT_NE(bg[0], 255);
}

TEST(AnimTest, RenderedClipMoves) {
  AnimationScene scene = BouncingBall();
  auto clip = scene.RenderClip(30);
  ASSERT_TRUE(clip.ok());
  EXPECT_EQ(clip->size(), 30u);
  EXPECT_NE((*clip)[0].data, (*clip)[20].data);  // Motion happened.
}

TEST(AnimTest, MovementStreamIsNonContinuous) {
  AnimationScene scene = BouncingBall();
  auto stream = scene.ToTimedStream();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 2u);
  StreamCategories cats = Classify(*stream);
  // The rest period [25, 50) is a gap: non-continuous, exactly the
  // paper's animation example.
  EXPECT_TRUE(cats.non_continuous());
  EXPECT_FALSE(cats.event_based);
}

TEST(AnimTest, SceneStreamRoundTrip) {
  AnimationScene scene = BouncingBall();
  auto stream = scene.ToSceneStream();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 1u);
  auto restored = AnimationScene::FromSceneStream(*stream);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->objects().size(), 1u);
  EXPECT_EQ(restored->movements().size(), 2u);
  EXPECT_EQ(restored->width(), 160);
  // Rendering the restored scene matches the original.
  auto a = scene.RenderFrame(12);
  auto b = restored->RenderFrame(12);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->data, b->data);
}

TEST(AnimTest, SerializeRejectsCorruption) {
  AnimationScene scene = BouncingBall();
  BinaryWriter writer;
  scene.Serialize(&writer);
  Bytes bytes = writer.TakeBuffer();
  bytes.resize(bytes.size() / 2);  // Truncate.
  BinaryReader reader(bytes);
  EXPECT_FALSE(AnimationScene::Deserialize(&reader).ok());
}

TEST(AnimTest, EndTickCoversAllMovements) {
  AnimationScene scene = BouncingBall();
  EXPECT_EQ(scene.EndTick(), 75);
}

}  // namespace
}  // namespace tbm

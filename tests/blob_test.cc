#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <functional>

#include "blob/cas_store.h"
#include "blob/file_store.h"
#include "blob/memory_store.h"
#include "blob/paged_store.h"

namespace tbm {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 0) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>((i * 31 + seed) & 0xFF);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Contract suite run against every BlobStore implementation. The
// streaming push API is the only write surface, so the whole contract
// — including the content-addressed store — runs through it.

enum class StoreKind { kMemory, kPagedMemory, kPagedSmallPages, kFile, kCas };

std::unique_ptr<BlobStore> MakeStore(StoreKind kind,
                                     const std::string& scratch) {
  switch (kind) {
    case StoreKind::kMemory:
      return std::make_unique<MemoryBlobStore>();
    case StoreKind::kPagedMemory:
      return std::make_unique<PagedBlobStore>(
          std::make_unique<MemoryPageDevice>(4096));
    case StoreKind::kPagedSmallPages:
      // Tiny pages stress chunking: payload is 64 - 8 = 56 bytes.
      return std::make_unique<PagedBlobStore>(
          std::make_unique<MemoryPageDevice>(64));
    case StoreKind::kFile: {
      auto store = FileBlobStore::Open(scratch);
      EXPECT_TRUE(store.ok()) << store.status();
      return std::move(*store);
    }
    case StoreKind::kCas: {
      auto store = CasBlobStore::Open(scratch);
      EXPECT_TRUE(store.ok()) << store.status();
      return std::move(*store);
    }
  }
  return nullptr;
}

class BlobStoreContract : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    // Keyed by pid as well: ctest runs each test in its own process,
    // so a per-process counter alone collides under `ctest -j`.
    scratch_ = ::testing::TempDir() + "/blobstore_" +
               std::to_string(static_cast<long>(::getpid())) + "_" +
               std::to_string(static_cast<int>(GetParam())) + "_" +
               std::to_string(counter_++);
    std::filesystem::remove_all(scratch_);
    store_ = MakeStore(GetParam(), scratch_);
  }

  static int counter_;
  std::string scratch_;
  std::unique_ptr<BlobStore> store_;
};

int BlobStoreContract::counter_ = 0;

TEST_P(BlobStoreContract, PushRead) {
  Bytes data = Pattern(1000);
  auto id = store_->PushAll(data);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*store_->Size(*id), 1000u);
  EXPECT_EQ(*store_->ReadAll(*id), data);
}

TEST_P(BlobStoreContract, ChunkedPushAccumulates) {
  Bytes a = Pattern(300, 1), b = Pattern(500, 2), c = Pattern(7, 3);
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE((*push)->Push(a).ok());
  ASSERT_TRUE((*push)->Push(b).ok());
  ASSERT_TRUE((*push)->Push(c).ok());
  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok());
  Bytes expected = a;
  expected.insert(expected.end(), b.begin(), b.end());
  expected.insert(expected.end(), c.begin(), c.end());
  EXPECT_EQ(*store_->ReadAll(*id), expected);
}

TEST_P(BlobStoreContract, RangedReads) {
  Bytes data = Pattern(5000);
  auto id = store_->PushAll(data);
  ASSERT_TRUE(id.ok());
  // Various offsets including page-straddling ones.
  for (auto [offset, length] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 1}, {0, 5000}, {4999, 1}, {100, 200}, {50, 70}, {4000, 1000}}) {
    auto read = store_->Read(*id, ByteRange{offset, length});
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(*read, Bytes(data.begin() + offset,
                           data.begin() + offset + length));
  }
}

TEST_P(BlobStoreContract, EmptyRead) {
  auto id = store_->PushAll(Pattern(10));
  ASSERT_TRUE(id.ok());
  auto read = store_->Read(*id, ByteRange{5, 0});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST_P(BlobStoreContract, ReadPastEndIsOutOfRange) {
  auto id = store_->PushAll(Pattern(100));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store_->Read(*id, ByteRange{50, 51}).status().IsOutOfRange());
  EXPECT_TRUE(store_->Read(*id, ByteRange{101, 1}).status().IsOutOfRange());
}

TEST_P(BlobStoreContract, MissingBlobIsNotFound) {
  EXPECT_TRUE(store_->Read(999, ByteRange{0, 1}).status().IsNotFound());
  EXPECT_TRUE(store_->Size(999).status().IsNotFound());
  EXPECT_TRUE(store_->Delete(999).IsNotFound());
  EXPECT_FALSE(store_->Exists(999));
}

TEST_P(BlobStoreContract, DeleteRemoves) {
  auto id = store_->PushAll(Pattern(100));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->Delete(*id).ok());
  EXPECT_FALSE(store_->Exists(*id));
  EXPECT_TRUE(store_->ReadAll(*id).status().IsNotFound());
}

TEST_P(BlobStoreContract, ListIsAscendingLiveIds) {
  // Distinct content so the content-addressed store assigns three
  // distinct ids too.
  auto a = store_->PushAll(Pattern(32, 1));
  auto b = store_->PushAll(Pattern(32, 2));
  auto c = store_->PushAll(Pattern(32, 3));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(store_->Delete(*b).ok());
  std::vector<BlobId> expected = {*a, *c};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(store_->List(), expected);
}

TEST_P(BlobStoreContract, ManyBlobsIndependent) {
  std::vector<BlobId> ids;
  for (int i = 0; i < 20; ++i) {
    auto id = store_->PushAll(Pattern(100 + i * 13, i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*store_->ReadAll(ids[i]), Pattern(100 + i * 13, i));
  }
}

TEST_P(BlobStoreContract, StreamingPushRoundTrip) {
  Bytes data = Pattern(10'000, 1);
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok()) << push.status();
  EXPECT_EQ((*push)->bytes_pushed(), 0u);
  // Uneven chunk sizes straddle page and hash-block boundaries.
  size_t offset = 0;
  for (size_t chunk : {1ul, 55ul, 56ul, 57ul, 4096ul, 5735ul}) {
    ASSERT_TRUE((*push)->Push(ByteSpan(data.data() + offset, chunk)).ok());
    offset += chunk;
  }
  ASSERT_EQ(offset, data.size());
  EXPECT_EQ((*push)->bytes_pushed(), data.size());

  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_TRUE(store_->Exists(*id));
  EXPECT_EQ(*store_->Size(*id), data.size());
  EXPECT_EQ(*store_->ReadAll(*id), data);
}

TEST_P(BlobStoreContract, EmptyPush) {
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok());
  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*store_->Size(*id), 0u);
}

TEST_P(BlobStoreContract, BlobInvisibleUntilFinish) {
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE((*push)->Push(Pattern(500, 3)).ok());
  // Nothing published yet: the store's view is unchanged mid-push.
  EXPECT_TRUE(store_->List().empty());
  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store_->List(), std::vector<BlobId>{*id});
}

TEST_P(BlobStoreContract, AbortLeavesNoTrace) {
  auto anchor = store_->PushAll(Pattern(100, 4));
  ASSERT_TRUE(anchor.ok());
  auto before = store_->List();

  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE((*push)->Push(Pattern(1000, 5)).ok());
  EXPECT_TRUE((*push)->Abort().ok());
  EXPECT_TRUE((*push)->Abort().ok());  // Idempotent.
  EXPECT_EQ(store_->List(), before);

  // A handle dropped without Finish aborts implicitly.
  {
    auto dropped = store_->StartPush();
    ASSERT_TRUE(dropped.ok());
    ASSERT_TRUE((*dropped)->Push(Pattern(50, 6)).ok());
  }
  EXPECT_EQ(store_->List(), before);
}

TEST_P(BlobStoreContract, HandleStateMachine) {
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE((*push)->Push(Pattern(10)).ok());
  ASSERT_TRUE((*push)->Finish().ok());
  EXPECT_TRUE((*push)->Push(Pattern(1)).IsFailedPrecondition());
  EXPECT_TRUE((*push)->Finish().status().IsFailedPrecondition());

  auto aborted = store_->StartPush();
  ASSERT_TRUE(aborted.ok());
  ASSERT_TRUE((*aborted)->Abort().ok());
  EXPECT_TRUE((*aborted)->Push(Pattern(1)).IsFailedPrecondition());
  EXPECT_TRUE((*aborted)->Finish().status().IsFailedPrecondition());
}

TEST_P(BlobStoreContract, ListIsAscendingAfterPushAndDelete) {
  // List() returns live ids in ascending order for every store; the
  // conformance test pushes distinct content so the CAS store assigns
  // distinct ids too.
  std::vector<BlobId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = store_->PushAll(Pattern(64 + i, static_cast<uint8_t>(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(store_->Delete(ids[2]).ok());
  ASSERT_TRUE(store_->Delete(ids[5]).ok());
  ids.erase(ids.begin() + 5);
  ids.erase(ids.begin() + 2);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(store_->List(), ids);
  // Strictly increasing (no duplicates).
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end(),
                                 std::greater_equal<BlobId>()) == ids.end());
}

INSTANTIATE_TEST_SUITE_P(AllStores, BlobStoreContract,
                         ::testing::Values(StoreKind::kMemory,
                                           StoreKind::kPagedMemory,
                                           StoreKind::kPagedSmallPages,
                                           StoreKind::kFile,
                                           StoreKind::kCas));

// ---------------------------------------------------------------------------
// PagedBlobStore specifics

TEST(PagedStoreTest, ReusesFreedPages) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(256));
  auto a = store.PushAll(Pattern(2000));
  ASSERT_TRUE(a.ok());
  uint64_t pages_before = store.Stats().physical_bytes;
  ASSERT_TRUE(store.Delete(*a).ok());
  auto b = store.PushAll(Pattern(2000));
  ASSERT_TRUE(b.ok());
  // No growth: freed pages were reused.
  EXPECT_EQ(store.Stats().physical_bytes, pages_before);
  EXPECT_EQ(*store.ReadAll(*b), Pattern(2000));
}

TEST(PagedStoreTest, InterleavedPushesFragment) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(128));
  // Two pushes in flight at once: pages are staged as each fills, so
  // alternating full-page chunks interleave the blobs' page chains.
  auto a = store.StartPush();
  auto b = store.StartPush();
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*a)->Push(Pattern(120, 1)).ok());
    ASSERT_TRUE((*b)->Push(Pattern(120, 2)).ok());
  }
  auto id_a = (*a)->Finish();
  auto id_b = (*b)->Finish();
  ASSERT_TRUE(id_a.ok() && id_b.ok());
  auto frag_a = store.Fragmentation(*id_a);
  ASSERT_TRUE(frag_a.ok());
  EXPECT_GT(*frag_a, 0.5);  // Heavily fragmented.
  // Data still correct despite fragmentation.
  auto all_a = store.ReadAll(*id_a);
  ASSERT_TRUE(all_a.ok());
  EXPECT_EQ(all_a->size(), 50u * 120u);
}

TEST(PagedStoreTest, SingleBlobIsContiguous) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(128));
  auto a = store.PushAll(Pattern(5000));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*store.Fragmentation(*a), 0.0);
}

TEST(PagedStoreTest, DetectsCorruptedPage) {
  auto device = std::make_unique<MemoryPageDevice>(256);
  MemoryPageDevice* raw_device = device.get();
  PagedBlobStore store(std::move(device));
  auto id = store.PushAll(Pattern(1000));
  ASSERT_TRUE(id.ok());

  // Flip a byte in page 1's payload behind the store's back.
  Bytes page(256);
  ASSERT_TRUE(raw_device->ReadPage(1, page.data()).ok());
  page[100] ^= 0xFF;
  ASSERT_TRUE(raw_device->WritePage(1, page.data()).ok());

  EXPECT_TRUE(store.ReadAll(*id).status().IsCorruption());
  // Page 0 is still readable.
  EXPECT_TRUE(store.Read(*id, ByteRange{0, 100}).ok());
}

TEST(PagedStoreTest, StatsAccounting) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(4096));
  auto id = store.PushAll(Pattern(10000));
  ASSERT_TRUE(id.ok());
  BlobStoreStats stats = store.Stats();
  EXPECT_EQ(stats.blob_count, 1u);
  EXPECT_EQ(stats.logical_bytes, 10000u);
  EXPECT_GE(stats.physical_bytes, stats.logical_bytes);
}

TEST(PagedStoreTest, DefragmentRestoresContiguity) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(128));
  auto a = store.StartPush();
  auto b = store.StartPush();
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*a)->Push(Pattern(120, 1)).ok());
    ASSERT_TRUE((*b)->Push(Pattern(120, 2)).ok());
  }
  auto id_a = (*a)->Finish();
  auto id_b = (*b)->Finish();
  ASSERT_TRUE(id_a.ok() && id_b.ok());
  Bytes before = store.ReadAll(*id_a)->MutableCopy();
  ASSERT_GT(*store.Fragmentation(*id_a), 0.5);
  ASSERT_TRUE(store.Defragment(*id_a).ok());
  EXPECT_EQ(*store.Fragmentation(*id_a), 0.0);
  // Content identical; id unchanged.
  EXPECT_EQ(*store.ReadAll(*id_a), before);
  // Freed pages are reusable.
  uint64_t pages_before = store.Stats().physical_bytes;
  auto c = store.PushAll(Pattern(120 * 20));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(store.Stats().physical_bytes, pages_before);
  EXPECT_TRUE(store.Defragment(999).IsNotFound());
}

// ---------------------------------------------------------------------------
// FilePageDevice-backed store

TEST(FilePageDeviceTest, PersistsPages) {
  std::string path = ::testing::TempDir() + "/tbm_pagefile_test.pages";
  std::filesystem::remove(path);
  {
    auto device = FilePageDevice::Open(path, 512);
    ASSERT_TRUE(device.ok());
    PagedBlobStore store(std::move(*device));
    auto id = store.PushAll(Pattern(2000));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*store.ReadAll(*id), Pattern(2000));
  }
  // Raw pages survive on disk (metadata is store-level, but the device
  // retains data).
  auto device = FilePageDevice::Open(path, 512);
  ASSERT_TRUE(device.ok());
  EXPECT_GE((*device)->page_count(), 4u);  // 2000 / (512-8) -> 4 pages.
}

// ---------------------------------------------------------------------------
// FileBlobStore reopen

TEST(FileStoreTest, SurvivesReopen) {
  std::string dir = ::testing::TempDir() + "/tbm_filestore_reopen";
  std::filesystem::remove_all(dir);
  BlobId id;
  {
    auto store = FileBlobStore::Open(dir);
    ASSERT_TRUE(store.ok());
    auto pushed = (*store)->PushAll(Pattern(777));
    ASSERT_TRUE(pushed.ok());
    id = *pushed;
  }
  auto store = FileBlobStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Exists(id));
  EXPECT_EQ(*(*store)->ReadAll(id), Pattern(777));
  // New ids don't collide with recovered ones.
  auto fresh = (*store)->PushAll(Pattern(5));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, id);
}

}  // namespace
}  // namespace tbm

// End-to-end reproduction of the paper's §4.3 composition example
// (Figure 4) and the Figure 5 layering, exercised through the database
// API: capture → interpretation → derivation → composition.
#include <gtest/gtest.h>

#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "codec/tmpeg.h"
#include "db/database.h"
#include "interp/capture.h"
#include "interp/index.h"
#include "stream/category.h"

namespace tbm {
namespace {

constexpr int kW = 48, kH = 32;

// Builds the paper's raw material:
//  - audio1 (music) and audio2 (narration) interleaved in one BLOB;
//  - video1 and video2 (two shots from "a single capture") in another.
struct RawMaterial {
  ObjectId audio1, audio2, video1, video2;
};

RawMaterial BuildRawMaterial(MediaDatabase* db) {
  RawMaterial out{};
  // --- Audio BLOB: music and narration interleaved.
  AudioBuffer music = audiogen::Sine(8000, 1, 330.0, 0.4, 4.0);
  AudioBuffer narration = audiogen::Narration(8000, 1, 3.0, 5);
  auto session = CaptureSession::Begin(db->blob_store());
  EXPECT_TRUE(session.ok());
  MediaDescriptor audio_desc;
  audio_desc.type_name = "audio/pcm-block";
  audio_desc.kind = MediaKind::kAudio;
  audio_desc.attrs.SetInt("sample rate", 8000);
  audio_desc.attrs.SetInt("sample size", 16);
  audio_desc.attrs.SetInt("number of channels", 1);
  audio_desc.attrs.SetString("encoding", "PCM");
  auto h1 = session->DeclareObject("audio1", audio_desc, TimeSystem(8000));
  auto h2 = session->DeclareObject("audio2", audio_desc, TimeSystem(8000));
  EXPECT_TRUE(h1.ok() && h2.ok());
  // Interleave in 0.5 s blocks.
  const int64_t block = 4000;
  for (int64_t f = 0; f < 32000; f += block) {
    Bytes music_bytes(block * 2);
    for (int64_t i = 0; i < block; ++i) {
      uint16_t u = static_cast<uint16_t>(music.samples[f + i]);
      music_bytes[2 * i] = static_cast<uint8_t>(u);
      music_bytes[2 * i + 1] = static_cast<uint8_t>(u >> 8);
    }
    EXPECT_TRUE(session->CaptureContiguous(*h1, music_bytes, block).ok());
    if (f < 24000) {
      Bytes narration_bytes(block * 2);
      for (int64_t i = 0; i < block; ++i) {
        uint16_t u = static_cast<uint16_t>(narration.samples[f + i]);
        narration_bytes[2 * i] = static_cast<uint8_t>(u);
        narration_bytes[2 * i + 1] = static_cast<uint8_t>(u >> 8);
      }
      EXPECT_TRUE(
          session->CaptureContiguous(*h2, narration_bytes, block).ok());
    }
  }
  auto audio_interp = session->Finish();
  EXPECT_TRUE(audio_interp.ok());
  auto audio_interp_id = db->AddInterpretation("audio_blob_interp",
                                               *audio_interp);
  EXPECT_TRUE(audio_interp_id.ok());
  out.audio1 = *db->AddMediaObject("audio1", *audio_interp_id, "audio1");
  out.audio2 = *db->AddMediaObject("audio2", *audio_interp_id, "audio2");

  // --- Video BLOB: two shots from a single digitization.
  auto vsession = CaptureSession::Begin(db->blob_store());
  EXPECT_TRUE(vsession.ok());
  MediaDescriptor video_desc;
  video_desc.type_name = "video/raw";
  video_desc.kind = MediaKind::kVideo;
  video_desc.attrs.SetRational("frame rate", Rational(25));
  video_desc.attrs.SetInt("frame width", kW);
  video_desc.attrs.SetInt("frame height", kH);
  video_desc.attrs.SetInt("frame depth", 24);
  video_desc.attrs.SetString("color model", "RGB");
  auto v1 = vsession->DeclareObject("video1", video_desc, TimeSystem(25));
  auto v2 = vsession->DeclareObject("video2", video_desc, TimeSystem(25));
  EXPECT_TRUE(v1.ok() && v2.ok());
  for (int i = 0; i < 50; ++i) {  // Shot 1: 2 s.
    EXPECT_TRUE(
        vsession->CaptureContiguous(*v1, videogen::Frame(kW, kH, i, 100).data, 1)
            .ok());
  }
  for (int i = 0; i < 50; ++i) {  // Shot 2: different scene.
    EXPECT_TRUE(
        vsession->CaptureContiguous(*v2, videogen::Frame(kW, kH, i, 200).data, 1)
            .ok());
  }
  auto video_interp = vsession->Finish();
  EXPECT_TRUE(video_interp.ok());
  auto video_interp_id =
      db->AddInterpretation("video_blob_interp", *video_interp);
  EXPECT_TRUE(video_interp_id.ok());
  out.video1 = *db->AddMediaObject("video1", *video_interp_id, "video1");
  out.video2 = *db->AddMediaObject("video2", *video_interp_id, "video2");
  return out;
}

TEST(Figure4Test, FullCompositionScenario) {
  auto db = MediaDatabase::CreateInMemory();
  RawMaterial raw = BuildRawMaterial(db.get());

  // Step 1 (paper): derive a fade from video1 to video2.
  // First cut the shots, then fade between them.
  AttrMap cut1_params;
  cut1_params.SetInt("start frame", 0);
  cut1_params.SetInt("frame count", 40);
  auto cut1 = db->AddDerivedObject("cut1", "video edit", {raw.video1},
                                   cut1_params);
  ASSERT_TRUE(cut1.ok());
  AttrMap cut2_params;
  cut2_params.SetInt("start frame", 10);
  cut2_params.SetInt("frame count", 40);
  auto cut2 = db->AddDerivedObject("cut2", "video edit", {raw.video2},
                                   cut2_params);
  ASSERT_TRUE(cut2.ok());

  AttrMap fade_params;
  fade_params.SetString("kind", "fade");
  fade_params.SetInt("duration frames", 10);
  auto fade = db->AddDerivedObject("fade", "video transition",
                                   {*cut1, *cut2}, fade_params);
  ASSERT_TRUE(fade.ok());

  // The fade IS video3 (A-head + blend + B-tail): 30 + 10 + 30 frames.
  auto video3_value = db->Materialize(*fade);
  ASSERT_TRUE(video3_value.ok()) << video3_value.status();
  const VideoValue& video3 = std::get<VideoValue>(*video3_value);
  EXPECT_EQ(video3.frames.size(), 70u);

  // Step 2: temporal composition into multimedia object m.
  std::vector<StoredComponent> components;
  components.push_back({"c1", raw.audio1, Rational(0), std::nullopt});
  components.push_back({"c2", raw.audio2, Rational(1), std::nullopt});
  components.push_back({"c3", *fade, Rational(0), std::nullopt});
  auto m = db->AddMultimediaObject("m", components);
  ASSERT_TRUE(m.ok());

  auto view = db->Compose(*m);
  ASSERT_TRUE(view.ok()) << view.status();
  auto timeline = (*view)->object.Timeline();
  ASSERT_TRUE(timeline.ok());
  ASSERT_EQ(timeline->size(), 3u);

  // Timeline shape (paper Figure 4b): audio1 spans the whole piece;
  // audio2 starts later and ends together with it — Allen "finishes"
  // (narration [1 s, 4 s] inside music [0 s, 4 s]).
  auto relation = (*view)->object.RelationBetween("c2", "c1");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(*relation, IntervalRelation::kFinishes);

  // Durations: music 4 s, narration 3 s at offset 1 s, video 70/25 s.
  auto duration = (*view)->object.Duration();
  ASSERT_TRUE(duration.ok());
  EXPECT_EQ(*duration, Rational(4));

  // Audible mixdown and visible frame both render.
  auto mix = (*view)->object.MixAudio(8000, 1);
  ASSERT_TRUE(mix.ok());
  EXPECT_EQ(mix->FrameCount(), 4 * 8000);
  EXPECT_GT(RmsAmplitude(*mix), 100.0);
  auto frame = (*view)->object.RenderFrameAt(1.5, kW, kH);
  ASSERT_TRUE(frame.ok());

  // ASCII instance diagram materials exist.
  auto ascii = (*view)->object.RenderTimelineAscii();
  ASSERT_TRUE(ascii.ok());
  EXPECT_NE(ascii->find("audio1"), std::string::npos);
  EXPECT_NE(ascii->find("audio2"), std::string::npos);
  EXPECT_NE(ascii->find("fade"), std::string::npos);

  // Storage economics (paper §4.2): the four derivation objects
  // (cut1, cut2, fade) are tiny next to the expanded video3.
  auto record = db->DerivationRecordBytes(*fade);
  ASSERT_TRUE(record.ok());
  EXPECT_LT(*record * 1000, ExpandedBytes(*video3_value));
}

TEST(Figure5Test, LayeringBlobToMultimedia) {
  // BLOB -> interpretation -> non-derived media objects -> derived
  // media objects -> temporal composition -> multimedia object.
  auto db = MediaDatabase::CreateInMemory();
  RawMaterial raw = BuildRawMaterial(db.get());

  // Layer checks, bottom-up.
  // 1. The BLOB is an uninterpreted byte sequence.
  auto video1_entry = db->Get(raw.video1);
  ASSERT_TRUE(video1_entry.ok());
  auto interp_entry = db->Get((*video1_entry)->interpretation_ref);
  ASSERT_TRUE(interp_entry.ok());
  BlobId blob = (*interp_entry)->interpretation.blob();
  auto blob_size = db->blob_store()->Size(blob);
  ASSERT_TRUE(blob_size.ok());
  EXPECT_EQ(*blob_size, 100u * kW * kH * 3);  // 100 raw frames.

  // 2. Interpretation exposes two media objects over that one BLOB.
  EXPECT_EQ((*interp_entry)->interpretation.objects().size(), 2u);

  // 3. Non-derived media objects materialize as categorized streams.
  auto stream = db->MaterializeStream(raw.video1);
  ASSERT_TRUE(stream.ok());
  StreamCategories cats = Classify(*stream);
  EXPECT_TRUE(cats.uniform);  // Raw video: constant size and duration.
  EXPECT_TRUE(cats.homogeneous);

  // 4. A derived media object on top.
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("frame count", 10);
  auto cut = db->AddDerivedObject("cut", "video edit", {raw.video1}, params);
  ASSERT_TRUE(cut.ok());

  // 5. Composition at the top.
  std::vector<StoredComponent> components;
  components.push_back({"c1", *cut, Rational(0), std::nullopt});
  components.push_back({"c2", raw.audio1, Rational(0), std::nullopt});
  auto m = db->AddMultimediaObject("pyramid", components);
  ASSERT_TRUE(m.ok());
  auto view = db->Compose(*m);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->object.components().size(), 2u);
  auto duration = (*view)->object.Duration();
  ASSERT_TRUE(duration.ok());
  EXPECT_EQ(*duration, Rational(4));  // Music is the longest component.
}

TEST(ScalabilityTest, KeysOnlyReadTouchesFewerBytes) {
  // Paper §2.2 scalability: present at reduced fidelity while reading
  // only part of the storage. TMPEG keys-only decode via the sync
  // index.
  auto db = MediaDatabase::CreateInMemory();
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(kW, kH, 24, 7);
  StoreOptions options;
  options.video_codec = "tmpeg";
  options.key_interval = 8;
  auto interp = StoreValue(db->blob_store(), video, "clip", options);
  ASSERT_TRUE(interp.ok()) << interp.status();
  auto object = interp->FindObject("clip");
  ASSERT_TRUE(object.ok());

  CompactElementIndex index = CompactElementIndex::Build(**object);
  EXPECT_EQ(index.sync_elements().size(), 3u);  // Keys at 0, 8, 16.

  uint64_t key_bytes = 0;
  for (int64_t key : index.sync_elements()) {
    key_bytes += (*index.PlacementOf(key)).length;
  }
  uint64_t total_bytes = (*object)->PayloadBytes();
  EXPECT_LT(key_bytes, total_bytes);

  // The keys really decode without touching delta bytes.
  auto full = interp->Materialize(*db->blob_store(), "clip");
  ASSERT_TRUE(full.ok());
  std::vector<TmpegFrame> key_frames;
  for (int64_t key : index.sync_elements()) {
    auto frame = TmpegParseFrame(full->at(key).data);
    ASSERT_TRUE(frame.ok());
    key_frames.push_back(std::move(*frame));
  }
  auto decoded = TmpegDecodeKeysOnly(key_frames);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 3u);
  EXPECT_GT(*Psnr(video.frames[8], (*decoded)[1].second), 20.0);
}

TEST(OutOfOrderTest, BidirectionalStorageThroughInterpretation) {
  // Paper §2.2 out-of-order elements: "the placement order could be
  // 1,4,2,3". Store bidirectional TMPEG through the bridge and verify
  // that element (presentation) order differs from byte (placement)
  // order, yet materialization and decode recover presentation order.
  auto db = MediaDatabase::CreateInMemory();
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(kW, kH, 8, 3);
  StoreOptions options;
  options.video_codec = "tmpeg";
  options.key_interval = 7;  // Keys at 0 and 7; B frames between.
  options.bidirectional = true;
  auto interp = StoreValue(db->blob_store(), video, "clip", options);
  ASSERT_TRUE(interp.ok()) << interp.status();
  auto object = interp->FindObject("clip");
  ASSERT_TRUE(object.ok());
  const auto& elements = (*object)->elements;
  ASSERT_EQ(elements.size(), 8u);
  // Element 7 (the second key) is stored BEFORE element 1 in the BLOB.
  EXPECT_LT(elements[7].placement.offset, elements[1].placement.offset);
  // Element table itself is in presentation order.
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_EQ(elements[i].start, static_cast<int64_t>(i));
  }
  // Decode through the bridge recovers presentation order.
  auto stream = interp->Materialize(*db->blob_store(), "clip");
  ASSERT_TRUE(stream.ok());
  auto value = DecodeStream(*stream);
  ASSERT_TRUE(value.ok()) << value.status();
  const VideoValue& decoded = std::get<VideoValue>(*value);
  ASSERT_EQ(decoded.frames.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_GT(*Psnr(video.frames[i], decoded.frames[i]), 20.0) << i;
  }
}

TEST(BridgeTest, AllValueKindsRoundTripThroughStorage) {
  auto db = MediaDatabase::CreateInMemory();
  // Audio.
  {
    MediaValue value = audiogen::Sine(8000, 2, 440, 0.5, 0.5);
    auto interp = StoreValue(db->blob_store(), value, "a");
    ASSERT_TRUE(interp.ok());
    auto stream = interp->Materialize(*db->blob_store(), "a");
    ASSERT_TRUE(stream.ok());
    auto back = DecodeStream(*stream);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::get<AudioBuffer>(*back).samples,
              std::get<AudioBuffer>(value).samples);
  }
  // Image (TJPEG, lossy).
  {
    MediaValue value = videogen::Still(64, 48, 5);
    auto interp = StoreValue(db->blob_store(), value, "i");
    ASSERT_TRUE(interp.ok());
    auto stream = interp->Materialize(*db->blob_store(), "i");
    ASSERT_TRUE(stream.ok());
    auto back = DecodeStream(*stream);
    ASSERT_TRUE(back.ok());
    EXPECT_GT(*Psnr(std::get<Image>(value), std::get<Image>(*back)), 25.0);
  }
  // MIDI (lossless).
  {
    MidiSequence seq(480, 120.0);
    ASSERT_TRUE(seq.AddNote(0, 480, 60).ok());
    ASSERT_TRUE(seq.AddNote(480, 480, 64).ok());
    MediaValue value = seq;
    auto interp = StoreValue(db->blob_store(), value, "midi");
    ASSERT_TRUE(interp.ok());
    auto stream = interp->Materialize(*db->blob_store(), "midi");
    ASSERT_TRUE(stream.ok());
    auto back = DecodeStream(*stream);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::get<MidiSequence>(*back).events(), seq.events());
  }
  // Animation scene (lossless).
  {
    AnimationScene scene(64, 48, Rational(25));
    SceneObject ball;
    ball.id = 1;
    ASSERT_TRUE(scene.AddObject(ball).ok());
    ASSERT_TRUE(scene.AddMovement({0, 10, 1, 30, 30}).ok());
    MediaValue value = scene;
    auto interp = StoreValue(db->blob_store(), value, "anim");
    ASSERT_TRUE(interp.ok());
    auto stream = interp->Materialize(*db->blob_store(), "anim");
    ASSERT_TRUE(stream.ok());
    auto back = DecodeStream(*stream);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::get<AnimationScene>(*back).movements().size(), 1u);
  }
  // Raw video (lossless).
  {
    VideoValue video;
    video.frame_rate = Rational(25);
    video.frames = videogen::Clip(32, 24, 5, 2);
    MediaValue value = video;
    StoreOptions options;
    options.video_codec = "raw";
    auto interp = StoreValue(db->blob_store(), value, "v", options);
    ASSERT_TRUE(interp.ok());
    auto stream = interp->Materialize(*db->blob_store(), "v");
    ASSERT_TRUE(stream.ok());
    auto back = DecodeStream(*stream);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::get<VideoValue>(*back).frames[3].data,
              video.frames[3].data);
  }
}

}  // namespace
}  // namespace tbm

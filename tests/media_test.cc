#include <gtest/gtest.h>

#include "media/descriptor.h"
#include "media/media_type.h"
#include "media/quality.h"

namespace tbm {
namespace {

// ---------------------------------------------------------------------------
// AttrMap

TEST(AttrMapTest, TypedSetGet) {
  AttrMap attrs;
  attrs.SetInt("frame rate", 25);
  attrs.SetDouble("gain", 0.5);
  attrs.SetBool("interlaced", false);
  attrs.SetString("color model", "RGB");
  attrs.SetRational("exact rate", Rational(30000, 1001));

  EXPECT_EQ(*attrs.GetInt("frame rate"), 25);
  EXPECT_EQ(*attrs.GetDouble("gain"), 0.5);
  EXPECT_EQ(*attrs.GetBool("interlaced"), false);
  EXPECT_EQ(*attrs.GetString("color model"), "RGB");
  EXPECT_EQ(*attrs.GetRational("exact rate"), Rational(30000, 1001));
  EXPECT_EQ(attrs.size(), 5u);
}

TEST(AttrMapTest, MissingIsNotFound) {
  AttrMap attrs;
  EXPECT_TRUE(attrs.GetInt("absent").status().IsNotFound());
  EXPECT_FALSE(attrs.Has("absent"));
}

TEST(AttrMapTest, TypeMismatchIsInvalidArgument) {
  AttrMap attrs;
  attrs.SetInt("x", 1);
  EXPECT_TRUE(attrs.GetString("x").status().IsInvalidArgument());
  EXPECT_TRUE(attrs.GetDouble("x").status().IsInvalidArgument());
}

TEST(AttrMapTest, OverwriteChangesType) {
  AttrMap attrs;
  attrs.SetInt("x", 1);
  attrs.SetString("x", "now a string");
  EXPECT_EQ(*attrs.GetString("x"), "now a string");
  EXPECT_EQ(attrs.size(), 1u);
}

TEST(AttrMapTest, Remove) {
  AttrMap attrs;
  attrs.SetInt("x", 1);
  EXPECT_TRUE(attrs.Remove("x").ok());
  EXPECT_TRUE(attrs.Remove("x").IsNotFound());
}

TEST(AttrMapTest, SerializeRoundTrip) {
  AttrMap attrs;
  attrs.SetInt("i", -42);
  attrs.SetDouble("d", 1.5);
  attrs.SetBool("b", true);
  attrs.SetString("s", "text with spaces");
  attrs.SetRational("r", Rational(-7, 3));

  BinaryWriter writer;
  attrs.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto restored = AttrMap::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, attrs);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(AttrMapTest, DeserializeRejectsBadTypeTag) {
  BinaryWriter writer;
  writer.WriteVarU64(1);
  writer.WriteString("x");
  writer.WriteU8(200);  // Invalid type tag.
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(AttrMap::Deserialize(&reader).status().IsCorruption());
}

TEST(AttrMapTest, ToStringIsDeterministicAndSorted) {
  AttrMap attrs;
  attrs.SetInt("zebra", 1);
  attrs.SetInt("alpha", 2);
  std::string text = attrs.ToString();
  EXPECT_LT(text.find("alpha"), text.find("zebra"));
}

// ---------------------------------------------------------------------------
// MediaType (Definition 1)

TEST(MediaTypeTest, ValidatesRequiredAttributes) {
  MediaType type("test/audio", MediaKind::kAudio);
  type.AddDescriptorAttr({"sample rate", AttrType::kInt, true})
      .AddDescriptorAttr({"comment", AttrType::kString, false});

  AttrMap good;
  good.SetInt("sample rate", 44100);
  EXPECT_TRUE(type.ValidateDescriptor(good).ok());

  AttrMap missing;
  EXPECT_TRUE(type.ValidateDescriptor(missing).IsInvalidArgument());

  AttrMap wrong_type;
  wrong_type.SetString("sample rate", "44100");
  EXPECT_TRUE(type.ValidateDescriptor(wrong_type).IsInvalidArgument());
}

TEST(MediaTypeTest, OptionalAttributesMayBeAbsentButMustTypeCheck) {
  MediaType type("test/x", MediaKind::kImage);
  type.AddDescriptorAttr({"note", AttrType::kString, false});
  AttrMap empty;
  EXPECT_TRUE(type.ValidateDescriptor(empty).ok());
  AttrMap bad;
  bad.SetInt("note", 3);
  EXPECT_TRUE(type.ValidateDescriptor(bad).IsInvalidArgument());
}

TEST(MediaTypeRegistryTest, BuiltinTypesPresent) {
  const MediaTypeRegistry& reg = MediaTypeRegistry::Builtin();
  for (const char* name :
       {"audio/pcm", "audio/pcm-block", "audio/adpcm", "image/raw",
        "image/tjpeg", "video/raw", "video/tjpeg", "video/tmpeg",
        "music/midi", "animation/scene", "text/plain"}) {
    EXPECT_TRUE(reg.Contains(name)) << name;
  }
  EXPECT_FALSE(reg.Contains("video/h264"));
  EXPECT_TRUE(reg.Find("nonexistent").status().IsNotFound());
}

TEST(MediaTypeRegistryTest, CdAudioConstraintsMatchPaper) {
  // Paper §3.3: the CD audio type forces s_{i+1} = s_i + d_i and
  // d_i = 1 (continuous, unit elements).
  auto pcm = MediaTypeRegistry::Builtin().Find("audio/pcm");
  ASSERT_TRUE(pcm.ok());
  EXPECT_TRUE(pcm->requires_continuous());
  ASSERT_TRUE(pcm->fixed_element_duration().has_value());
  EXPECT_EQ(*pcm->fixed_element_duration(), 1);
}

TEST(MediaTypeRegistryTest, MidiIsEventBased) {
  auto midi = MediaTypeRegistry::Builtin().Find("music/midi");
  ASSERT_TRUE(midi.ok());
  EXPECT_TRUE(midi->event_based());
  EXPECT_EQ(midi->kind(), MediaKind::kMusic);
}

TEST(MediaTypeRegistryTest, AdpcmHasElementDescriptorSpec) {
  // Paper §3.3: ADPCM encoding parameters "would be part of element
  // descriptors."
  auto adpcm = MediaTypeRegistry::Builtin().Find("audio/adpcm");
  ASSERT_TRUE(adpcm.ok());
  EXPECT_FALSE(adpcm->element_spec().empty());
}

TEST(MediaTypeRegistryTest, DuplicateRegistrationFails) {
  MediaTypeRegistry reg;
  EXPECT_TRUE(reg.Register(MediaType("a/b", MediaKind::kAudio)).ok());
  EXPECT_TRUE(
      reg.Register(MediaType("a/b", MediaKind::kAudio)).IsAlreadyExists());
}

// ---------------------------------------------------------------------------
// MediaDescriptor

MediaDescriptor CdAudioDescriptor() {
  MediaDescriptor desc;
  desc.type_name = "audio/pcm";
  desc.kind = MediaKind::kAudio;
  desc.attrs.SetInt("sample rate", 44100);
  desc.attrs.SetInt("sample size", 16);
  desc.attrs.SetInt("number of channels", 2);
  desc.attrs.SetString("encoding", "PCM");
  desc.attrs.SetString("quality factor", "CD quality");
  return desc;
}

TEST(MediaDescriptorTest, ValidatesAgainstRegistry) {
  MediaDescriptor desc = CdAudioDescriptor();
  EXPECT_TRUE(desc.Validate(MediaTypeRegistry::Builtin()).ok());
  desc.attrs.Remove("sample rate").ok();
  EXPECT_TRUE(
      desc.Validate(MediaTypeRegistry::Builtin()).IsInvalidArgument());
}

TEST(MediaDescriptorTest, KindMismatchFails) {
  MediaDescriptor desc = CdAudioDescriptor();
  desc.kind = MediaKind::kVideo;
  EXPECT_TRUE(
      desc.Validate(MediaTypeRegistry::Builtin()).IsInvalidArgument());
}

TEST(MediaDescriptorTest, ToStringResemblesPaperBox) {
  MediaDescriptor desc = CdAudioDescriptor();
  std::string text = desc.ToString("audio1");
  EXPECT_NE(text.find("audio1 descriptor = {"), std::string::npos);
  EXPECT_NE(text.find("sample rate = 44100"), std::string::npos);
  EXPECT_NE(text.find("quality factor = \"CD quality\""), std::string::npos);
}

TEST(MediaDescriptorTest, SerializeRoundTrip) {
  MediaDescriptor desc = CdAudioDescriptor();
  BinaryWriter writer;
  desc.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto restored = MediaDescriptor::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, desc);
}

// ---------------------------------------------------------------------------
// Quality factors (paper §2.2)

TEST(QualityTest, NamedAudioQualities) {
  auto cd = LookupAudioQuality("CD quality");
  ASSERT_TRUE(cd.ok());
  EXPECT_EQ(cd->sample_rate, 44100);
  EXPECT_EQ(cd->sample_size, 16);
  EXPECT_EQ(cd->channels, 2);
  auto phone = LookupAudioQuality("telephone quality");
  ASSERT_TRUE(phone.ok());
  EXPECT_EQ(phone->sample_rate, 8000);
  EXPECT_TRUE(LookupAudioQuality("imaginary").status().IsNotFound());
}

TEST(QualityTest, NamedVideoQualities) {
  auto vhs = LookupVideoQuality("VHS quality");
  ASSERT_TRUE(vhs.ok());
  EXPECT_EQ(vhs->width, 640);
  EXPECT_EQ(vhs->height, 480);
  // The paper's DVI/MPEG-I reference point: VHS quality ≈ 0.5 bit/pixel.
  EXPECT_DOUBLE_EQ(vhs->target_bpp, 0.5);
  auto broadcast = LookupVideoQuality("broadcast quality");
  ASSERT_TRUE(broadcast.ok());
  EXPECT_GT(broadcast->codec_quality, vhs->codec_quality);
}

TEST(QualityTest, LaddersAreMonotone) {
  // Better-named qualities must not decrease their parameters.
  int64_t prev_rate = 0;
  for (const std::string& name : AudioQualityNames()) {
    auto q = LookupAudioQuality(name);
    ASSERT_TRUE(q.ok());
    EXPECT_GE(q->sample_rate, prev_rate) << name;
    prev_rate = q->sample_rate;
  }
  int prev_quality = 0;
  for (const std::string& name : VideoQualityNames()) {
    auto q = LookupVideoQuality(name);
    ASSERT_TRUE(q.ok());
    EXPECT_GE(q->codec_quality, prev_quality) << name;
    prev_quality = q->codec_quality;
  }
}

}  // namespace
}  // namespace tbm

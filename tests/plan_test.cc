// Tests for the derivation plan compiler (derive/plan.h): chain
// identification, and bit-exactness + accounting of fused execution
// against the node-at-a-time path.

#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "derive/graph.h"
#include "derive/operators.h"
#include "derive/plan.h"
#include "derive/scheduler.h"

namespace tbm {
namespace {

// ---------------------------------------------------------------------------
// CompilePlan unit tests

const DerivationOp* Op(const std::string& name) {
  auto op = DerivationRegistry::Builtin().Find(name);
  EXPECT_TRUE(op.ok()) << name;
  return op.ok() ? *op : nullptr;
}

PlanNodeSpec Spec(NodeId id, const std::string& op_name,
                  std::vector<NodeId> inputs, const AttrMap* params) {
  PlanNodeSpec spec;
  spec.id = id;
  spec.op = op_name.empty() ? nullptr : Op(op_name);
  spec.params = params;
  spec.inputs = std::move(inputs);
  spec.op_name = op_name;
  spec.label = op_name.empty() ? "mystery" : op_name;
  return spec;
}

TEST(PlanCompilerTest, SingleConsumerChainFusesIntoOneStage) {
  AttrMap params;
  std::vector<PlanNodeSpec> specs;
  specs.push_back(Spec(2, "image filter", {1}, &params));
  specs.push_back(Spec(3, "image filter", {2}, &params));
  specs.push_back(Spec(4, "color separation", {3}, &params));
  std::unordered_map<NodeId, int> consumers{{1, 1}, {2, 1}, {3, 1}};

  CompiledPlan plan = CompilePlan(std::move(specs), consumers);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_TRUE(plan.stages[0].fused());
  EXPECT_EQ(plan.stages[0].nodes.size(), 3u);
  EXPECT_EQ(plan.stages[0].output(), 4u);
  EXPECT_EQ(plan.stages[0].inputs(), std::vector<NodeId>{1});
  EXPECT_EQ(plan.fused_nodes, 3u);
  EXPECT_NE(plan.ToString().find("[fused]"), std::string::npos);
}

TEST(PlanCompilerTest, FanOutBreaksTheChain) {
  AttrMap params;
  std::vector<PlanNodeSpec> specs;
  specs.push_back(Spec(2, "image filter", {1}, &params));
  specs.push_back(Spec(3, "image filter", {2}, &params));
  specs.push_back(Spec(4, "image filter", {3}, &params));
  // Node 2 has a second consumer outside this evaluation: eliding its
  // value would starve that reader, so the chain must break after it.
  std::unordered_map<NodeId, int> consumers{{1, 1}, {2, 2}, {3, 1}};

  CompiledPlan plan = CompilePlan(std::move(specs), consumers);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_FALSE(plan.stages[0].fused());
  EXPECT_EQ(plan.stages[0].output(), 2u);
  EXPECT_TRUE(plan.stages[1].fused());
  EXPECT_EQ(plan.stages[1].nodes.size(), 2u);
  EXPECT_EQ(plan.fused_nodes, 2u);
}

TEST(PlanCompilerTest, MultiInputOpHeadsAChainButCannotExtendOne) {
  AttrMap params;
  std::vector<PlanNodeSpec> specs;
  specs.push_back(Spec(2, "audio gain", {1}, &params));
  specs.push_back(Spec(3, "audio gain", {1}, &params));
  specs.push_back(Spec(4, "audio mix", {2, 3}, &params));
  specs.push_back(Spec(5, "audio gain", {4}, &params));
  std::unordered_map<NodeId, int> consumers{{1, 2}, {2, 1}, {3, 1}, {4, 1}};

  CompiledPlan plan = CompilePlan(std::move(specs), consumers);
  // The two gains cannot fuse into the mix (it is not unary), but the
  // mix heads a chain that the trailing gain joins.
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_FALSE(plan.stages[0].fused());
  EXPECT_FALSE(plan.stages[1].fused());
  ASSERT_TRUE(plan.stages[2].fused());
  EXPECT_EQ(plan.stages[2].nodes.size(), 2u);
  EXPECT_EQ(plan.stages[2].nodes[0].op_name, "audio mix");
  EXPECT_EQ(plan.fused_nodes, 2u);
}

TEST(PlanCompilerTest, FuseOffCompilesEveryNodeAsSingleton) {
  AttrMap params;
  std::vector<PlanNodeSpec> specs;
  specs.push_back(Spec(2, "image filter", {1}, &params));
  specs.push_back(Spec(3, "image filter", {2}, &params));
  specs.push_back(Spec(4, "image filter", {3}, &params));
  std::unordered_map<NodeId, int> consumers{{1, 1}, {2, 1}, {3, 1}};

  PlanOptions options;
  options.fuse = false;
  CompiledPlan plan = CompilePlan(std::move(specs), consumers, options);
  ASSERT_EQ(plan.stages.size(), 3u);
  for (const PlanStage& stage : plan.stages) EXPECT_FALSE(stage.fused());
  EXPECT_EQ(plan.fused_nodes, 0u);
}

TEST(PlanCompilerTest, UnknownOpIsANonExtendableSingleton) {
  AttrMap params;
  std::vector<PlanNodeSpec> specs;
  specs.push_back(Spec(2, "image filter", {1}, &params));
  specs.push_back(Spec(3, "", {2}, &params));  // unresolved op
  specs.push_back(Spec(4, "image filter", {3}, &params));
  std::unordered_map<NodeId, int> consumers{{1, 1}, {2, 1}, {3, 1}};

  CompiledPlan plan = CompilePlan(std::move(specs), consumers);
  ASSERT_EQ(plan.stages.size(), 3u);
  for (const PlanStage& stage : plan.stages) EXPECT_FALSE(stage.fused());
}

// ---------------------------------------------------------------------------
// End-to-end fusion tests through the engine

Image AsImage(const ValueRef& value) {
  const Image* image = std::get_if<Image>(value.get());
  EXPECT_NE(image, nullptr);
  return image ? *image : Image{};
}

const AudioBuffer& AsAudio(const ValueRef& value) {
  const AudioBuffer* audio = std::get_if<AudioBuffer>(value.get());
  EXPECT_NE(audio, nullptr);
  return *audio;
}

void ExpectSameImage(const ValueRef& a, const ValueRef& b) {
  Image ia = AsImage(a);
  Image ib = AsImage(b);
  ASSERT_EQ(ia.width, ib.width);
  ASSERT_EQ(ia.height, ib.height);
  ASSERT_EQ(ia.model, ib.model);
  ASSERT_EQ(ia.data.size(), ib.data.size());
  EXPECT_EQ(std::memcmp(ia.data.data(), ib.data.data(), ia.data.size()), 0);
}

void ExpectSameAudio(const ValueRef& a, const ValueRef& b) {
  const AudioBuffer& aa = AsAudio(a);
  const AudioBuffer& ab = AsAudio(b);
  ASSERT_EQ(aa.sample_rate, ab.sample_rate);
  ASSERT_EQ(aa.channels, ab.channels);
  ASSERT_EQ(aa.samples.size(), ab.samples.size());
  EXPECT_EQ(std::memcmp(aa.samples.data(), ab.samples.data(),
                        aa.samples.size() * sizeof(int16_t)),
            0);
}

AudioBuffer Tone(int64_t frames) {
  AudioBuffer audio;
  audio.sample_rate = 8000;
  audio.channels = 1;
  std::vector<int16_t> samples(static_cast<size_t>(frames));
  for (int64_t i = 0; i < frames; ++i) {
    samples[static_cast<size_t>(i)] =
        static_cast<int16_t>(8000 * std::sin(2.0 * M_PI * 440.0 * i / 8000.0));
  }
  audio.samples = SampleSlice(std::move(samples));
  return audio;
}

// leaf -> invert -> threshold -> invert; returns the root.
NodeId BuildImageChain(DerivationGraph* graph) {
  NodeId leaf = graph->AddLeaf(MediaValue(videogen::Still(64, 48, 7)), "src");
  AttrMap invert;
  invert.SetString("kind", "invert");
  AttrMap threshold;
  threshold.SetString("kind", "threshold");
  threshold.SetInt("threshold", 96);
  NodeId a = *graph->AddDerived("image filter", {leaf}, invert, "inv1");
  NodeId b = *graph->AddDerived("image filter", {a}, threshold, "thr");
  return *graph->AddDerived("image filter", {b}, invert, "inv2");
}

TEST(FusionTest, FusedImageChainIsBitExact) {
  DerivationGraph g1;
  NodeId r1 = BuildImageChain(&g1);
  DerivationGraph g2;
  NodeId r2 = BuildImageChain(&g2);

  DerivationEngine fused(&g1);  // fuse defaults on
  EvalOptions off;
  off.fuse = false;
  DerivationEngine unfused(&g2, off);

  auto a = fused.Evaluate(r1);
  auto b = unfused.Evaluate(r2);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectSameImage(*a, *b);

  EXPECT_GT(fused.stats().fused_nodes, 0u);
  EXPECT_EQ(unfused.stats().fused_nodes, 0u);
  EXPECT_EQ(unfused.stats().elided_bytes, 0u);
}

TEST(FusionTest, FusedMixedKernelAndFallbackChainIsBitExact) {
  // color separation changes the element width (3 -> 4 bytes) and
  // image scale has no element kernel at all, so this chain exercises
  // run splitting and the whole-value interior fallback.
  auto build = [](DerivationGraph* graph) {
    NodeId leaf =
        graph->AddLeaf(MediaValue(videogen::Still(80, 60, 3)), "src");
    AttrMap invert;
    invert.SetString("kind", "invert");
    AttrMap scale;
    scale.SetInt("width", 40);
    scale.SetInt("height", 30);
    NodeId a = *graph->AddDerived("image filter", {leaf}, invert);
    NodeId b = *graph->AddDerived("image scale", {a}, scale);
    return *graph->AddDerived("color separation", {b}, AttrMap{});
  };
  DerivationGraph g1, g2;
  NodeId r1 = build(&g1);
  NodeId r2 = build(&g2);
  DerivationEngine fused(&g1);
  EvalOptions off;
  off.fuse = false;
  DerivationEngine unfused(&g2, off);

  auto a = fused.Evaluate(r1);
  auto b = unfused.Evaluate(r2);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectSameImage(*a, *b);
  EXPECT_EQ(fused.stats().fused_nodes, 3u);
}

TEST(FusionTest, FusedAudioChainIsBitExact) {
  auto build = [](DerivationGraph* graph) {
    NodeId leaf = graph->AddLeaf(MediaValue(Tone(4096)), "tone");
    AttrMap gain;
    gain.SetDouble("gain", 0.7);
    AttrMap fade;
    fade.SetInt("fade in frames", 512);
    fade.SetInt("fade out frames", 1024);
    AttrMap boost;
    boost.SetDouble("gain", 1.3);
    NodeId a = *graph->AddDerived("audio gain", {leaf}, gain);
    NodeId b = *graph->AddDerived("audio fade", {a}, fade);
    return *graph->AddDerived("audio gain", {b}, boost);
  };
  DerivationGraph g1, g2;
  NodeId r1 = build(&g1);
  NodeId r2 = build(&g2);
  DerivationEngine fused(&g1);
  EvalOptions off;
  off.fuse = false;
  DerivationEngine unfused(&g2, off);

  auto a = fused.Evaluate(r1);
  auto b = unfused.Evaluate(r2);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectSameAudio(*a, *b);
  EXPECT_EQ(fused.stats().fused_nodes, 3u);
}

TEST(FusionTest, StatsChargeFusedNodesAndElidedBytes) {
  DerivationGraph graph;
  NodeId root = BuildImageChain(&graph);
  DerivationEngine engine(&graph);
  ASSERT_TRUE(engine.Evaluate(root).ok());

  EvalStats stats = engine.stats();
  // Interior nodes still count as evaluated work, with per-op credit.
  EXPECT_EQ(stats.nodes_evaluated, 3u);
  EXPECT_EQ(stats.fused_nodes, 3u);
  EXPECT_EQ(stats.per_op.at("image filter").invocations, 3u);
  // Two interiors of a 64x48 RGB chain were never materialized.
  EXPECT_EQ(stats.elided_bytes, 2u * 64 * 48 * 3);
  EXPECT_NE(stats.ToString().find("fusion:"), std::string::npos);
}

TEST(FusionTest, OnlyTheStageOutputIsCached) {
  DerivationGraph graph;
  NodeId leaf = graph.AddLeaf(MediaValue(videogen::Still(32, 32, 1)));
  AttrMap invert;
  invert.SetString("kind", "invert");
  NodeId a = *graph.AddDerived("image filter", {leaf}, invert);
  NodeId b = *graph.AddDerived("image filter", {a}, invert);
  DerivationEngine engine(&graph);

  ASSERT_TRUE(engine.Evaluate(b).ok());
  EXPECT_EQ(engine.stats().nodes_evaluated, 2u);

  // The tail is cached: re-evaluating it does no node work.
  ASSERT_TRUE(engine.Evaluate(b).ok());
  EXPECT_EQ(engine.stats().nodes_evaluated, 2u);
  EXPECT_GT(engine.stats().cache_hits, 0u);

  // The elided interior is not: asking for it directly recomputes.
  auto interior = engine.Evaluate(a);
  ASSERT_TRUE(interior.ok());
  EXPECT_EQ(engine.stats().nodes_evaluated, 3u);

  DerivationGraph ref_graph;
  NodeId ref_leaf = ref_graph.AddLeaf(MediaValue(videogen::Still(32, 32, 1)));
  NodeId ref_a = *ref_graph.AddDerived("image filter", {ref_leaf}, invert);
  EvalOptions off;
  off.fuse = false;
  DerivationEngine ref(&ref_graph, off);
  auto want = ref.Evaluate(ref_a);
  ASSERT_TRUE(want.ok());
  ExpectSameImage(*interior, *want);
}

TEST(FusionTest, InvalidationReachesThroughFusedStages) {
  DerivationGraph graph;
  NodeId leaf = graph.AddLeaf(MediaValue(videogen::Still(48, 48, 9)));
  AttrMap invert;
  invert.SetString("kind", "invert");
  AttrMap thr;
  thr.SetString("kind", "threshold");
  thr.SetInt("threshold", 64);
  NodeId head = *graph.AddDerived("image filter", {leaf}, thr);
  NodeId mid = *graph.AddDerived("image filter", {head}, invert);
  NodeId root = *graph.AddDerived("image filter", {mid}, invert);
  DerivationEngine engine(&graph);

  auto before = engine.Evaluate(root);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(engine.stats().nodes_evaluated, 3u);

  // Mutating the chain head must invalidate the cached tail even
  // though the interiors were fusion-elided and never cached.
  AttrMap thr2;
  thr2.SetString("kind", "threshold");
  thr2.SetInt("threshold", 192);
  ASSERT_TRUE(graph.UpdateParams(head, thr2).ok());

  auto after = engine.Evaluate(root);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(engine.stats().nodes_evaluated, 6u);

  DerivationGraph ref_graph;
  NodeId ref_leaf = ref_graph.AddLeaf(MediaValue(videogen::Still(48, 48, 9)));
  NodeId ref_head = *ref_graph.AddDerived("image filter", {ref_leaf}, thr2);
  NodeId ref_mid = *ref_graph.AddDerived("image filter", {ref_head}, invert);
  NodeId ref_root = *ref_graph.AddDerived("image filter", {ref_mid}, invert);
  EvalOptions off;
  off.fuse = false;
  DerivationEngine ref(&ref_graph, off);
  auto want = ref.Evaluate(ref_root);
  ASSERT_TRUE(want.ok());
  ExpectSameImage(*after, *want);
}

TEST(FusionTest, ParallelFusedEvaluationMatchesInline) {
  auto build = [](DerivationGraph* graph) {
    NodeId leaf = graph->AddLeaf(MediaValue(Tone(2048)), "tone");
    AttrMap soft;
    soft.SetDouble("gain", 0.5);
    AttrMap fade;
    fade.SetInt("fade in frames", 256);
    AttrMap loud;
    loud.SetDouble("gain", 0.9);
    // Two independent chains joined by a concat: the chains fuse, the
    // concat does not, and with threads > 1 the chains run in parallel.
    NodeId a1 = *graph->AddDerived("audio gain", {leaf}, soft);
    NodeId a2 = *graph->AddDerived("audio fade", {a1}, fade);
    NodeId b1 = *graph->AddDerived("audio gain", {leaf}, loud);
    NodeId b2 = *graph->AddDerived("audio gain", {b1}, soft);
    return *graph->AddDerived("audio concat", {a2, b2}, AttrMap{});
  };
  DerivationGraph g1, g2;
  NodeId r1 = build(&g1);
  NodeId r2 = build(&g2);
  EvalOptions serial;
  serial.threads = 1;
  DerivationEngine inline_engine(&g1, serial);
  EvalOptions wide;
  wide.threads = 4;
  DerivationEngine parallel_engine(&g2, wide);

  auto a = inline_engine.Evaluate(r1);
  auto b = parallel_engine.Evaluate(r2);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectSameAudio(*a, *b);
  EXPECT_EQ(parallel_engine.stats().fused_nodes, 4u);
}

TEST(FusionTest, ErrorsInsideFusedStagesKeepNodeContext) {
  DerivationGraph graph;
  NodeId leaf = graph.AddLeaf(MediaValue(videogen::Still(16, 16, 2)));
  AttrMap invert;
  invert.SetString("kind", "invert");
  AttrMap bogus;
  bogus.SetString("kind", "bogus");
  NodeId a = *graph.AddDerived("image filter", {leaf}, invert, "ok-node");
  NodeId b = *graph.AddDerived("image filter", {a}, bogus, "bad-node");
  NodeId root = *graph.AddDerived("image filter", {b}, invert);
  DerivationEngine engine(&graph);

  auto result = engine.Evaluate(root);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("bad-node"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "blob/cas_store.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "db/database.h"
#include "interp/av_capture.h"

namespace tbm {
namespace {

// Captures a small interleaved A/V clip into `db` and registers the
// interpretation plus both media objects. Returns
// (video object id, audio object id).
std::pair<ObjectId, ObjectId> IngestClip(MediaDatabase* db,
                                         const std::string& prefix,
                                         uint32_t scene,
                                         const std::string& language = "") {
  std::vector<Image> frames = videogen::Clip(48, 32, 25, scene);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 1.1);
  AvCaptureConfig config;
  config.video_name = prefix + "_video";
  config.audio_name = prefix + "_audio";
  auto capture = CaptureInterleavedAv(db->blob_store(), frames, audio, config);
  EXPECT_TRUE(capture.ok()) << capture.status();
  auto interp = db->AddInterpretation(prefix + "_interp",
                                      capture->interpretation);
  EXPECT_TRUE(interp.ok()) << interp.status();
  auto video = db->AddMediaObject(prefix + "_video", *interp,
                                  config.video_name);
  AttrMap audio_attrs;
  if (!language.empty()) audio_attrs.SetString("language", language);
  auto audio_obj = db->AddMediaObject(prefix + "_audio", *interp,
                                      config.audio_name, audio_attrs);
  EXPECT_TRUE(video.ok() && audio_obj.ok());
  return {*video, *audio_obj};
}

// ---------------------------------------------------------------------------
// Catalog basics

TEST(DbTest, EntityCrud) {
  auto db = MediaDatabase::CreateInMemory();
  AttrMap attrs;
  attrs.SetString("title", "Vertigo");
  attrs.SetString("director", "Hitchcock");
  auto id = db->AddEntity("clip1", attrs);
  ASSERT_TRUE(id.ok());
  auto entry = db->Get(*id);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->kind, CatalogKind::kEntity);
  EXPECT_EQ(*(*entry)->attrs.GetString("title"), "Vertigo");
  EXPECT_EQ(*db->FindByName("clip1"), *id);
  EXPECT_TRUE(db->FindByName("nope").status().IsNotFound());
  EXPECT_TRUE(db->AddEntity("clip1", {}).status().IsAlreadyExists());
  EXPECT_TRUE(db->AddEntity("", {}).status().IsInvalidArgument());
}

TEST(DbTest, InterpretationMustReferenceExistingBlob) {
  auto db = MediaDatabase::CreateInMemory();
  Interpretation dangling(12345);
  EXPECT_TRUE(
      db->AddInterpretation("x", dangling).status().IsNotFound());
}

TEST(DbTest, MediaObjectRequiresValidStreamName) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "a", 1);
  auto interp_id = db->FindByName("a_interp");
  ASSERT_TRUE(interp_id.ok());
  EXPECT_TRUE(db->AddMediaObject("bad", *interp_id, "no_such_stream")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      db->AddMediaObject("bad2", video, "x").status().IsInvalidArgument());
}

TEST(DbTest, QueriesByAttribute) {
  // The paper's introduction: "a digital movie with audio tracks in
  // different languages ... select a specific sound track."
  auto db = MediaDatabase::CreateInMemory();
  auto [v1, english] = IngestClip(db.get(), "movie_en", 1, "English");
  auto [v2, german] = IngestClip(db.get(), "movie_de", 2, "German");
  (void)v1;
  (void)v2;
  auto hits = db->SelectByAttr("language", AttrValue(std::string("German")));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], german);
  hits = db->SelectByAttr("language", AttrValue(std::string("English")));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], english);
  EXPECT_TRUE(
      db->SelectByAttr("language", AttrValue(std::string("Klingon"))).empty());
}

TEST(DbTest, SelectByKind) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "kinds", 3);
  auto videos = db->SelectByKind(MediaKind::kVideo);
  auto audios = db->SelectByKind(MediaKind::kAudio);
  ASSERT_EQ(videos.size(), 1u);
  ASSERT_EQ(audios.size(), 1u);
  EXPECT_EQ(videos[0], video);
  EXPECT_EQ(audios[0], audio);
}

TEST(DbTest, MediaValuedAttributes) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "m", 4);
  (void)audio;
  AttrMap attrs;
  attrs.SetString("title", "Demo");
  auto entity = db->AddEntity("videoclip1", attrs);
  ASSERT_TRUE(entity.ok());
  ASSERT_TRUE(db->SetMediaAttr(*entity, "content", video).ok());
  auto ref = db->GetMediaAttr(*entity, "content");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(*ref, video);
  // Must reference a media-ish object.
  EXPECT_TRUE(
      db->SetMediaAttr(*entity, "bad", *entity).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Materialization

TEST(DbTest, MaterializeStreamAndSpan) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "mat", 5);
  (void)audio;
  auto stream = db->MaterializeStream(video);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 25u);
  auto span = db->MaterializeStreamSpan(video, TickSpan{10, 5});
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->size(), 5u);
  EXPECT_EQ(span->at(0).start, 10);
}

TEST(DbTest, MaterializeDecodesTypedValue) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "typed", 6);
  auto video_value = db->Materialize(video);
  ASSERT_TRUE(video_value.ok());
  EXPECT_EQ(KindOfValue(*video_value), MediaKind::kVideo);
  EXPECT_EQ(std::get<VideoValue>(*video_value).frames.size(), 25u);
  auto audio_value = db->Materialize(audio);
  ASSERT_TRUE(audio_value.ok());
  const AudioBuffer& buffer = std::get<AudioBuffer>(*audio_value);
  EXPECT_EQ(buffer.sample_rate, 44100);
  EXPECT_EQ(buffer.channels, 2);
}

TEST(DbTest, DerivedObjectsEvaluate) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "derv", 7);
  (void)audio;
  AttrMap cut_params;
  cut_params.SetInt("start frame", 5);
  cut_params.SetInt("frame count", 10);
  auto cut = db->AddDerivedObject("cut1", "video edit", {video}, cut_params);
  ASSERT_TRUE(cut.ok());
  auto value = db->Materialize(*cut);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(std::get<VideoValue>(*value).frames.size(), 10u);
  // Chain: cut of a cut.
  AttrMap cut2;
  cut2.SetInt("start frame", 0);
  cut2.SetInt("frame count", 3);
  auto nested = db->AddDerivedObject("cut2", "video edit", {*cut}, cut2);
  ASSERT_TRUE(nested.ok());
  auto nested_value = db->Materialize(*nested);
  ASSERT_TRUE(nested_value.ok());
  EXPECT_EQ(std::get<VideoValue>(*nested_value).frames.size(), 3u);
}

TEST(DbTest, DerivedObjectValidation) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "val", 8);
  (void)audio;
  EXPECT_TRUE(db->AddDerivedObject("x", "no such op", {video}, {})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(db->AddDerivedObject("x", "video edit", {9999}, {})
                  .status()
                  .IsNotFound());
  auto entity = db->AddEntity("e", {});
  ASSERT_TRUE(entity.ok());
  EXPECT_TRUE(db->AddDerivedObject("x", "video edit", {*entity}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(DbTest, DerivationRecordBytesSmall) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "rec", 9);
  (void)audio;
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("frame count", 10);
  auto cut = db->AddDerivedObject("cut", "video edit", {video}, params);
  ASSERT_TRUE(cut.ok());
  auto record = db->DerivationRecordBytes(*cut);
  ASSERT_TRUE(record.ok());
  EXPECT_LT(*record, 200u);
  auto value = db->Materialize(*cut);
  ASSERT_TRUE(value.ok());
  EXPECT_GT(ExpandedBytes(*value) / *record, 100u);
}

TEST(DbTest, ExpandAndStoreCreatesNonDerivedObject) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "exp", 10);
  (void)audio;
  AttrMap params;
  params.SetInt("start frame", 2);
  params.SetInt("frame count", 6);
  auto cut = db->AddDerivedObject("cut", "video edit", {video}, params);
  ASSERT_TRUE(cut.ok());
  auto expanded = db->ExpandAndStore(*cut, "cut_expanded");
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  auto entry = db->Get(*expanded);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->kind, CatalogKind::kMediaObject);
  // The stored expansion materializes as 6 frames.
  auto value = db->Materialize(*expanded);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(std::get<VideoValue>(*value).frames.size(), 6u);
  // Only derived objects can be expanded.
  EXPECT_TRUE(
      db->ExpandAndStore(video, "nope").status().IsInvalidArgument());
}

TEST(DbTest, ComposeMultimediaObject) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "mm", 11);
  std::vector<StoredComponent> components;
  components.push_back({"c1", audio, Rational(0), std::nullopt});
  components.push_back({"c2", video, Rational(1, 2), std::nullopt});
  auto mm = db->AddMultimediaObject("presentation", components);
  ASSERT_TRUE(mm.ok());
  auto view = db->Compose(*mm);
  ASSERT_TRUE(view.ok());
  auto timeline = (*view)->object.Timeline();
  ASSERT_TRUE(timeline.ok());
  EXPECT_EQ(timeline->size(), 2u);
  EXPECT_EQ((*timeline)[1].interval.start, Rational(1, 2));
  auto duration = (*view)->object.Duration();
  ASSERT_TRUE(duration.ok());
  EXPECT_GT(duration->ToDouble(), 1.0);
  // Compose of a non-multimedia object fails.
  EXPECT_TRUE(db->Compose(video).status().IsInvalidArgument());
}

TEST(DbTest, RemoveRefusesWhileReferenced) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "rm", 12);
  (void)audio;
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("frame count", 2);
  auto cut = db->AddDerivedObject("cut", "video edit", {video}, params);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(db->Remove(video).IsFailedPrecondition());
  ASSERT_TRUE(db->Remove(*cut).ok());
  // After removing the referencing object, the media object still
  // cannot go while its interpretation relationship exists — but media
  // objects reference interpretations, not vice versa, so removal works.
  EXPECT_TRUE(db->Remove(video).ok());
}

TEST(DbTest, ExpandAndStoreWithTmpegOptions) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "tm", 15);
  (void)audio;
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("frame count", 12);
  auto cut = db->AddDerivedObject("cut", "video edit", {video}, params);
  ASSERT_TRUE(cut.ok());
  StoreOptions options;
  options.video_codec = "tmpeg";
  options.key_interval = 4;
  options.motion_compensation = true;
  auto stored = db->ExpandAndStore(*cut, "cut_tmpeg", options);
  ASSERT_TRUE(stored.ok()) << stored.status();
  // The stored form is interframe-coded with key metadata.
  auto stream = db->MaterializeStream(*stored);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->descriptor().type_name, "video/tmpeg");
  EXPECT_EQ(*stream->at(0).descriptor.GetString("frame kind"), "key");
  // And it decodes back to 12 frames.
  auto value = db->Materialize(*stored);
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(std::get<VideoValue>(*value).frames.size(), 12u);
}

TEST(DbTest, VacuumBlobsCollectsUnreferenced) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "vac", 14);
  (void)video;
  (void)audio;
  // An orphan BLOB never registered with an interpretation.
  auto orphan = db->blob_store()->PushAll(Bytes(100, 1));
  ASSERT_TRUE(orphan.ok());
  ASSERT_EQ(db->blob_store()->List().size(), 2u);

  auto deleted = db->VacuumBlobs();
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  EXPECT_FALSE(db->blob_store()->Exists(*orphan));
  // Referenced BLOB survives; media still materializes.
  EXPECT_TRUE(db->MaterializeStream(video).ok());
  // Idempotent.
  EXPECT_EQ(*db->VacuumBlobs(), 0u);

  // After removing all catalog references, vacuum reclaims the BLOB.
  auto interp = db->FindByName("vac_interp");
  ASSERT_TRUE(interp.ok());
  ASSERT_TRUE(db->Remove(audio).ok());
  ASSERT_TRUE(db->Remove(video).ok());
  ASSERT_TRUE(db->Remove(*interp).ok());
  EXPECT_EQ(*db->VacuumBlobs(), 1u);
  EXPECT_TRUE(db->blob_store()->List().empty());
}

TEST(DbTest, CollectBlobGarbageOnCasStore) {
  // A database over the content-addressed tier: garbage collection
  // goes through the CAS mark-and-sweep and reports full stats.
  std::string dir = ::testing::TempDir() + "/db_cas_gc_" +
                    std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  auto store = CasBlobStore::Open(dir + "/cas");
  ASSERT_TRUE(store.ok()) << store.status();
  auto db = MediaDatabase::Open(dir, std::move(*store));
  ASSERT_TRUE(db.ok()) << db.status();

  auto [video, audio] = IngestClip(db->get(), "casgc", 3);
  (void)video;
  (void)audio;
  // Orphans: one unique, one duplicating pushed content elsewhere.
  auto orphan = (*db)->blob_store()->PushAll(Bytes(5000, 42));
  ASSERT_TRUE(orphan.ok());
  ASSERT_EQ((*db)->blob_store()->List().size(), 2u);

  auto stats = (*db)->CollectBlobGarbage();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->live, 1u);
  EXPECT_EQ(stats->swept, 1u);
  EXPECT_EQ(stats->reclaimed_bytes, 5000u);
  EXPECT_FALSE((*db)->blob_store()->Exists(*orphan));
  // The interpretation's BLOB survived and media still materializes.
  auto interp = (*db)->FindByName("casgc_interp");
  ASSERT_TRUE(interp.ok());
  EXPECT_TRUE((*db)->MaterializeStream(video).ok());
  // Idempotent: nothing left to sweep.
  auto again = (*db)->CollectBlobGarbage();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->swept, 0u);
}

// ---------------------------------------------------------------------------
// Persistence

TEST(DbTest, SaveAndReopen) {
  std::string dir = ::testing::TempDir() + "/tbm_db_persist";
  std::filesystem::remove_all(dir);
  ObjectId video = 0, cut = 0, mm = 0;
  {
    auto db = MediaDatabase::Open(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    auto [v, a] = IngestClip(db->get(), "p", 13, "French");
    video = v;
    AttrMap params;
    params.SetInt("start frame", 1);
    params.SetInt("frame count", 5);
    auto derived = (*db)->AddDerivedObject("cut", "video edit", {v}, params);
    ASSERT_TRUE(derived.ok());
    cut = *derived;
    std::vector<StoredComponent> components;
    components.push_back({"c1", a, Rational(0), std::nullopt});
    components.push_back(
        {"c2", v, Rational(1, 4), SpatialPlacement{10, 20, 1}});
    auto mm_id = (*db)->AddMultimediaObject("show", components);
    ASSERT_TRUE(mm_id.ok());
    mm = *mm_id;
    ASSERT_TRUE((*db)->Save().ok());
  }
  auto db = MediaDatabase::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(*(*db)->FindByName("cut"), cut);
  // Query still works after reopen.
  auto hits = (*db)->SelectByAttr("language", AttrValue(std::string("French")));
  EXPECT_EQ(hits.size(), 1u);
  // Media materializes from the persisted BLOBs.
  auto value = (*db)->Materialize(cut);
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(std::get<VideoValue>(*value).frames.size(), 5u);
  (void)video;
  // Multimedia object round-tripped with spatial placement.
  auto entry = (*db)->Get(mm);
  ASSERT_TRUE(entry.ok());
  ASSERT_EQ((*entry)->components.size(), 2u);
  ASSERT_TRUE((*entry)->components[1].spatial.has_value());
  EXPECT_EQ((*entry)->components[1].spatial->y, 20);
  EXPECT_EQ((*entry)->components[1].start_seconds, Rational(1, 4));
}

TEST(DbTest, CatalogCorruptionDetected) {
  std::string dir = ::testing::TempDir() + "/tbm_db_corrupt";
  std::filesystem::remove_all(dir);
  {
    auto db = MediaDatabase::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->AddEntity("e", {}).ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  // Flip a byte in the catalog body.
  std::string path = MediaDatabase::CatalogPath(dir);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() - 1] ^= 0xFF;
  ASSERT_TRUE(WriteFile(path, *bytes).ok());
  EXPECT_TRUE(MediaDatabase::Open(dir).status().IsCorruption());
}

TEST(DbTest, InMemoryCannotSave) {
  auto db = MediaDatabase::CreateInMemory();
  EXPECT_TRUE(db->Save().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// last_eval_stats under concurrency

// Regression test: last_eval_stats() used to hand out a reference to a
// mutable member that concurrent Materialize calls overwrite, so a
// reader could observe a torn EvalStats (and TSan flagged the pair).
// It now returns a per-call snapshot taken under a lock. Run under
// ThreadSanitizer to verify (the TSan CI job includes DbStatsRaceTest).
TEST(DbStatsRaceTest, ConcurrentMaterializeAndStatsSnapshot) {
  auto db = MediaDatabase::CreateInMemory();
  auto [video, audio] = IngestClip(db.get(), "race", 3);
  (void)audio;
  AttrMap cut_params;
  cut_params.SetInt("start frame", 0);
  cut_params.SetInt("frame count", 8);
  auto cut = db->AddDerivedObject("race_cut", "video edit", {video},
                                  cut_params);
  ASSERT_TRUE(cut.ok());

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIterations = 8;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, id = *cut] {
      for (int i = 0; i < kIterations; ++i) {
        auto value = db->Materialize(id);
        EXPECT_TRUE(value.ok()) << value.status();
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db] {
      for (int i = 0; i < kIterations * 4; ++i) {
        EvalStats stats = db->last_eval_stats();  // Snapshot, not a ref.
        // Exercise the copied maps so torn state would surface.
        EXPECT_GE(stats.ToString().size(), 0u);
      }
    });
  }
  for (auto& t : threads) t.join();
  EvalStats final_stats = db->last_eval_stats();
  EXPECT_EQ(final_stats.evaluations, 1u);  // Per-Materialize engine.
  EXPECT_GE(final_stats.nodes_evaluated, 1u);
}

}  // namespace
}  // namespace tbm

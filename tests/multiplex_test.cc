// Tests of the multiplexed (v2) serve wire format and the reactor's
// stream multiplexing: hostile-input decode fuzz for the versioned
// frame envelope (truncation at every cut, unknown version bytes,
// reserved flags, oversized length prefixes, duplicate stream ids),
// and end-to-end runs with many concurrent streams on one connection —
// bit-exact payloads, independent per-stream flow-control stalls,
// window-stall eviction that leaves sibling streams untouched, and a
// 256-stream stress across four connections.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/macros.h"
#include "blob/memory_store.h"
#include "db/database.h"
#include "interp/capture.h"
#include "serve/connection.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace tbm {
namespace serve {
namespace {

constexpr int kElements = 32;
constexpr int kElementBytes = 1000;

Bytes ElementPayload(int index) {
  Bytes bytes(kElementBytes);
  for (int j = 0; j < kElementBytes; ++j) {
    bytes[static_cast<size_t>(j)] =
        static_cast<uint8_t>(index * 131 + j * 7 + 3);
  }
  return bytes;
}

// One media object "clip": kElements elements of kElementBytes, 10
// ticks/s (10 000 bytes/s average rate).
std::unique_ptr<MediaDatabase> BuildMultiplexDb() {
  auto db = MediaDatabase::CreateWithStore(std::make_unique<MemoryBlobStore>());
  auto capture = CaptureSession::Begin(db->blob_store());
  EXPECT_TRUE(capture.ok());
  MediaDescriptor descriptor;
  descriptor.type_name = "audio/pcm-block";
  descriptor.kind = MediaKind::kAudio;
  auto handle = capture->DeclareObject("clip", descriptor, TimeSystem(10));
  EXPECT_TRUE(handle.ok());
  for (int i = 0; i < kElements; ++i) {
    EXPECT_TRUE(capture->CaptureContiguous(*handle, ElementPayload(i), 1).ok());
  }
  auto interpretation = capture->Finish();
  EXPECT_TRUE(interpretation.ok());
  auto interp_id = db->AddInterpretation("clip_interp", *interpretation);
  EXPECT_TRUE(interp_id.ok());
  EXPECT_TRUE(db->AddMediaObject("clip", *interp_id, "clip").ok());
  return db;
}

// Sends `request` as a v2 frame on `stream_id` over a raw transport.
Status SendV2(Transport& transport, uint64_t stream_id,
              const Request& request) {
  FrameHeader header;
  header.version = 2;
  header.stream_id = stream_id;
  return WriteFrame(transport, EncodeFrameBody(header, EncodeRequest(request)));
}

// Receives one frame and decodes it as a response, returning the
// stream id it arrived on.
Result<std::pair<uint64_t, Response>> RecvV2(Transport& transport) {
  TBM_ASSIGN_OR_RETURN(Bytes body, ReadFrame(transport, kMaxFrameBytes));
  TBM_ASSIGN_OR_RETURN(Frame frame, DecodeFrameBody(body));
  TBM_ASSIGN_OR_RETURN(Response response, DecodeResponse(frame.payload));
  return std::make_pair(frame.header.stream_id, std::move(response));
}

// ---------------------------------------------------------------------------
// Frame envelope: round trips

TEST(FramingTest, V2EnvelopeRoundTrips) {
  Bytes payload = {0x01, 0x02, 0x03, 0x04};
  FrameHeader header;
  header.version = 2;
  header.stream_id = 0xDEADBEEF;
  Bytes body = EncodeFrameBody(header, payload);
  ASSERT_EQ(body.size(), kFrameV2HeaderBytes + payload.size());
  EXPECT_EQ(body[0], kFrameV2Marker);
  auto frame = DecodeFrameBody(body);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->header.version, 2);
  EXPECT_EQ(frame->header.flags, 0);
  EXPECT_EQ(frame->header.stream_id, 0xDEADBEEFu);
  EXPECT_EQ(frame->payload, payload);

  // An empty payload is legal in a v2 envelope.
  auto empty = DecodeFrameBody(EncodeFrameBody(header, {}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->payload.empty());
  EXPECT_EQ(empty->header.stream_id, 0xDEADBEEFu);
}

TEST(FramingTest, V1BodyPassesThroughAsStreamZero) {
  // A v1 body is the protocol payload verbatim: first byte is a type
  // tag in [0x01, kMaxV1TypeByte].
  for (uint8_t tag : {uint8_t{0x01}, uint8_t{0x07}, kMaxV1TypeByte}) {
    Bytes body = {tag, 0xAA, 0xBB};
    auto frame = DecodeFrameBody(body);
    ASSERT_TRUE(frame.ok()) << "tag=" << int{tag};
    EXPECT_EQ(frame->header.version, 1);
    EXPECT_EQ(frame->header.stream_id, 0u);
    EXPECT_EQ(frame->payload, body);
  }
  // And v1 encode is the identity.
  FrameHeader v1;
  v1.version = 1;
  Bytes payload = {0x02, 0x09};
  EXPECT_EQ(EncodeFrameBody(v1, payload), payload);
}

// ---------------------------------------------------------------------------
// Frame envelope: hostile input

TEST(FramingFuzzTest, UnknownVersionBytesRejected) {
  for (uint8_t first : {uint8_t{0x00}, uint8_t{0x40}, uint8_t{0x80},
                        uint8_t{0xF1}, uint8_t{0xF3}, uint8_t{0xFF}}) {
    Bytes body = {first, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01};
    auto frame = DecodeFrameBody(body);
    ASSERT_FALSE(frame.ok()) << "first=" << int{first};
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  }
  // Empty bodies are unframeable too.
  EXPECT_FALSE(DecodeFrameBody(ByteSpan()).ok());
}

TEST(FramingFuzzTest, NonzeroReservedFlagsRejected) {
  FrameHeader header;
  header.version = 2;
  header.stream_id = 3;
  Bytes inner = {0x05, 0x00};
  Bytes body = EncodeFrameBody(header, inner);
  for (uint8_t flags : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
    body[1] = flags;
    auto frame = DecodeFrameBody(body);
    ASSERT_FALSE(frame.ok()) << "flags=" << int{flags};
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FramingFuzzTest, V2BodyTruncatedAtEveryCut) {
  // Build a real v2 OPEN frame body, then cut it at every length.
  Request open;
  open.type = RequestType::kOpen;
  open.object_name = "clip";
  open.qos.priority = 2;
  open.qos.window_bytes = 4096;
  FrameHeader header;
  header.version = 2;
  header.stream_id = 12;
  Bytes body = EncodeFrameBody(header, EncodeRequest(open));

  for (size_t length = 0; length < body.size(); ++length) {
    ByteSpan cut(body.data(), length);
    auto frame = DecodeFrameBody(cut);
    if (length < kFrameV2HeaderBytes) {
      // Too short for the envelope itself (an empty cut is an unknown
      // version; a partial header is corruption).
      ASSERT_FALSE(frame.ok()) << "cut=" << length;
    } else {
      // Envelope decodes; the truncated payload must then either fail
      // the protocol decoder or decode to the untampered base fields
      // (a cut landing exactly between optional extension pairs is a
      // legal end of payload). What it must never do is silently
      // yield corrupted fields.
      ASSERT_TRUE(frame.ok()) << "cut=" << length;
      EXPECT_EQ(frame->header.stream_id, 12u);
      auto decoded = DecodeRequest(frame->payload);
      if (decoded.ok()) {
        EXPECT_EQ(decoded->type, RequestType::kOpen) << "cut=" << length;
        EXPECT_EQ(decoded->object_name, "clip") << "cut=" << length;
      }
    }
  }
}

TEST(FramingFuzzTest, AssemblerOversizedLengthPoisonsStream) {
  FrameAssembler assembler(/*max_frame=*/1 << 10);
  uint32_t huge = 1 << 20;
  uint8_t prefix[4];
  std::memcpy(prefix, &huge, sizeof(huge));
  assembler.Ingest(ByteSpan(prefix, 4));
  auto poisoned = assembler.Next();
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kCorruption);

  // The stream stays poisoned even if valid frames follow.
  FrameHeader header;
  header.version = 2;
  header.stream_id = 1;
  Bytes valid = {0x01};
  assembler.Ingest(EncodeFrame(header, valid));
  EXPECT_FALSE(assembler.Next().ok());
}

TEST(FramingFuzzTest, AssemblerUnknownVersionPoisonsStream) {
  FrameAssembler assembler;
  Bytes wire = {4, 0, 0, 0, 0x77, 1, 2, 3};  // Length 4, first byte 0x77.
  assembler.Ingest(wire);
  auto poisoned = assembler.Next();
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInvalidArgument);
}

TEST(FramingFuzzTest, AssemblerReassemblesByteAtATime) {
  // Three frames — v1, v2 stream 9, v2 stream 0x01020304 — fed one
  // byte at a time: every possible cut point is exercised and each
  // frame must come out whole, in order, on the right stream.
  FrameHeader v1;
  v1.version = 1;
  FrameHeader v2a;
  v2a.version = 2;
  v2a.stream_id = 9;
  FrameHeader v2b;
  v2b.version = 2;
  v2b.stream_id = 0x01020304;
  Bytes p1 = {0x03, 0xAA};
  Bytes p2 = ElementPayload(1);
  Bytes p3 = {};

  Bytes wire;
  for (const Bytes& piece :
       {EncodeFrame(v1, p1), EncodeFrame(v2a, p2), EncodeFrame(v2b, p3)}) {
    wire.insert(wire.end(), piece.begin(), piece.end());
  }

  FrameAssembler assembler;
  std::vector<Frame> frames;
  for (uint8_t byte : wire) {
    assembler.Ingest(ByteSpan(&byte, 1));
    for (;;) {
      auto next = assembler.Next();
      ASSERT_TRUE(next.ok()) << next.status().message();
      if (!next->has_value()) break;
      frames.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].header.version, 1);
  EXPECT_EQ(frames[0].header.stream_id, 0u);
  EXPECT_EQ(frames[0].payload, p1);
  EXPECT_EQ(frames[1].header.version, 2);
  EXPECT_EQ(frames[1].header.stream_id, 9u);
  EXPECT_EQ(frames[1].payload, p2);
  EXPECT_EQ(frames[2].header.version, 2);
  EXPECT_EQ(frames[2].header.stream_id, 0x01020304u);
  EXPECT_TRUE(frames[2].payload.empty());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Server: duplicate stream ids

TEST(MultiplexServerTest, DuplicateStreamIdDrawsErrorNotTeardown) {
  auto db = BuildMultiplexDb();
  MediaServer server(db.get());
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());

  Request open;
  open.type = RequestType::kOpen;
  open.object_name = "clip";

  ASSERT_TRUE(SendV2(*client_end, 5, open).ok());
  auto first = RecvV2(*client_end);
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_EQ(first->first, 5u);
  ASSERT_TRUE(first->second.status.ok()) << first->second.status.message();

  // A second OPEN on the same stream id is a protocol error scoped to
  // that request: the response names the id and the connection lives.
  ASSERT_TRUE(SendV2(*client_end, 5, open).ok());
  auto duplicate = RecvV2(*client_end);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->first, 5u);
  EXPECT_EQ(duplicate->second.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(duplicate->second.status.message().find("duplicate stream id 5"),
            std::string::npos)
      << duplicate->second.status.message();

  // The connection is still healthy: a fresh id opens fine.
  ASSERT_TRUE(SendV2(*client_end, 6, open).ok());
  auto fresh = RecvV2(*client_end);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->first, 6u);
  EXPECT_TRUE(fresh->second.status.ok()) << fresh->second.status.message();
  EXPECT_EQ(server.stats().sessions_admitted, 2u);
}

// ---------------------------------------------------------------------------
// Connection/StreamHandle: many streams, one connection

TEST(MultiplexTest, SixteenStreamsInterleaveBitExact) {
  auto db = BuildMultiplexDb();
  ServeConfig config;
  config.capacity_bytes_per_second = 8.0 * 1024 * 1024;
  MediaServer server(db.get(), config);
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  auto connection = Connect(std::move(client_end));

  constexpr int kStreams = 16;
  struct Driver {
    std::unique_ptr<StreamHandle> stream;
    std::vector<uint64_t> numbers;
    bool done = false;
  };
  std::vector<Driver> drivers(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    StreamQos qos;
    qos.priority = static_cast<uint8_t>(i % 8);
    auto stream = connection->OpenStream("clip", qos);
    ASSERT_TRUE(stream.ok()) << stream.status().message();
    EXPECT_EQ((*stream)->info().element_count,
              static_cast<uint64_t>(kElements));
    drivers[static_cast<size_t>(i)].stream = std::move(*stream);
  }
  ASSERT_EQ(server.stats().active_sessions, static_cast<uint64_t>(kStreams));

  // Drive all sixteen streams round-robin from one thread, a few
  // elements at a time, so their READs interleave on the connection.
  int remaining = kStreams;
  while (remaining > 0) {
    for (Driver& driver : drivers) {
      if (driver.done) continue;
      auto batch = driver.stream->Read(4);
      ASSERT_TRUE(batch.ok()) << batch.status().message();
      for (const WireElement& element : batch->elements) {
        EXPECT_EQ(element.payload,
                  ElementPayload(static_cast<int>(element.element_number)))
            << "stream " << driver.stream->stream_id() << " element "
            << element.element_number;
        driver.numbers.push_back(element.element_number);
      }
      if (batch->end_of_stream) {
        driver.done = true;
        --remaining;
      }
    }
  }
  for (Driver& driver : drivers) {
    ASSERT_EQ(driver.numbers.size(), static_cast<size_t>(kElements));
    for (int i = 0; i < kElements; ++i) {
      EXPECT_EQ(driver.numbers[static_cast<size_t>(i)],
                static_cast<uint64_t>(i));
    }
    EXPECT_TRUE(driver.stream->Close().ok());
  }
  EXPECT_EQ(server.stats().sessions_evicted, 0u);
  EXPECT_EQ(server.stats().sessions_admitted, static_cast<uint64_t>(kStreams));
}

TEST(MultiplexTest, WindowStallBlocksOnlyItsOwnStream) {
  auto db = BuildMultiplexDb();
  ServeConfig config;
  config.stall_timeout = std::chrono::seconds(10);  // No eviction here.
  MediaServer server(db.get(), config);
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  auto connection = Connect(std::move(client_end));

  // Stream A grants a window smaller than one element: its first READ
  // response parks on the server until more credit arrives.
  StreamQos tight;
  tight.window_bytes = 100;
  auto stalled = connection->OpenStream("clip", tight);
  ASSERT_TRUE(stalled.ok()) << stalled.status().message();

  std::atomic<bool> unblocked{false};
  std::vector<uint64_t> stalled_numbers;
  std::thread blocked_reader([&] {
    auto batch = (*stalled)->Read(2);
    ASSERT_TRUE(batch.ok()) << batch.status().message();
    for (const WireElement& element : batch->elements) {
      EXPECT_EQ(element.payload,
                ElementPayload(static_cast<int>(element.element_number)));
      stalled_numbers.push_back(element.element_number);
    }
    unblocked.store(true);
  });

  // Stream B — same connection, no flow control — streams the whole
  // object to completion while A is parked.
  auto free_flowing = connection->OpenStream("clip");
  ASSERT_TRUE(free_flowing.ok());
  int delivered = 0;
  bool end_of_stream = false;
  while (!end_of_stream) {
    auto batch = (*free_flowing)->Read(8);
    ASSERT_TRUE(batch.ok()) << batch.status().message();
    delivered += static_cast<int>(batch->elements.size());
    end_of_stream = batch->end_of_stream;
  }
  EXPECT_EQ(delivered, kElements);
  EXPECT_FALSE(unblocked.load());  // A is still parked on its window.

  // Granting credit releases exactly the parked stream.
  ASSERT_TRUE((*stalled)->GrantWindow(1 << 20).ok());
  blocked_reader.join();
  EXPECT_TRUE(unblocked.load());
  ASSERT_FALSE(stalled_numbers.empty());
  EXPECT_EQ(stalled_numbers[0], 0u);

  EXPECT_TRUE((*stalled)->Close().ok());
  EXPECT_TRUE((*free_flowing)->Close().ok());
  EXPECT_EQ(server.stats().sessions_evicted, 0u);
}

TEST(MultiplexTest, WindowStallPastTimeoutEvictsOnlyThatStream) {
  auto db = BuildMultiplexDb();
  ServeConfig config;
  config.stall_timeout = std::chrono::milliseconds(100);
  MediaServer server(db.get(), config);
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());

  // Raw v2 frames: the stalled stream's READ response will never
  // arrive (it parks, then the stream is evicted), so a blocking
  // client handle would wedge — drive the wire by hand instead.
  Request open_tight;
  open_tight.type = RequestType::kOpen;
  open_tight.object_name = "clip";
  open_tight.qos.window_bytes = 100;  // Less than one element.
  ASSERT_TRUE(SendV2(*client_end, 1, open_tight).ok());
  auto opened_tight = RecvV2(*client_end);
  ASSERT_TRUE(opened_tight.ok());
  ASSERT_TRUE(opened_tight->second.status.ok())
      << opened_tight->second.status.message();
  uint64_t tight_session = opened_tight->second.open.session_id;

  Request open_free;
  open_free.type = RequestType::kOpen;
  open_free.object_name = "clip";
  ASSERT_TRUE(SendV2(*client_end, 2, open_free).ok());
  auto opened_free = RecvV2(*client_end);
  ASSERT_TRUE(opened_free.ok());
  ASSERT_TRUE(opened_free->second.status.ok());
  uint64_t free_session = opened_free->second.open.session_id;

  // READ on the tight stream: the response parks on the empty window
  // and the stall clock starts.
  Request read_tight;
  read_tight.type = RequestType::kRead;
  read_tight.session_id = tight_session;
  read_tight.max_elements = 2;
  ASSERT_TRUE(SendV2(*client_end, 1, read_tight).ok());

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().sessions_evicted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().sessions_evicted, 1u);

  // The sibling stream on the same connection is untouched: it still
  // answers READs with bit-exact payloads.
  Request read_free;
  read_free.type = RequestType::kRead;
  read_free.session_id = free_session;
  read_free.max_elements = 4;
  ASSERT_TRUE(SendV2(*client_end, 2, read_free).ok());
  auto batch = RecvV2(*client_end);
  ASSERT_TRUE(batch.ok()) << batch.status().message();
  EXPECT_EQ(batch->first, 2u);
  ASSERT_TRUE(batch->second.status.ok()) << batch->second.status.message();
  ASSERT_EQ(batch->second.read.elements.size(), 4u);
  for (const WireElement& element : batch->second.read.elements) {
    EXPECT_EQ(element.payload,
              ElementPayload(static_cast<int>(element.element_number)));
  }

#ifndef TBM_OBS_DISABLED
  // The eviction dump names the stream and the flow-control cause.
  std::vector<std::string> dumps = server.flight_dumps();
  ASSERT_FALSE(dumps.empty());
  EXPECT_NE(dumps[0].find("stream=1"), std::string::npos) << dumps[0];
  EXPECT_NE(dumps[0].find("state=EVICTED"), std::string::npos) << dumps[0];
  EXPECT_NE(dumps[0].find("flow-control window stalled (slow client)"),
            std::string::npos)
      << dumps[0];
#endif
}

// ---------------------------------------------------------------------------
// Stress: 256 streams across four connections

TEST(MultiplexStressTest, TwoFiftySixStreamsAcrossFourConnections) {
  auto db = BuildMultiplexDb();
  ServeConfig config;
  config.max_sessions = 512;
  config.max_streams_per_connection = 64;
  config.capacity_bytes_per_second = 64.0 * 1024 * 1024;
  config.worker_threads = 4;
  MediaServer server(db.get(), config);

  constexpr int kConnections = 4;
  constexpr int kStreamsPerConnection = 64;
  std::vector<std::unique_ptr<Connection>> connections;
  for (int c = 0; c < kConnections; ++c) {
    auto [client_end, server_end] = CreateLoopbackPair();
    ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
    connections.push_back(Connect(std::move(client_end)));
  }

  std::atomic<int> failures{0};
  std::atomic<int> payload_mismatches{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      Connection* connection = connections[static_cast<size_t>(c)].get();
      struct Driver {
        std::unique_ptr<StreamHandle> stream;
        uint64_t next_expected = 0;
        bool done = false;
      };
      std::vector<Driver> drivers(kStreamsPerConnection);
      for (int i = 0; i < kStreamsPerConnection; ++i) {
        StreamQos qos;
        qos.priority = static_cast<uint8_t>(i % 8);
        auto stream = connection->OpenStream("clip", qos);
        if (!stream.ok()) {
          failures.fetch_add(1);
          return;
        }
        drivers[static_cast<size_t>(i)].stream = std::move(*stream);
      }
      int remaining = kStreamsPerConnection;
      while (remaining > 0) {
        for (Driver& driver : drivers) {
          if (driver.done) continue;
          auto batch = driver.stream->Read(8);
          if (!batch.ok()) {
            failures.fetch_add(1);
            return;
          }
          for (const WireElement& element : batch->elements) {
            if (element.element_number != driver.next_expected ||
                element.payload !=
                    ElementPayload(
                        static_cast<int>(element.element_number))) {
              payload_mismatches.fetch_add(1);
            }
            ++driver.next_expected;
          }
          if (batch->end_of_stream) {
            driver.done = true;
            --remaining;
            if (driver.next_expected == static_cast<uint64_t>(kElements)) {
              completed.fetch_add(1);
            }
            (void)driver.stream->Close();
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(payload_mismatches.load(), 0);
  EXPECT_EQ(completed.load(), kConnections * kStreamsPerConnection);
  ServerStatsSnapshot snapshot = server.stats();
  EXPECT_EQ(snapshot.sessions_admitted,
            static_cast<uint64_t>(kConnections * kStreamsPerConnection));
  EXPECT_EQ(snapshot.sessions_evicted, 0u);
  EXPECT_EQ(snapshot.active_sessions, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace tbm

// Tests for timed text: the bitmap font, caption tracks as
// non-continuous streams, storage through the bridge, and the caption
// burn-in / video poster derivations.
#include <gtest/gtest.h>

#include "blob/memory_store.h"
#include "codec/synthetic.h"
#include "db/codec_bridge.h"
#include "derive/operators.h"
#include "stream/category.h"
#include "text/captions.h"
#include "text/font.h"

namespace tbm {
namespace {

// ---------------------------------------------------------------------------
// Font

TEST(FontTest, Metrics) {
  EXPECT_EQ(font5x7::TextWidth(""), 0);
  EXPECT_EQ(font5x7::TextWidth("A"), 5);
  EXPECT_EQ(font5x7::TextWidth("AB"), 11);   // 5 + 1 + 5.
  EXPECT_EQ(font5x7::TextWidth("AB", 2), 22);
  EXPECT_EQ(font5x7::TextHeight(), 7);
  EXPECT_EQ(font5x7::TextHeight(3), 21);
}

TEST(FontTest, DrawTextMarksPixels) {
  Image canvas = Image::Zero(40, 12, ColorModel::kRgb24);
  ASSERT_TRUE(font5x7::DrawText(&canvas, "HI", 1, 2, 255, 0, 0).ok());
  // Some pixels are now red.
  int red_pixels = 0;
  for (size_t i = 0; i < canvas.data.size(); i += 3) {
    if (canvas.data[i] == 255) ++red_pixels;
  }
  EXPECT_GT(red_pixels, 10);
  // 'I' has a vertical bar: pixel in the middle column of the glyph.
  // H occupies columns 1..5; I starts at column 7; its center ~ column 9.
  const uint8_t* center =
      canvas.data.data() + 3 * (5 * canvas.width + 9);
  EXPECT_EQ(center[0], 255);
}

TEST(FontTest, LowercaseMapsToUppercase) {
  Image a = Image::Zero(10, 10, ColorModel::kRgb24);
  Image b = Image::Zero(10, 10, ColorModel::kRgb24);
  ASSERT_TRUE(font5x7::DrawText(&a, "q", 0, 0, 255, 255, 255).ok());
  ASSERT_TRUE(font5x7::DrawText(&b, "Q", 0, 0, 255, 255, 255).ok());
  EXPECT_EQ(a.data, b.data);
}

TEST(FontTest, ClipsAtBorders) {
  Image canvas = Image::Zero(8, 8, ColorModel::kRgb24);
  // Drawing far outside must not crash or write.
  ASSERT_TRUE(font5x7::DrawText(&canvas, "XYZ", -100, -100, 255, 0, 0).ok());
  ASSERT_TRUE(font5x7::DrawText(&canvas, "XYZ", 100, 100, 255, 0, 0).ok());
  // Partially off-screen writes only the visible part.
  ASSERT_TRUE(font5x7::DrawText(&canvas, "W", -2, -2, 255, 0, 0).ok());
  for (size_t i = 0; i < canvas.data.size(); i += 3) {
    // No green/blue contamination.
    EXPECT_EQ(canvas.data[i + 1], 0);
  }
}

TEST(FontTest, Validation) {
  Image gray = Image::Zero(8, 8, ColorModel::kGray8);
  EXPECT_TRUE(
      font5x7::DrawText(&gray, "A", 0, 0, 1, 2, 3).IsInvalidArgument());
  Image rgb = Image::Zero(8, 8, ColorModel::kRgb24);
  EXPECT_TRUE(
      font5x7::DrawText(&rgb, "A", 0, 0, 1, 2, 3, 0).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Caption tracks

TEST(CaptionTest, OrderingAndOverlapRules) {
  CaptionTrack track(TimeSystem(25));
  ASSERT_TRUE(track.Add(0, 50, "HELLO").ok());
  EXPECT_TRUE(track.Add(25, 10, "OVERLAP").IsInvalidArgument());
  ASSERT_TRUE(track.Add(75, 50, "WORLD").ok());
  EXPECT_TRUE(track.Add(10, 5, "BACKWARDS").IsInvalidArgument());
  EXPECT_TRUE(track.Add(200, 0, "EMPTY DURATION").IsInvalidArgument());
  EXPECT_TRUE(track.Add(200, 10, "").IsInvalidArgument());
}

TEST(CaptionTest, LookupBySpan) {
  CaptionTrack track(TimeSystem(25));
  ASSERT_TRUE(track.Add(0, 50, "FIRST").ok());
  ASSERT_TRUE(track.Add(75, 25, "SECOND").ok());
  EXPECT_EQ((*track.At(0))->text, "FIRST");
  EXPECT_EQ((*track.At(49))->text, "FIRST");
  EXPECT_TRUE(track.At(60).status().IsNotFound());  // Silence gap.
  EXPECT_EQ((*track.At(80))->text, "SECOND");
  EXPECT_TRUE(track.At(100).status().IsNotFound());
}

TEST(CaptionTest, StreamRoundTripAndCategory) {
  CaptionTrack track(TimeSystem(25));
  ASSERT_TRUE(track.Add(10, 40, "A CAPTION").ok());
  ASSERT_TRUE(track.Add(60, 30, "ANOTHER").ok());
  auto stream = track.ToTimedStream();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->descriptor().kind, MediaKind::kText);
  // Captions with gaps: non-continuous, like the paper's music example.
  EXPECT_TRUE(Classify(*stream).non_continuous());
  // Validates against the registered media type.
  EXPECT_TRUE(
      ValidateAgainstType(*stream, MediaTypeRegistry::Builtin()).ok());
  auto restored = CaptionTrack::FromTimedStream(*stream);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->captions(), track.captions());
}

TEST(CaptionTest, StoresThroughBridge) {
  MemoryBlobStore store;
  CaptionTrack track(TimeSystem(25));
  ASSERT_TRUE(track.Add(0, 50, "STORED TEXT").ok());
  auto stream = track.ToTimedStream();
  ASSERT_TRUE(stream.ok());
  auto interp = StoreValue(&store, MediaValue(*stream), "captions");
  ASSERT_TRUE(interp.ok());
  auto materialized = interp->Materialize(store, "captions");
  ASSERT_TRUE(materialized.ok());
  auto value = DecodeStream(*materialized);
  ASSERT_TRUE(value.ok());
  auto restored =
      CaptionTrack::FromTimedStream(std::get<TimedStream>(*value));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->captions()[0].text, "STORED TEXT");
}

// ---------------------------------------------------------------------------
// Derivations

TEST(CaptionTest, BurnInDrawsOnlyDuringCaptions) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(80, 60, 50, 7);
  CaptionTrack track(TimeSystem(25));
  ASSERT_TRUE(track.Add(10, 20, "HI").ok());  // Frames [10, 30).
  auto caption_stream = track.ToTimedStream();
  ASSERT_TRUE(caption_stream.ok());

  MediaValue video_value = video;
  MediaValue text_value = *caption_stream;
  AttrMap params;
  params.SetInt("scale", 1);
  auto burned = DerivationRegistry::Builtin().Apply(
      "caption burn-in", {&video_value, &text_value}, params);
  ASSERT_TRUE(burned.ok()) << burned.status();
  const VideoValue& out = std::get<VideoValue>(*burned);
  ASSERT_EQ(out.frames.size(), 50u);
  // Frames outside the caption span are untouched.
  EXPECT_EQ(out.frames[0].data, video.frames[0].data);
  EXPECT_EQ(out.frames[40].data, video.frames[40].data);
  // Frames inside differ (white pixels drawn).
  EXPECT_NE(out.frames[15].data, video.frames[15].data);
}

TEST(CaptionTest, BurnInIsRegisteredAsContentChange) {
  auto op = DerivationRegistry::Builtin().Find("caption burn-in");
  ASSERT_TRUE(op.ok());
  EXPECT_EQ((*op)->category, DerivationCategory::kContent);
  EXPECT_EQ((*op)->arg_kinds[1], MediaKind::kText);
}

TEST(PosterTest, ExtractsFrameAsImage) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(32, 24, 10, 3);
  MediaValue value = video;
  AttrMap params;
  params.SetInt("frame", 4);
  auto poster = DerivationRegistry::Builtin().Apply("video poster",
                                                    {&value}, params);
  ASSERT_TRUE(poster.ok());
  EXPECT_EQ(KindOfValue(*poster), MediaKind::kImage);
  EXPECT_EQ(std::get<Image>(*poster).data, video.frames[4].data);
  params.SetInt("frame", 99);
  EXPECT_TRUE(DerivationRegistry::Builtin()
                  .Apply("video poster", {&value}, params)
                  .status()
                  .IsOutOfRange());
  // Type change registered correctly.
  auto op = DerivationRegistry::Builtin().Find("video poster");
  ASSERT_TRUE(op.ok());
  EXPECT_EQ((*op)->category, DerivationCategory::kType);
}

}  // namespace
}  // namespace tbm

// Durability tests for the transactional catalog (DESIGN.md §16):
// write-ahead logging, group commit, checkpointing, and crash
// recovery. Crashes are injected in-process: an armed CrashSchedule
// freezes the WAL at a chosen boundary (discarding unsynced buffers,
// failing every later operation), which models a killed process while
// staying deterministic and sanitizer-friendly.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/crc32.h"
#include "base/io.h"
#include "blob/memory_store.h"
#include "db/database.h"

namespace tbm {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

Result<std::unique_ptr<MediaDatabase>> OpenDb(
    const std::string& dir, wal::WalOptions options = {}) {
  return MediaDatabase::Open(dir, std::make_unique<MemoryBlobStore>(),
                             options);
}

std::vector<std::string> WalSegmentFiles(const std::string& dir) {
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) segments.push_back(entry.path().string());
  }
  return segments;
}

// ---------------------------------------------------------------------------
// Durability basics

TEST(WalTest, MutationsDurableWithoutSave) {
  std::string dir = FreshDir("wal_no_save");
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
    ASSERT_TRUE((*db)->AddEntity("b", {}).ok());
    ASSERT_TRUE((*db)->AddEntity("c", {}).ok());
    // No Save() — the WAL alone must carry these.
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->FindByName("a").ok());
  EXPECT_TRUE((*db)->FindByName("b").ok());
  EXPECT_TRUE((*db)->FindByName("c").ok());
  wal::RecoveryStats stats = (*db)->recovery_stats();
  EXPECT_EQ(stats.snapshot_lsn, 0u);
  EXPECT_EQ(stats.replayed, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST(WalTest, StatusTracksDurability) {
  std::string dir = FreshDir("wal_status");
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
  ASSERT_TRUE((*db)->AddEntity("b", {}).ok());
  wal::WalStatus status = (*db)->wal_status();
  EXPECT_TRUE(status.enabled);
  EXPECT_EQ(status.last_lsn, 2u);
  // Every acknowledged commit is fsynced.
  EXPECT_EQ(status.durable_lsn, status.last_lsn);
  EXPECT_EQ(status.segments, 1u);
  EXPECT_GT(status.wal_bytes, 0u);
}

TEST(WalTest, InMemoryHasNoWal) {
  auto db = MediaDatabase::CreateInMemory();
  ASSERT_TRUE(db->AddEntity("a", {}).ok());
  EXPECT_FALSE(db->wal_status().enabled);
  EXPECT_EQ(db->recovery_stats().replayed, 0u);
  EXPECT_TRUE(db->Save().IsFailedPrecondition());
}

TEST(WalTest, LoggedRightsMutatorsAreDurable) {
  std::string dir = FreshDir("wal_rights");
  ObjectId id = 0;
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    auto added = (*db)->AddEntity("guarded", {});
    ASSERT_TRUE(added.ok());
    id = *added;
    ASSERT_TRUE((*db)->ProtectObject(id, "alice", "(c) alice").ok());
    ASSERT_TRUE(
        (*db)->GrantRights(id, "bob", MaskOf(MediaOperation::kRead)).ok());
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->rights().IsProtected(id));
  EXPECT_TRUE(
      (*db)->rights().Check(id, "bob", MediaOperation::kRead).ok());
  EXPECT_TRUE(
      (*db)->rights().Check(id, "eve", MediaOperation::kRead).IsFailedPrecondition());
}

TEST(WalTest, UpdateDerivedParamsIsLogged) {
  std::string dir = FreshDir("wal_params");
  // An entity cannot take derived params.
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    auto entity = (*db)->AddEntity("plain", {});
    ASSERT_TRUE(entity.ok());
    EXPECT_TRUE(
        (*db)->UpdateDerivedParams(*entity, {}).IsInvalidArgument());
  }
}

// ---------------------------------------------------------------------------
// Checkpointing

TEST(WalTest, CheckpointTruncatesLog) {
  std::string dir = FreshDir("wal_ckpt");
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*db)->AddEntity("pre" + std::to_string(i), {}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    wal::WalStatus status = (*db)->wal_status();
    EXPECT_EQ(status.checkpoint_lsn, 5u);
    EXPECT_EQ(status.checkpoint_count, 1u);
    ASSERT_TRUE((*db)->AddEntity("post0", {}).ok());
    ASSERT_TRUE((*db)->AddEntity("post1", {}).ok());
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  wal::RecoveryStats stats = (*db)->recovery_stats();
  EXPECT_EQ(stats.snapshot_lsn, 5u);
  EXPECT_EQ(stats.replayed, 2u);  // Only the two post-checkpoint adds.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE((*db)->FindByName("pre" + std::to_string(i)).ok());
  }
  EXPECT_TRUE((*db)->FindByName("post0").ok());
  EXPECT_TRUE((*db)->FindByName("post1").ok());
}

TEST(WalTest, AutoCheckpointAtThreshold) {
  std::string dir = FreshDir("wal_auto_ckpt");
  wal::WalOptions options;
  options.checkpoint_threshold_bytes = 512;
  {
    auto db = OpenDb(dir, options);
    ASSERT_TRUE(db.ok()) << db.status();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*db)->AddEntity("e" + std::to_string(i), {}).ok());
    }
    EXPECT_GT((*db)->wal_status().checkpoint_count, 0u);
    // The log never grows far past the threshold.
    EXPECT_LT((*db)->wal_status().wal_bytes, 4096u);
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE((*db)->FindByName("e" + std::to_string(i)).ok());
  }
}

TEST(WalTest, SaveIsCheckpointNow) {
  std::string dir = FreshDir("wal_save");
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  // Everything was folded into the snapshot; nothing to replay.
  EXPECT_EQ((*db)->recovery_stats().replayed, 0u);
  EXPECT_EQ((*db)->recovery_stats().snapshot_lsn, 1u);
  EXPECT_TRUE((*db)->FindByName("a").ok());
}

// ---------------------------------------------------------------------------
// Single-writer lock

TEST(WalTest, SecondOpenFailsWhileLocked) {
  std::string dir = FreshDir("wal_lock");
  auto first = OpenDb(dir);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = OpenDb(dir);
  EXPECT_TRUE(second.status().IsFailedPrecondition()) << second.status();
  first->reset();  // Releases the flock.
  auto third = OpenDb(dir);
  EXPECT_TRUE(third.ok()) << third.status();
}

// ---------------------------------------------------------------------------
// Corruption handling

TEST(WalTest, TornTailDiscardedCleanly) {
  std::string dir = FreshDir("wal_torn");
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
    ASSERT_TRUE((*db)->AddEntity("b", {}).ok());
    ASSERT_TRUE((*db)->AddEntity("c", {}).ok());
  }
  // Simulate a crash mid-append: garbage after the last valid record.
  auto segments = WalSegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::app);
    out << "torn-half-record-garbage";
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  wal::RecoveryStats stats = (*db)->recovery_stats();
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_GT(stats.discarded_bytes, 0u);
  EXPECT_EQ(stats.replayed, 3u);  // Valid prefix fully recovered.
  EXPECT_TRUE((*db)->FindByName("a").ok());
  EXPECT_TRUE((*db)->FindByName("c").ok());
  // The repaired log accepts and persists new transactions.
  ASSERT_TRUE((*db)->AddEntity("after", {}).ok());
}

TEST(WalTest, BitFlipDropsTailRecords) {
  std::string dir = FreshDir("wal_bitflip");
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
    ASSERT_TRUE((*db)->AddEntity("b", {}).ok());
    ASSERT_TRUE((*db)->AddEntity("c", {}).ok());
  }
  auto segments = WalSegmentFiles(dir);
  ASSERT_EQ(segments.size(), 1u);
  auto bytes = ReadFileBytes(segments[0]);
  ASSERT_TRUE(bytes.ok());
  // Corrupt the last record's payload: its checksum must catch it.
  (*bytes)[bytes->size() - 4] ^= 0xFF;
  ASSERT_TRUE(WriteFile(segments[0], *bytes).ok());
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  wal::RecoveryStats stats = (*db)->recovery_stats();
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(stats.replayed, 2u);
  EXPECT_TRUE((*db)->FindByName("a").ok());
  EXPECT_TRUE((*db)->FindByName("b").ok());
  EXPECT_TRUE((*db)->FindByName("c").status().IsNotFound());
}

TEST(WalTest, SuperblockCorruptionDetected) {
  std::string dir = FreshDir("wal_super_corrupt");
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  std::string path = wal::SuperblockPath(dir);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() - 1] ^= 0xFF;
  ASSERT_TRUE(WriteFile(path, *bytes).ok());
  EXPECT_TRUE(OpenDb(dir).status().IsCorruption());
}

TEST(WalTest, SnapshotOlderThanSuperblockDetected) {
  std::string dir = FreshDir("wal_stale_snapshot");
  Bytes old_snapshot;
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    auto bytes = ReadFileBytes(MediaDatabase::CatalogPath(dir));
    ASSERT_TRUE(bytes.ok());
    old_snapshot = *bytes;
    ASSERT_TRUE((*db)->AddEntity("b", {}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  // Roll the snapshot back behind the superblock — e.g. a botched
  // manual restore. Recovery must refuse rather than silently lose
  // the checkpointed mutations.
  ASSERT_TRUE(WriteFile(MediaDatabase::CatalogPath(dir), old_snapshot).ok());
  EXPECT_TRUE(OpenDb(dir).status().IsCorruption());
}

TEST(WalTest, LegacyV2SnapshotLoads) {
  std::string dir = FreshDir("wal_legacy");
  fs::create_directories(dir);
  // Handcraft a pre-WAL (version 2) snapshot: {next_id, count=0,
  // rights} — a valid empty catalog with no applied LSN field.
  BinaryWriter body;
  body.WriteU64(7);     // next_id
  body.WriteVarU64(0);  // no entries
  RightsManager().Serialize(&body);
  BinaryWriter file;
  file.WriteU32(0x544D'4244u);  // catalog magic
  file.WriteU32(2);             // version 2
  file.WriteU32(Crc32(body.buffer()));
  file.WriteRaw(body.buffer());
  ASSERT_TRUE(WriteFile(MediaDatabase::CatalogPath(dir), file.buffer()).ok());
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->size(), 0u);
  // Ids continue from the legacy next_id and new writes are durable.
  auto id = (*db)->AddEntity("upgraded", {});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 7u);
  db->reset();
  auto reopened = OpenDb(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->FindByName("upgraded").ok());
}

// Handcrafts a WAL segment file: header {magic, version, start_lsn}
// followed by kOpRemove records (of ids that never exist, so replaying
// them is a no-op) for the given LSNs.
void WriteTestSegment(const std::string& dir, uint64_t start_lsn,
                      const std::vector<uint64_t>& lsns) {
  BinaryWriter file;
  file.WriteU32(0x5442'574Cu);  // segment magic "TBWL"
  file.WriteU32(1);             // segment version
  file.WriteU64(start_lsn);
  for (uint64_t lsn : lsns) {
    BinaryWriter payload;
    payload.WriteU8(2);            // kOpRemove
    payload.WriteU64(900 + lsn);   // an id the catalog never holds
    BinaryWriter checked;
    checked.WriteU64(lsn);
    checked.WriteRaw(payload.buffer());
    file.WriteU32(static_cast<uint32_t>(payload.size()));
    file.WriteU32(Crc32(checked.buffer()));
    file.WriteRaw(checked.buffer());
  }
  ASSERT_TRUE(WriteFile(wal::WalManager::SegmentPath(dir, start_lsn),
                        file.buffer())
                  .ok());
}

// A segment overlapping its predecessor with fewer records must not
// drag the scan cursor backwards — that would misread the following
// legitimate segment as a sequence gap and delete its valid records.
TEST(WalTest, OverlappingSegmentsDoNotCreateFalseGap) {
  std::string dir = FreshDir("wal_overlap");
  fs::create_directories(dir);
  WriteTestSegment(dir, 1, {1, 2, 3});
  WriteTestSegment(dir, 2, {2});  // Overlapping, shorter.
  WriteTestSegment(dir, 4, {4});  // Legitimate successor.
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    wal::RecoveryStats stats = (*db)->recovery_stats();
    EXPECT_EQ(stats.replayed, 4u);  // LSNs 1-4; the duplicate is skipped.
    EXPECT_FALSE(stats.torn_tail);
    EXPECT_TRUE(fs::exists(wal::WalManager::SegmentPath(dir, 4)));
    ASSERT_TRUE((*db)->AddEntity("after", {}).ok());
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->FindByName("after").ok());
}

// ---------------------------------------------------------------------------
// Injected crashes

TEST(WalTest, CrashFreezesFurtherMutations) {
  std::string dir = FreshDir("wal_freeze");
  wal::CrashSchedule crash;
  {
    auto db = OpenDb(dir, {.crash = &crash});
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("before", {}).ok());
    crash.ArmAtPoint("wal.sync_begin");
    EXPECT_FALSE((*db)->AddEntity("torn", {}).ok());
    // Sticky: the frozen database rejects everything until reopen.
    EXPECT_TRUE((*db)->AddEntity("again", {}).status().IsIOError());
    EXPECT_TRUE((*db)->Checkpoint().IsIOError());
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->FindByName("before").ok());
  EXPECT_TRUE((*db)->FindByName("torn").status().IsNotFound());
  EXPECT_TRUE((*db)->AddEntity("after", {}).ok());
}

// A checkpoint that crashes after writing catalog.tbm.ckpt leaves the
// temp file behind. It must not poison the next checkpoint: recovery
// sweeps it, and the temp writer truncates rather than appends, so the
// published snapshot is never a stale-new concatenation whose CRC
// cannot match the superblock.
TEST(WalTest, StaleCheckpointTempIsHarmless) {
  std::string dir = FreshDir("wal_stale_ckpt");
  wal::CrashSchedule crash;
  {
    auto db = OpenDb(dir, {.crash = &crash});
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->AddEntity("a", {}).ok());
    crash.ArmAtPoint("ckpt.temp_written");
    EXPECT_FALSE((*db)->Checkpoint().ok());
  }
  ASSERT_TRUE(fs::exists(MediaDatabase::CatalogPath(dir) + ".ckpt"));
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_FALSE(fs::exists(MediaDatabase::CatalogPath(dir) + ".ckpt"));
    ASSERT_TRUE((*db)->AddEntity("b", {}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->recovery_stats().snapshot_lsn, 2u);
  EXPECT_TRUE((*db)->FindByName("a").ok());
  EXPECT_TRUE((*db)->FindByName("b").ok());
}

// A commit the caller was told failed must not stay visible to readers
// of this handle: the in-memory apply is rolled back.
TEST(WalTest, FailedCommitIsNotVisibleInProcess) {
  std::string dir = FreshDir("wal_rollback");
  wal::CrashSchedule crash;
  auto db = OpenDb(dir, {.crash = &crash});
  ASSERT_TRUE(db.ok()) << db.status();
  auto keep = (*db)->AddEntity("keep", {});
  ASSERT_TRUE(keep.ok());

  // Crash during the phantom insert's write+fsync.
  crash.ArmAtPoint("wal.sync_begin");
  EXPECT_FALSE((*db)->AddEntity("phantom", {}).ok());
  EXPECT_TRUE((*db)->FindByName("phantom").status().IsNotFound());
  EXPECT_TRUE((*db)->FindByName("keep").ok());

  // Against the frozen WAL every later mutator fails — and leaves no
  // trace, whether it failed before its apply (catalog ops log first)
  // or after (rights ops restore their pre-image).
  EXPECT_FALSE((*db)->SetAttr(*keep, "rating", int64_t{5}).ok());
  auto entry = (*db)->Get(*keep);
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE((*entry)->attrs.GetInt("rating").ok());
  EXPECT_FALSE((*db)->ProtectObject(*keep, "alice").ok());
  EXPECT_FALSE((*db)->rights().IsProtected(*keep));
  EXPECT_FALSE((*db)->Remove(*keep).ok());
  EXPECT_TRUE((*db)->FindByName("keep").ok());
}

// The same rollback contract for updates: the prior row (not an empty
// one) comes back.
TEST(WalTest, FailedUpdateRestoresPriorRow) {
  std::string dir = FreshDir("wal_rollback_update");
  wal::CrashSchedule crash;
  auto db = OpenDb(dir, {.crash = &crash});
  ASSERT_TRUE(db.ok()) << db.status();
  auto id = (*db)->AddEntity("e", {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*db)->SetAttr(*id, "rating", int64_t{1}).ok());
  crash.ArmAtPoint("wal.sync_begin");
  EXPECT_FALSE((*db)->SetAttr(*id, "rating", int64_t{2}).ok());
  auto entry = (*db)->Get(*id);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(*(*entry)->attrs.GetInt("rating"), 1);
}

TEST(WalTest, FailedRightsCommitRestoresTable) {
  std::string dir = FreshDir("wal_rollback_rights");
  wal::CrashSchedule crash;
  auto db = OpenDb(dir, {.crash = &crash});
  ASSERT_TRUE(db.ok()) << db.status();
  auto id = (*db)->AddEntity("guarded", {});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*db)->ProtectObject(*id, "alice").ok());
  crash.ArmAtPoint("wal.sync_begin");
  EXPECT_FALSE(
      (*db)->GrantRights(*id, "bob", MaskOf(MediaOperation::kRead)).ok());
  // The failed grant is gone; the earlier protection survives.
  EXPECT_TRUE((*db)->rights().IsProtected(*id));
  EXPECT_FALSE((*db)->rights().Check(*id, "bob", MediaOperation::kRead).ok());
}

// The crash-matrix workload: a fixed single-threaded transaction
// script with a checkpoint in the middle, run under a CrashSchedule.
// Records the fate of every operation. At most one operation is
// *ambiguous* — the one in flight when the crash fired; its record may
// or may not have reached disk (crashing at wal.sync_end leaves it
// durable but unacknowledged). Every later operation fails against the
// frozen WAL before logging anything, so it is guaranteed absent.
struct WorkloadResult {
  std::vector<std::string> acked_adds;
  std::vector<std::string> failed_adds;
  int attr = -1;    // -1 skipped, 0 failed, 1 acknowledged
  int removed = -1;
  int rights = -1;
  std::string first_failure;  // The one ambiguous operation ("" if clean).
  bool crashed = false;
};

WorkloadResult RunCrashWorkload(const std::string& dir,
                                wal::CrashSchedule* crash) {
  WorkloadResult result;
  auto note_failure = [&result](const std::string& op) {
    if (result.first_failure.empty()) result.first_failure = op;
    result.crashed = true;
  };
  wal::WalOptions options;
  options.checkpoint_threshold_bytes = 0;  // Only the scripted checkpoint.
  options.crash = crash;
  auto db = OpenDb(dir, options);
  EXPECT_TRUE(db.ok()) << db.status();
  if (!db.ok()) {
    result.crashed = true;
    return result;
  }
  auto add = [&](const std::string& name) -> ObjectId {
    auto id = (*db)->AddEntity(name, {});
    if (!id.ok()) {
      result.failed_adds.push_back(name);
      note_failure("add:" + name);
      return kInvalidObjectId;
    }
    result.acked_adds.push_back(name);
    return *id;
  };
  ObjectId e1 = add("e1");
  ObjectId e2 = add("e2");
  if (e1 != kInvalidObjectId) {
    result.attr = (*db)->SetAttr(e1, "rating", int64_t{5}).ok() ? 1 : 0;
    if (result.attr == 0) note_failure("attr");
  }
  if (!(*db)->Checkpoint().ok()) note_failure("checkpoint");
  add("e3");
  if (e2 != kInvalidObjectId) {
    result.removed = (*db)->Remove(e2).ok() ? 1 : 0;
    if (result.removed == 0) note_failure("remove");
  }
  if (e1 != kInvalidObjectId) {
    result.rights = (*db)->ProtectObject(e1, "alice").ok() ? 1 : 0;
    if (result.rights == 0) note_failure("rights");
  }
  add("e4");
  return result;
}

// Reopens the directory and asserts the atomicity contract: every
// acknowledged operation survived, every failed operation other than
// the ambiguous in-flight one left no trace, the catalog is internally
// consistent, and the database accepts new transactions.
void VerifyRecovered(const std::string& dir, const WorkloadResult& result,
                     const std::string& context) {
  SCOPED_TRACE(context);
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    const bool remove_ambiguous = result.first_failure == "remove";
    for (const std::string& name : result.acked_adds) {
      if (name == "e2" && (result.removed == 1 || remove_ambiguous)) continue;
      EXPECT_TRUE((*db)->FindByName(name).ok())
          << "acknowledged add lost: " << name;
    }
    for (const std::string& name : result.failed_adds) {
      if ("add:" + name == result.first_failure) continue;  // In flight.
      EXPECT_TRUE((*db)->FindByName(name).status().IsNotFound())
          << "unacknowledged add leaked: " << name;
    }
    if (result.removed == 1) {
      EXPECT_TRUE((*db)->FindByName("e2").status().IsNotFound());
    } else if (result.removed == 0 && !remove_ambiguous) {
      EXPECT_TRUE((*db)->FindByName("e2").ok())
          << "failed remove erased its target";
    }
    if (result.attr == 1) {
      auto e1 = (*db)->FindByName("e1");
      ASSERT_TRUE(e1.ok());
      auto entry = (*db)->Get(*e1);
      ASSERT_TRUE(entry.ok());
      EXPECT_EQ(*(*entry)->attrs.GetInt("rating"), 5);
    } else if (result.attr == 0 && result.first_failure != "attr") {
      auto e1 = (*db)->FindByName("e1");
      ASSERT_TRUE(e1.ok());
      auto entry = (*db)->Get(*e1);
      ASSERT_TRUE(entry.ok());
      EXPECT_FALSE((*entry)->attrs.GetInt("rating").ok())
          << "failed SetAttr leaked";
    }
    if (result.rights == 1) {
      auto e1 = (*db)->FindByName("e1");
      ASSERT_TRUE(e1.ok());
      EXPECT_TRUE((*db)->rights().IsProtected(*e1));
    } else if (result.rights == 0 && result.first_failure != "rights") {
      auto e1 = (*db)->FindByName("e1");
      if (e1.ok()) EXPECT_FALSE((*db)->rights().IsProtected(*e1));
    }
    // Structural consistency: every row resolves both ways.
    for (ObjectId id : (*db)->List()) {
      auto entry = (*db)->Get(id);
      ASSERT_TRUE(entry.ok());
      auto by_name = (*db)->FindByName((*entry)->name);
      ASSERT_TRUE(by_name.ok());
      EXPECT_EQ(*by_name, id);
    }
    EXPECT_TRUE((*db)->AddEntity("post_recovery", {}).ok());
  }
  // And the post-recovery transaction is itself durable.
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->FindByName("post_recovery").ok());
}

TEST(WalCrashMatrixTest, EveryBoundaryRecoversConsistently) {
  // Dry run: count the crash boundaries the workload crosses.
  std::string dry_dir = FreshDir("wal_matrix_dry");
  wal::CrashSchedule dry;
  WorkloadResult clean = RunCrashWorkload(dry_dir, &dry);
  ASSERT_FALSE(clean.crashed);
  ASSERT_GT(dry.hits(), 10u);
  VerifyRecovered(dry_dir, clean, "dry run");

  // Kill the process at every boundary in turn; each run must recover
  // to a consistent catalog containing all acknowledged operations.
  for (uint64_t k = 1; k <= dry.hits(); ++k) {
    std::string dir = FreshDir("wal_matrix_" + std::to_string(k));
    wal::CrashSchedule crash;
    crash.ArmAtHit(k);
    WorkloadResult result = RunCrashWorkload(dir, &crash);
    EXPECT_TRUE(crash.crashed());
    EXPECT_TRUE(result.crashed);
    ASSERT_FALSE(crash.trace().empty());
    VerifyRecovered(dir, result,
                    "crash at hit " + std::to_string(k) + " (" +
                        crash.trace().back() + ")");
  }
}

// ---------------------------------------------------------------------------
// Group commit under concurrency (exercised by the TSan CI job)

TEST(WalConcurrencyTest, ConcurrentWritersAllDurable) {
  std::string dir = FreshDir("wal_concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  {
    auto db = OpenDb(dir);
    ASSERT_TRUE(db.ok()) << db.status();
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&db, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto id = (*db)->AddEntity(
              "w" + std::to_string(t) + "_" + std::to_string(i), {});
          ASSERT_TRUE(id.ok()) << id.status();
        }
      });
    }
    for (std::thread& writer : writers) writer.join();
    wal::WalStatus status = (*db)->wal_status();
    EXPECT_EQ(status.last_lsn, uint64_t{kThreads * kPerThread});
    EXPECT_EQ(status.durable_lsn, status.last_lsn);
    EXPECT_EQ((*db)->size(), size_t{kThreads * kPerThread});
  }
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(
          (*db)
              ->FindByName("w" + std::to_string(t) + "_" + std::to_string(i))
              .ok());
    }
  }
}

TEST(WalConcurrencyTest, WritersRaceCheckpoints) {
  std::string dir = FreshDir("wal_ckpt_race");
  auto db = OpenDb(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&db, t] {
      for (int i = 0; i < 20; ++i) {
        auto id = (*db)->AddEntity(
            "r" + std::to_string(t) + "_" + std::to_string(i), {});
        ASSERT_TRUE(id.ok()) << id.status();
      }
    });
  }
  workers.emplace_back([&db] {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*db)->Checkpoint().ok());
    }
  });
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ((*db)->size(), 80u);
  wal::WalStatus status = (*db)->wal_status();
  EXPECT_EQ(status.durable_lsn, status.last_lsn);
  EXPECT_GE(status.checkpoint_count, 5u);
}

}  // namespace
}  // namespace tbm

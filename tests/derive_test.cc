#include <gtest/gtest.h>

#include <cmath>

#include "codec/color.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "derive/graph.h"
#include "derive/operators.h"

namespace tbm {
namespace {

const DerivationRegistry& Reg() { return DerivationRegistry::Builtin(); }

VideoValue SmallVideo(int64_t frames, uint32_t scene = 3) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(48, 32, frames, scene);
  return video;
}

// ---------------------------------------------------------------------------
// Registry metadata reproduces Table 1

struct Table1Row {
  const char* name;
  MediaKind arg0;
  MediaKind result;
  DerivationCategory category;
  size_t arity;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, SignatureMatchesPaper) {
  const Table1Row& row = GetParam();
  auto op = Reg().Find(row.name);
  ASSERT_TRUE(op.ok()) << row.name;
  EXPECT_EQ((*op)->arg_kinds.size(), row.arity);
  EXPECT_EQ((*op)->arg_kinds[0], row.arg0);
  EXPECT_EQ((*op)->result_kind, row.result);
  EXPECT_EQ((*op)->category, row.category);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1Test,
    ::testing::Values(
        Table1Row{"color separation", MediaKind::kImage, MediaKind::kImage,
                  DerivationCategory::kContent, 1},
        Table1Row{"audio normalization", MediaKind::kAudio, MediaKind::kAudio,
                  DerivationCategory::kContent, 1},
        Table1Row{"video edit", MediaKind::kVideo, MediaKind::kVideo,
                  DerivationCategory::kTiming, 1},
        Table1Row{"video transition", MediaKind::kVideo, MediaKind::kVideo,
                  DerivationCategory::kContent, 2},
        Table1Row{"MIDI synthesis", MediaKind::kMusic, MediaKind::kAudio,
                  DerivationCategory::kType, 1}));

TEST(RegistryTest, UnknownOpIsNotFound) {
  EXPECT_TRUE(Reg().Find("teleport").status().IsNotFound());
}

TEST(RegistryTest, ArityAndKindChecked) {
  MediaValue audio = audiogen::Sine(8000, 1, 440, 0.5, 0.1);
  MediaValue video = SmallVideo(2);
  AttrMap params;
  // Wrong arity.
  EXPECT_TRUE(Reg()
                  .Apply("audio mix", {&audio}, params)
                  .status()
                  .IsInvalidArgument());
  // Wrong kind — the paper: "an audio sequence cannot be concatenated
  // to a video sequence."
  EXPECT_TRUE(Reg()
                  .Apply("audio concat", {&audio, &video}, params)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Parameter key aliases

TEST(ParamAliasTest, UnderscoreAliasesMatchSpacedKeys) {
  MediaValue tone = audiogen::Sine(8000, 1, 440, 0.2, 0.5);

  AttrMap spaced;
  spaced.SetDouble("target peak", 0.8);
  AttrMap underscored;
  underscored.SetDouble("target_peak", 0.8);
  auto a = Reg().Apply("audio normalization", {&tone}, spaced);
  auto b = Reg().Apply("audio normalization", {&tone}, underscored);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(std::get<AudioBuffer>(*a).samples[777],
            std::get<AudioBuffer>(*b).samples[777]);

  // Multi-word int keys alias the same way.
  AttrMap fade_spaced;
  fade_spaced.SetInt("fade in frames", 1000);
  fade_spaced.SetInt("fade out frames", 500);
  AttrMap fade_underscored;
  fade_underscored.SetInt("fade_in_frames", 1000);
  fade_underscored.SetInt("fade_out_frames", 500);
  auto c = Reg().Apply("audio fade", {&tone}, fade_spaced);
  auto d = Reg().Apply("audio fade", {&tone}, fade_underscored);
  ASSERT_TRUE(c.ok()) << c.status();
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(std::get<AudioBuffer>(*c).samples[123],
            std::get<AudioBuffer>(*d).samples[123]);
  // And the alias really took effect (index 123 is inside the fade-in).
  EXPECT_NE(std::get<AudioBuffer>(*c).samples[123],
            std::get<AudioBuffer>(tone).samples[123]);
}

TEST(ParamAliasTest, CanonicalSpacedKeyWinsOverAlias) {
  MediaValue tone = audiogen::Sine(8000, 1, 440, 0.2, 0.5);
  AttrMap both;
  both.SetDouble("target peak", 0.9);
  both.SetDouble("target_peak", 0.1);
  AttrMap canonical;
  canonical.SetDouble("target peak", 0.9);
  auto a = Reg().Apply("audio normalization", {&tone}, both);
  auto b = Reg().Apply("audio normalization", {&tone}, canonical);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(std::get<AudioBuffer>(*a).samples[777],
            std::get<AudioBuffer>(*b).samples[777]);
}

// ---------------------------------------------------------------------------
// Audio operators

TEST(AudioOpsTest, NormalizationHitsTargetPeak) {
  MediaValue quiet = audiogen::Sine(8000, 1, 440, 0.2, 0.2);
  AttrMap params;
  params.SetDouble("target peak", 0.9);
  auto result = Reg().Apply("audio normalization", {&quiet}, params);
  ASSERT_TRUE(result.ok()) << result.status();
  const AudioBuffer& out = std::get<AudioBuffer>(*result);
  EXPECT_NEAR(PeakAmplitude(out), 0.9 * 32767, 200);
}

TEST(AudioOpsTest, NormalizationOfSilenceIsNoOp) {
  MediaValue silence = audiogen::Silence(8000, 1, 0.1);
  auto result = Reg().Apply("audio normalization", {&silence}, AttrMap{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PeakAmplitude(std::get<AudioBuffer>(*result)), 0);
}

TEST(AudioOpsTest, NormalizationSpanParameters) {
  // Paper: "the parameters needed are the start and end points of the
  // audio sequence to be normalized."
  AudioBuffer buffer = audiogen::Sine(8000, 1, 440, 0.2, 1.0);
  MediaValue value = buffer;
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("end frame", 4000);
  auto result = Reg().Apply("audio normalization", {&value}, params);
  ASSERT_TRUE(result.ok());
  const AudioBuffer& out = std::get<AudioBuffer>(*result);
  // First half amplified, second half untouched. (Index 1001: sample
  // 1000 of a 440 Hz tone at 8 kHz lands exactly on a zero crossing.)
  EXPECT_GT(std::abs(out.samples[1001]), std::abs(buffer.samples[1001]));
  EXPECT_EQ(out.samples[6001], buffer.samples[6001]);
  // Bad span rejected.
  params.SetInt("end frame", 999999);
  EXPECT_TRUE(Reg()
                  .Apply("audio normalization", {&value}, params)
                  .status()
                  .IsOutOfRange());
}

TEST(AudioOpsTest, GainClampsAtFullScale) {
  MediaValue loud = audiogen::Sine(8000, 1, 440, 0.9, 0.1);
  AttrMap params;
  params.SetDouble("gain", 10.0);
  auto result = Reg().Apply("audio gain", {&loud}, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PeakAmplitude(std::get<AudioBuffer>(*result)), 32767);
}

TEST(AudioOpsTest, MixWithOffset) {
  MediaValue a = audiogen::Sine(8000, 1, 440, 0.3, 0.5);
  MediaValue b = audiogen::Sine(8000, 1, 880, 0.3, 0.5);
  AttrMap params;
  params.SetInt("offset frames", 2000);
  auto result = Reg().Apply("audio mix", {&a, &b}, params);
  ASSERT_TRUE(result.ok());
  const AudioBuffer& out = std::get<AudioBuffer>(*result);
  EXPECT_EQ(out.FrameCount(), 2000 + 4000);
  // Mismatched formats rejected.
  MediaValue other_rate = audiogen::Sine(44100, 1, 440, 0.3, 0.1);
  EXPECT_TRUE(Reg()
                  .Apply("audio mix", {&a, &other_rate}, AttrMap{})
                  .status()
                  .IsInvalidArgument());
}

TEST(AudioOpsTest, CutAndConcatInverse) {
  AudioBuffer buffer = audiogen::Noise(8000, 2, 0.4, 0.5, 17);
  MediaValue value = buffer;
  AttrMap head_params;
  head_params.SetInt("start frame", 0);
  head_params.SetInt("frame count", 1500);
  auto head = Reg().Apply("audio cut", {&value}, head_params);
  AttrMap tail_params;
  tail_params.SetInt("start frame", 1500);
  auto tail = Reg().Apply("audio cut", {&value}, tail_params);
  ASSERT_TRUE(head.ok() && tail.ok());
  auto rejoined = Reg().Apply("audio concat", {&*head, &*tail}, AttrMap{});
  ASSERT_TRUE(rejoined.ok());
  EXPECT_EQ(std::get<AudioBuffer>(*rejoined).samples, buffer.samples);
}

TEST(AudioOpsTest, ResampleChangesRateKeepsDuration) {
  MediaValue cd = audiogen::Sine(44100, 1, 440, 0.5, 0.5);
  AttrMap params;
  params.SetInt("target rate", 8000);
  auto result = Reg().Apply("audio resample", {&cd}, params);
  ASSERT_TRUE(result.ok());
  const AudioBuffer& out = std::get<AudioBuffer>(*result);
  EXPECT_EQ(out.sample_rate, 8000);
  EXPECT_NEAR(out.DurationSeconds(), 0.5, 0.01);
}

// ---------------------------------------------------------------------------
// Image operators

TEST(ImageOpsTest, ColorSeparationProducesCmyk) {
  MediaValue image = videogen::Still(32, 32, 5);
  AttrMap params;
  params.SetDouble("black generation", 0.8);
  auto result = Reg().Apply("color separation", {&image}, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<Image>(*result).model, ColorModel::kCmyk32);
}

TEST(ImageOpsTest, FiltersWork) {
  MediaValue image = videogen::Still(32, 32, 6);
  AttrMap invert;
  invert.SetString("kind", "invert");
  auto inverted = Reg().Apply("image filter", {&image}, invert);
  ASSERT_TRUE(inverted.ok());
  const Image& original = std::get<Image>(image);
  const Image& out = std::get<Image>(*inverted);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out.data[i], 255 - original.data[i]);
  }
  AttrMap blur;
  blur.SetString("kind", "box blur");
  blur.SetInt("radius", 2);
  EXPECT_TRUE(Reg().Apply("image filter", {&image}, blur).ok());
  AttrMap unknown;
  unknown.SetString("kind", "sharpen");
  EXPECT_TRUE(Reg()
                  .Apply("image filter", {&image}, unknown)
                  .status()
                  .IsInvalidArgument());
}

TEST(ImageOpsTest, ReencodeIsLossyButClose) {
  MediaValue image = videogen::Still(64, 64, 7);
  AttrMap params;
  params.SetInt("quality", 80);
  auto result = Reg().Apply("image reencode", {&image}, params);
  ASSERT_TRUE(result.ok());
  double psnr = *Psnr(std::get<Image>(image), std::get<Image>(*result));
  EXPECT_GT(psnr, 28.0);
  EXPECT_LT(psnr, 99.0);  // Actually lossy.
}

// ---------------------------------------------------------------------------
// Video operators

TEST(VideoOpsTest, EditSelectsSpan) {
  MediaValue video = SmallVideo(20);
  AttrMap params;
  params.SetInt("start frame", 5);
  params.SetInt("frame count", 10);
  auto result = Reg().Apply("video edit", {&video}, params);
  ASSERT_TRUE(result.ok());
  const VideoValue& out = std::get<VideoValue>(*result);
  EXPECT_EQ(out.frames.size(), 10u);
  EXPECT_EQ(out.frames[0].data, std::get<VideoValue>(video).frames[5].data);
  params.SetInt("frame count", 100);
  EXPECT_TRUE(
      Reg().Apply("video edit", {&video}, params).status().IsOutOfRange());
}

TEST(VideoOpsTest, ConcatRequiresMatchingRates) {
  MediaValue a = SmallVideo(5);
  VideoValue b_value = SmallVideo(5, 4);
  b_value.frame_rate = Rational(30);
  MediaValue b = b_value;
  EXPECT_TRUE(Reg()
                  .Apply("video concat", {&a, &b}, AttrMap{})
                  .status()
                  .IsInvalidArgument());
  MediaValue c = SmallVideo(5, 4);
  auto result = Reg().Apply("video concat", {&a, &c}, AttrMap{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<VideoValue>(*result).frames.size(), 10u);
}

TEST(VideoOpsTest, FadeBlendsMonotonically) {
  MediaValue a = SmallVideo(12, 10);
  MediaValue b = SmallVideo(12, 20);
  AttrMap params;
  params.SetString("kind", "fade");
  params.SetInt("duration frames", 6);
  auto result = Reg().Apply("video transition", {&a, &b}, params);
  ASSERT_TRUE(result.ok());
  const VideoValue& out = std::get<VideoValue>(*result);
  // Length: (12-6) + 6 + (12-6) = 18.
  EXPECT_EQ(out.frames.size(), 18u);
  const VideoValue& va = std::get<VideoValue>(a);
  const VideoValue& vb = std::get<VideoValue>(b);
  // Pre-transition frames untouched.
  EXPECT_EQ(out.frames[0].data, va.frames[0].data);
  // Post-transition frames come from B.
  EXPECT_EQ(out.frames[17].data, vb.frames[11].data);
  // Transition frames move from A-like to B-like.
  auto diff = [](const Image& x, const Image& y) {
    double total = 0;
    for (size_t i = 0; i < x.data.size(); ++i) {
      total += std::abs(static_cast<int>(x.data[i]) - y.data[i]);
    }
    return total;
  };
  double early_vs_a = diff(out.frames[6], va.frames[6]);
  double late_vs_a = diff(out.frames[11], va.frames[11]);
  EXPECT_LT(early_vs_a, late_vs_a);
}

TEST(VideoOpsTest, WipeRevealsLeftToRight) {
  MediaValue a = SmallVideo(8, 10);
  MediaValue b = SmallVideo(8, 20);
  AttrMap params;
  params.SetString("kind", "wipe");
  params.SetInt("duration frames", 4);
  auto result = Reg().Apply("video transition", {&a, &b}, params);
  ASSERT_TRUE(result.ok());
  const VideoValue& out = std::get<VideoValue>(*result);
  const VideoValue& va = std::get<VideoValue>(a);
  const VideoValue& vb = std::get<VideoValue>(b);
  // In an early wipe frame the right edge is still A, the left edge is
  // already B.
  const Image& mid = out.frames[4 + 2];  // Third transition frame.
  const Image& src_a = va.frames[4 + 2];
  const Image& src_b = vb.frames[2];
  int w = mid.width;
  int y = mid.height / 2;
  EXPECT_EQ(mid.data[3 * (y * w + 1)], src_b.data[3 * (y * w + 1)]);
  EXPECT_EQ(mid.data[3 * (y * w + w - 2)], src_a.data[3 * (y * w + w - 2)]);
}

TEST(VideoOpsTest, TransitionParameterValidation) {
  MediaValue a = SmallVideo(4);
  MediaValue b = SmallVideo(4, 9);
  AttrMap params;
  params.SetInt("duration frames", 10);  // Longer than inputs.
  EXPECT_TRUE(Reg()
                  .Apply("video transition", {&a, &b}, params)
                  .status()
                  .IsOutOfRange());
  params.SetInt("duration frames", 2);
  params.SetString("kind", "dissolve");
  EXPECT_TRUE(Reg()
                  .Apply("video transition", {&a, &b}, params)
                  .status()
                  .IsInvalidArgument());
}

TEST(VideoOpsTest, ChromaKeyReplacesKeyColor) {
  // Foreground: green screen with a red box; background: synthetic.
  VideoValue fg;
  fg.frame_rate = Rational(25);
  for (int f = 0; f < 3; ++f) {
    Image frame = Image::Zero(32, 32, ColorModel::kRgb24);
    Bytes pixels(frame.data.size(), 0);
    for (size_t i = 0; i < pixels.size(); i += 3) {
      pixels[i] = 0;
      pixels[i + 1] = 255;
      pixels[i + 2] = 0;
    }
    for (int y = 10; y < 20; ++y) {
      for (int x = 10; x < 20; ++x) {
        size_t p = 3 * (static_cast<size_t>(y) * 32 + x);
        pixels[p] = 200;
        pixels[p + 1] = 0;
        pixels[p + 2] = 0;
      }
    }
    frame.data = std::move(pixels);
    fg.frames.push_back(std::move(frame));
  }
  MediaValue fg_value = fg;
  MediaValue bg_value = SmallVideo(3, 30);
  // Geometry must match: regenerate bg at 32x32.
  VideoValue bg;
  bg.frame_rate = Rational(25);
  bg.frames = videogen::Clip(32, 32, 3, 30);
  bg_value = bg;
  auto result = Reg().Apply("chroma key", {&fg_value, &bg_value}, AttrMap{});
  ASSERT_TRUE(result.ok()) << result.status();
  const VideoValue& out = std::get<VideoValue>(*result);
  // Green pixels replaced by background; red box kept.
  size_t corner = 0;
  EXPECT_EQ(out.frames[0].data[corner], bg.frames[0].data[corner]);
  size_t box = 3 * (15 * 32 + 15);
  EXPECT_EQ(out.frames[0].data[box], 200);
}

// ---------------------------------------------------------------------------
// Type-changing and generic timing operators

TEST(TypeOpsTest, MidiSynthesisChangesKind) {
  MidiSequence seq(480, 120.0);
  ASSERT_TRUE(seq.AddNote(0, 960, 60).ok());
  MediaValue music = seq;
  EXPECT_EQ(KindOfValue(music), MediaKind::kMusic);
  AttrMap params;
  params.SetInt("sample rate", 8000);
  params.SetInt("channels", 1);
  auto result = Reg().Apply("MIDI synthesis", {&music}, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(KindOfValue(*result), MediaKind::kAudio);
}

TEST(TypeOpsTest, AnimationRenderChangesKind) {
  AnimationScene scene(64, 48, Rational(25));
  SceneObject ball;
  ball.id = 1;
  ball.x = 10;
  ball.y = 10;
  ASSERT_TRUE(scene.AddObject(ball).ok());
  ASSERT_TRUE(scene.AddMovement({0, 20, 1, 50, 40}).ok());
  MediaValue value = scene;
  auto result = Reg().Apply("animation render", {&value}, AttrMap{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(KindOfValue(*result), MediaKind::kVideo);
  EXPECT_EQ(std::get<VideoValue>(*result).frames.size(), 21u);
}

TEST(TimingOpsTest, TranslateShiftsAnyStream) {
  // Works on a music-kind timed stream, showing genericity.
  MidiSequence seq(480, 120.0);
  ASSERT_TRUE(seq.AddNote(0, 480, 60).ok());
  auto stream = seq.ToEventStream();
  ASSERT_TRUE(stream.ok());
  MediaValue value = *stream;
  AttrMap params;
  params.SetInt("offset", 100);
  auto result = Reg().Apply("temporal translate", {&value}, params);
  ASSERT_TRUE(result.ok());
  const TimedStream& out = std::get<TimedStream>(*result);
  EXPECT_EQ(out.at(0).start, 100);
  EXPECT_EQ(out.descriptor().kind, MediaKind::kMusic);
  // Negative overshoot rejected.
  params.SetInt("offset", -1000);
  EXPECT_TRUE(Reg()
                  .Apply("temporal translate", {&value}, params)
                  .status()
                  .IsOutOfRange());
  // Non-stream value rejected by the generic check.
  MediaValue audio = audiogen::Sine(8000, 1, 440, 0.5, 0.1);
  EXPECT_TRUE(Reg()
                  .Apply("temporal translate", {&audio}, params)
                  .status()
                  .IsInvalidArgument());
}

TEST(TimingOpsTest, ScaleStretchesTimes) {
  MidiSequence seq(480, 120.0);
  ASSERT_TRUE(seq.AddNote(100, 400, 60).ok());
  auto stream = seq.ToNoteStream();
  ASSERT_TRUE(stream.ok());
  MediaValue value = *stream;
  AttrMap params;
  params.SetInt("scale num", 2);
  params.SetInt("scale den", 1);
  auto result = Reg().Apply("temporal scale", {&value}, params);
  ASSERT_TRUE(result.ok());
  const TimedStream& out = std::get<TimedStream>(*result);
  EXPECT_EQ(out.at(0).start, 200);
  EXPECT_EQ(out.at(0).duration, 800);
}

// ---------------------------------------------------------------------------
// Derivation graph

TEST(GraphTest, EvaluatesAndCaches) {
  DerivationGraph graph;
  NodeId leaf = graph.AddLeaf(audiogen::Sine(8000, 1, 440, 0.2, 0.2), "tone");
  AttrMap params;
  params.SetDouble("target peak", 0.9);
  auto derived = graph.AddDerived("audio normalization", {leaf}, params,
                                  "normalized");
  ASSERT_TRUE(derived.ok());
  auto value = graph.Evaluate(*derived);
  ASSERT_TRUE(value.ok());
  const MediaValue* first_pointer = value->get();
  // Second evaluation returns the cached value.
  auto again = graph.Evaluate(*derived);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), first_pointer);
  graph.DropCache();
  auto fresh = graph.Evaluate(*derived);
  ASSERT_TRUE(fresh.ok());
  // The dropped value stays alive (and intact) through the earlier ref.
  EXPECT_NE(fresh->get(), first_pointer);
  EXPECT_EQ(KindOfValue(**value), MediaKind::kAudio);
}

TEST(GraphTest, ChainsAndDagSharing) {
  DerivationGraph graph;
  NodeId video = graph.AddLeaf(SmallVideo(10), "clip");
  AttrMap cut1;
  cut1.SetInt("start frame", 0);
  cut1.SetInt("frame count", 4);
  AttrMap cut2;
  cut2.SetInt("start frame", 6);
  cut2.SetInt("frame count", 4);
  auto a = graph.AddDerived("video edit", {video}, cut1, "cut1");
  auto b = graph.AddDerived("video edit", {video}, cut2, "cut2");
  ASSERT_TRUE(a.ok() && b.ok());
  auto joined = graph.AddDerived("video concat", {*a, *b}, AttrMap{}, "joined");
  ASSERT_TRUE(joined.ok());
  auto value = graph.Evaluate(*joined);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(std::get<VideoValue>(**value).frames.size(), 8u);
}

TEST(GraphTest, BadReferencesAndOps) {
  DerivationGraph graph;
  NodeId leaf = graph.AddLeaf(SmallVideo(2));
  EXPECT_TRUE(graph.AddDerived("no such op", {leaf}, AttrMap{})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(graph.AddDerived("video edit", {99}, AttrMap{})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(graph.AddDerived("video concat", {leaf}, AttrMap{})
                  .status()
                  .IsInvalidArgument());  // Arity.
  EXPECT_TRUE(graph.Evaluate(42).status().IsNotFound());
}

TEST(GraphTest, EvaluationErrorsPropagate) {
  DerivationGraph graph;
  NodeId leaf = graph.AddLeaf(SmallVideo(3));
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("frame count", 99);  // Out of range at evaluation time.
  auto derived = graph.AddDerived("video edit", {leaf}, params);
  ASSERT_TRUE(derived.ok());
  EXPECT_TRUE(graph.Evaluate(*derived).status().IsOutOfRange());
}

TEST(GraphTest, DerivationRecordIsTiny) {
  // The storage-saving claim: the record describing an edit is orders
  // of magnitude smaller than the expanded video.
  DerivationGraph graph;
  NodeId video = graph.AddLeaf(SmallVideo(30), "clip");
  AttrMap params;
  params.SetInt("start frame", 3);
  params.SetInt("frame count", 20);
  auto cut = graph.AddDerived("video edit", {video}, params, "cut");
  ASSERT_TRUE(cut.ok());
  auto record = graph.DerivationRecordBytes(*cut);
  ASSERT_TRUE(record.ok());
  auto value = graph.Evaluate(*cut);
  ASSERT_TRUE(value.ok());
  uint64_t expanded = ExpandedBytes(**value);
  EXPECT_LT(*record * 1000, expanded);
  EXPECT_LT(*record, 200u);
}

TEST(GraphTest, FeasibilityMeasuresExpansion) {
  DerivationGraph graph;
  NodeId audio =
      graph.AddLeaf(audiogen::Sine(44100, 2, 440, 0.4, 2.0), "tone");
  AttrMap params;
  params.SetDouble("gain", 0.5);
  auto derived = graph.AddDerived("audio gain", {audio}, params);
  ASSERT_TRUE(derived.ok());
  auto feasibility = graph.MeasureFeasibility(*derived);
  ASSERT_TRUE(feasibility.ok());
  EXPECT_GT(feasibility->presentation_seconds, 1.9);
  EXPECT_GT(feasibility->expansion_seconds, 0.0);
  // A simple gain over 2 s of audio is comfortably real-time on any
  // machine this test runs on.
  EXPECT_TRUE(feasibility->real_time);
}

TEST(ValueTest, KindAndSizeHelpers) {
  MediaValue audio = audiogen::Sine(8000, 2, 440, 0.5, 1.0);
  EXPECT_EQ(KindOfValue(audio), MediaKind::kAudio);
  EXPECT_EQ(ExpandedBytes(audio), 8000u * 2 * 2);
  EXPECT_NEAR(PresentationSeconds(audio), 1.0, 1e-9);
  MediaValue image = videogen::Still(10, 10, 1);
  EXPECT_EQ(KindOfValue(image), MediaKind::kImage);
  EXPECT_EQ(PresentationSeconds(image), 0.0);
  MediaValue video = SmallVideo(25);
  EXPECT_NEAR(PresentationSeconds(video), 1.0, 1e-9);
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>

#include "codec/pcm.h"
#include "playback/simulator.h"

namespace tbm {
namespace {

MediaDescriptor VideoDesc() {
  MediaDescriptor desc;
  desc.type_name = "video/tjpeg";
  desc.kind = MediaKind::kVideo;
  return desc;
}

// A constant-frequency stream: `count` elements of `bytes` bytes at
// `rate` elements/second.
TimedStream MakeStream(int64_t count, size_t bytes, int64_t rate) {
  TimedStream stream(VideoDesc(), TimeSystem(rate));
  for (int64_t i = 0; i < count; ++i) {
    EXPECT_TRUE(stream.AppendContiguous(Bytes(bytes, 1), 1).ok());
  }
  return stream;
}

TEST(PlaybackTest, FastPipelineMeetsAllDeadlines) {
  TimedStream video = MakeStream(100, 20000, 25);  // 0.5 MB/s for 4 s.
  PlaybackConfig config;
  config.seconds_per_megabyte = 0.001;  // ~1 GB/s service: trivially fast.
  // Even an infinitely fast pipeline needs a sliver of start delay: the
  // element due at t = 0 takes nonzero service time.
  config.buffer_delay_ms = 1.0;
  auto report = SimulatePlayback({&video}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_elements, 100);
  EXPECT_EQ(report->total_misses, 0);
  EXPECT_EQ(report->max_lateness_us, 0.0);
}

TEST(PlaybackTest, OverloadedPipelineMissesDeadlines) {
  // Service slower than the stream's data rate: the pipeline falls
  // behind and misses grow.
  TimedStream video = MakeStream(100, 100000, 25);  // 2.5 MB/s demand.
  PlaybackConfig config;
  config.seconds_per_megabyte = 1.0;  // 1 MB/s service: sustained overload.
  auto report = SimulatePlayback({&video}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->total_misses, 50);
  EXPECT_GT(report->max_lateness_us, 1e5);
}

TEST(PlaybackTest, BufferRemovesTransientJitter) {
  // Paper §5: "playback 'jitter' can be removed by the application just
  // prior to presentation." Load noise creates transient lateness; a
  // start-delay buffer absorbs it.
  TimedStream video = MakeStream(200, 20000, 25);
  PlaybackConfig noisy;
  noisy.seconds_per_megabyte = 0.5;   // Not overloaded on average...
  noisy.load_noise_us = 30000.0;      // ...but noisy per element.
  noisy.seed = 7;
  auto without_buffer = SimulatePlayback({&video}, noisy);
  ASSERT_TRUE(without_buffer.ok());
  EXPECT_GT(without_buffer->total_misses, 0);

  PlaybackConfig buffered = noisy;
  buffered.buffer_delay_ms = 500.0;
  auto with_buffer = SimulatePlayback({&video}, buffered);
  ASSERT_TRUE(with_buffer.ok());
  EXPECT_EQ(with_buffer->total_misses, 0);
  EXPECT_LT(with_buffer->mean_lateness_us,
            without_buffer->mean_lateness_us);
}

TEST(PlaybackTest, DeterministicForSameSeed) {
  TimedStream video = MakeStream(50, 30000, 25);
  PlaybackConfig config;
  config.load_noise_us = 10000.0;
  config.seed = 99;
  auto a = SimulatePlayback({&video}, config);
  auto b = SimulatePlayback({&video}, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->mean_lateness_us, b->mean_lateness_us);
  EXPECT_EQ(a->total_misses, b->total_misses);
  config.seed = 100;
  auto c = SimulatePlayback({&video}, config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->mean_lateness_us, c->mean_lateness_us);
}

TEST(PlaybackTest, MultiStreamSyncSkew) {
  TimedStream video = MakeStream(100, 20000, 25);
  // Audio as per-frame blocks (1764 sample pairs each).
  TimedStream audio = MakeStream(100, 1764 * 4, 25);
  PlaybackConfig config;
  config.seconds_per_megabyte = 0.01;
  auto report = SimulatePlayback({&video, &audio}, config);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->streams.size(), 2u);
  EXPECT_EQ(report->streams[0].elements, 100);
  EXPECT_EQ(report->streams[1].elements, 100);
  // With a fast pipeline, A/V skew stays tiny.
  EXPECT_LT(report->max_sync_skew_us, 1000.0);
}

TEST(PlaybackTest, MissToleranceFiltersSmallLateness) {
  TimedStream video = MakeStream(100, 20000, 25);
  PlaybackConfig config;
  config.seconds_per_megabyte = 0.3;
  config.load_noise_us = 2000.0;
  config.seed = 3;
  auto strict = SimulatePlayback({&video}, config);
  ASSERT_TRUE(strict.ok());
  config.miss_tolerance_us = 1e6;  // Tolerate a second.
  auto tolerant = SimulatePlayback({&video}, config);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_LE(tolerant->total_misses, strict->total_misses);
}

TEST(PlaybackTest, UtilizationReflectsLoad) {
  TimedStream light = MakeStream(100, 1000, 25);
  TimedStream heavy = MakeStream(100, 200000, 25);
  PlaybackConfig config;
  config.seconds_per_megabyte = 0.2;
  auto light_report = SimulatePlayback({&light}, config);
  auto heavy_report = SimulatePlayback({&heavy}, config);
  ASSERT_TRUE(light_report.ok() && heavy_report.ok());
  EXPECT_LT(light_report->utilization, heavy_report->utilization);
  EXPECT_LE(heavy_report->utilization, 1.0 + 1e-9);
}

TEST(PlaybackTest, InvalidInputs) {
  EXPECT_TRUE(SimulatePlayback({}, PlaybackConfig{})
                  .status()
                  .IsInvalidArgument());
  TimedStream empty(VideoDesc(), TimeSystem(25));
  EXPECT_TRUE(SimulatePlayback({&empty}, PlaybackConfig{})
                  .status()
                  .IsInvalidArgument());
  TimedStream ok_stream = MakeStream(2, 10, 25);
  PlaybackConfig bad;
  bad.buffer_delay_ms = -1;
  EXPECT_TRUE(
      SimulatePlayback({&ok_stream}, bad).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tbm

// Tests for the derivation evaluation engine: the thread pool, the
// sharded byte-budgeted expansion cache, and the concurrent scheduler
// (derive/scheduler.h) — determinism across thread counts, budget
// enforcement, invalidation after graph mutation, and failure modes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "base/thread_pool.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "derive/cache.h"
#include "derive/graph.h"
#include "derive/operators.h"
#include "derive/scheduler.h"

namespace tbm {
namespace {

AudioBuffer Tone(int64_t frames, int16_t amplitude = 8000) {
  AudioBuffer audio;
  audio.sample_rate = 8000;
  audio.channels = 1;
  std::vector<int16_t> samples(frames);
  for (int64_t i = 0; i < frames; ++i) {
    samples[i] = static_cast<int16_t>(
        amplitude * std::sin(2.0 * 3.14159265358979 * 440.0 * i / 8000.0));
  }
  audio.samples = std::move(samples);
  return audio;
}

ValueRef MakeAudioValue(int64_t frames) {
  return std::make_shared<const MediaValue>(Tone(frames));
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  // Destructor drains before joining.
  // (Scope the pool to force the drain now.)
  {
    ThreadPool inner(2);
    for (int i = 0; i < 50; ++i) {
      inner.Submit([&count] { count.fetch_add(1); });
    }
  }
  while (count.load() < 150) std::this_thread::yield();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

// ---------------------------------------------------------------------------
// ExpansionCache

TEST(ExpansionCacheTest, HitMissAndRecency) {
  ExpansionCache cache(1 << 20, /*shards=*/1);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  ValueRef v = MakeAudioValue(16);
  cache.Insert(1, v, 100, 0.01);
  ValueRef hit = cache.Lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), v.get());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_cached, 100u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ExpansionCacheTest, NeverExceedsByteBudget) {
  constexpr uint64_t kBudget = 1000;
  ExpansionCache cache(kBudget, /*shards=*/1);
  for (NodeId id = 0; id < 64; ++id) {
    cache.Insert(id, MakeAudioValue(8), 150, 0.001);
    EXPECT_LE(cache.stats().bytes_cached, kBudget) << "after insert " << id;
  }
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_cached, kBudget);
  // 6 * 150 = 900 fits; a 7th would not.
  EXPECT_EQ(stats.entries, 6u);
}

TEST(ExpansionCacheTest, ShardedBudgetHoldsGlobally) {
  constexpr uint64_t kBudget = 4096;
  ExpansionCache cache(kBudget, /*shards=*/4);
  for (NodeId id = 0; id < 256; ++id) {
    cache.Insert(id, MakeAudioValue(8), 100, 0.001);
    EXPECT_LE(cache.stats().bytes_cached, kBudget);
  }
}

TEST(ExpansionCacheTest, OversizeValueIsRejectedNotCached) {
  ExpansionCache cache(100, /*shards=*/1);
  cache.Insert(1, MakeAudioValue(8), 500, 0.01);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.oversize_rejects, 1u);
  EXPECT_EQ(stats.bytes_cached, 0u);
}

TEST(ExpansionCacheTest, CostAwareEvictionKeepsExpensiveEntries) {
  // Two entries of equal size and equal (cold) recency: the cheap one
  // should be evicted to make room, the expensive one kept.
  ExpansionCache cache(1000, /*shards=*/1);
  cache.Insert(1, MakeAudioValue(8), 400, /*cost_seconds=*/5.0);   // pricey
  cache.Insert(2, MakeAudioValue(8), 400, /*cost_seconds=*/0.001); // cheap
  cache.Insert(3, MakeAudioValue(8), 400, 0.01);  // forces one eviction
  EXPECT_NE(cache.Lookup(1), nullptr) << "expensive entry was evicted";
  EXPECT_EQ(cache.Lookup(2), nullptr) << "cheap entry should have gone";
}

TEST(ExpansionCacheTest, EvictedValueStaysAliveThroughRef) {
  ExpansionCache cache(300, /*shards=*/1);
  cache.Insert(1, MakeAudioValue(16), 200, 0.01);
  ValueRef held = cache.Lookup(1);
  ASSERT_NE(held, nullptr);
  cache.Insert(2, MakeAudioValue(16), 200, 0.01);  // evicts 1
  EXPECT_EQ(cache.Lookup(1), nullptr);
  const AudioBuffer* audio = std::get_if<AudioBuffer>(held.get());
  ASSERT_NE(audio, nullptr);
  EXPECT_EQ(audio->samples.size(), 16u);
}

TEST(ExpansionCacheTest, EraseAndClear) {
  ExpansionCache cache(1 << 20, /*shards=*/2);
  cache.Insert(1, MakeAudioValue(8), 100, 0.01);
  cache.Insert(2, MakeAudioValue(8), 100, 0.01);
  cache.Erase(1);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup(2), nullptr);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.bytes_cached, 0u);
  EXPECT_EQ(stats.invalidations, 2u);
}

// ---------------------------------------------------------------------------
// DerivationEngine

// A fan-out graph: one source tone feeding `branches` independent gain
// stages, concatenated pairwise down to a single root.
struct FanOut {
  DerivationGraph graph;
  NodeId root = 0;
};

FanOut MakeFanOut(int branches) {
  FanOut f;
  NodeId source = f.graph.AddLeaf(Tone(2048), "source");
  std::vector<NodeId> tops;
  for (int i = 0; i < branches; ++i) {
    AttrMap params;
    params.SetDouble("gain", 1.0 / (i + 2));
    tops.push_back(*f.graph.AddDerived("audio gain", {source}, params,
                                       "gain" + std::to_string(i)));
  }
  while (tops.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < tops.size(); i += 2) {
      next.push_back(*f.graph.AddDerived("audio concat",
                                         {tops[i], tops[i + 1]}, AttrMap{}));
    }
    if (tops.size() % 2 == 1) next.push_back(tops.back());
    tops = std::move(next);
  }
  f.root = tops.front();
  return f;
}

const AudioBuffer& AsAudio(const ValueRef& value) {
  const AudioBuffer* audio = std::get_if<AudioBuffer>(value.get());
  EXPECT_NE(audio, nullptr);
  return *audio;
}

TEST(EngineTest, ParallelResultMatchesSerialBitwise) {
  FanOut f = MakeFanOut(9);  // Odd count exercises the carry branch.
  EvalOptions serial;
  serial.threads = 1;
  DerivationEngine engine1(&f.graph, serial);
  EvalOptions wide;
  wide.threads = 4;
  DerivationEngine engine4(&f.graph, wide);

  auto serial_value = engine1.Evaluate(f.root);
  ASSERT_TRUE(serial_value.ok()) << serial_value.status();
  auto parallel_value = engine4.Evaluate(f.root);
  ASSERT_TRUE(parallel_value.ok()) << parallel_value.status();
  EXPECT_EQ(AsAudio(*serial_value).samples, AsAudio(*parallel_value).samples);

  // Repeated parallel evaluations stay stable (and come from cache).
  auto again = engine4.Evaluate(f.root);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), parallel_value->get());
  EXPECT_GT(engine4.stats().cache_hits, 0u);
}

TEST(EngineTest, ZeroThreadsResolvesToHardware) {
  DerivationGraph graph;
  EvalOptions options;
  options.threads = 0;
  DerivationEngine engine(&graph, options);
  EXPECT_EQ(engine.threads(), ThreadPool::DefaultThreads());
}

TEST(EngineTest, EvaluationRespectsCacheBudget) {
  FanOut f = MakeFanOut(16);
  EvalOptions options;
  options.threads = 2;
  options.cache_budget_bytes = 16 << 10;  // Far less than the graph needs.
  options.cache_shards = 2;
  DerivationEngine engine(&f.graph, options);
  auto value = engine.Evaluate(f.root);
  ASSERT_TRUE(value.ok()) << value.status();
  EvalStats stats = engine.stats();
  EXPECT_LE(stats.bytes_cached, options.cache_budget_bytes);
  EXPECT_EQ(stats.cache_budget_bytes, options.cache_budget_bytes);
  // The squeezed cache had to evict or reject along the way.
  CacheStats raw_total;
  EXPECT_TRUE(stats.cache_evictions > 0 || stats.cache_misses > 0);
  (void)raw_total;
}

TEST(EngineTest, InvalidationAfterUpdateParams) {
  DerivationGraph graph;
  NodeId source = graph.AddLeaf(Tone(512), "source");
  AttrMap quiet;
  quiet.SetDouble("gain", 0.5);
  NodeId gain = *graph.AddDerived("audio gain", {source}, quiet, "gain");
  NodeId out = *graph.AddDerived("audio concat", {gain, gain}, AttrMap{});

  DerivationEngine engine(&graph, EvalOptions{});
  auto before = engine.Evaluate(out);
  ASSERT_TRUE(before.ok());

  AttrMap quieter;
  quieter.SetDouble("gain", 0.1);
  ASSERT_TRUE(graph.UpdateParams(gain, std::move(quieter)).ok());

  auto after = engine.Evaluate(out);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(AsAudio(*before).samples, AsAudio(*after).samples)
      << "stale cached expansion served after UpdateParams";
  EXPECT_GT(engine.stats().entries_invalidated, 0u);
}

TEST(EngineTest, AddDerivedAfterEvaluationIsEvaluable) {
  DerivationGraph graph;
  NodeId source = graph.AddLeaf(Tone(512), "source");
  AttrMap params;
  params.SetDouble("gain", 0.7);
  NodeId gain = *graph.AddDerived("audio gain", {source}, params);

  DerivationEngine engine(&graph, EvalOptions{});
  ASSERT_TRUE(engine.Evaluate(gain).ok());

  // Extend the graph under the same engine: the new node must evaluate
  // (reusing the cached input where possible).
  NodeId doubled = *graph.AddDerived("audio concat", {gain, gain}, AttrMap{});
  auto value = engine.Evaluate(doubled);
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(AsAudio(*value).samples.size(), 1024u);
}

TEST(EngineTest, ExplicitInvalidateDropsDependents) {
  FanOut f = MakeFanOut(4);
  DerivationEngine engine(&f.graph, EvalOptions{});
  ASSERT_TRUE(engine.Evaluate(f.root).ok());
  uint64_t miss_before = engine.stats().cache_misses;
  ASSERT_TRUE(engine.Invalidate(f.root).ok());
  ASSERT_TRUE(engine.Evaluate(f.root).ok());
  // Only the root was invalidated; its inputs stay cached, so exactly
  // one more miss (the root) is incurred.
  EXPECT_EQ(engine.stats().cache_misses, miss_before + 1);
  EXPECT_FALSE(engine.Invalidate(9999).ok());
}

TEST(EngineTest, ErrorsPropagateFromAnyThreadCount) {
  for (int threads : {1, 4}) {
    DerivationGraph graph;
    NodeId video_leaf = graph.AddLeaf(Tone(64), "audio");
    // "video edit" on audio fails at apply time (kind mismatch).
    AttrMap cut;
    cut.SetInt("start frame", 0);
    cut.SetInt("frame count", 1);
    auto bad = graph.AddDerived("video edit", {video_leaf}, cut, "bad");
    ASSERT_TRUE(bad.ok());
    EvalOptions options;
    options.threads = threads;
    DerivationEngine engine(&graph, options);
    auto value = engine.Evaluate(*bad);
    EXPECT_FALSE(value.ok()) << "threads=" << threads;
  }
}

TEST(EngineTest, FailFastStopsAndNonFailFastFinishesBranches) {
  // One poisoned branch among healthy ones; with fail_fast=false every
  // healthy branch still lands in the cache.
  DerivationGraph graph;
  NodeId source = graph.AddLeaf(Tone(512), "source");
  std::vector<NodeId> branches;
  for (int i = 0; i < 6; ++i) {
    AttrMap params;
    params.SetDouble("gain", 1.0 / (i + 2));
    branches.push_back(*graph.AddDerived("audio gain", {source}, params));
  }
  AttrMap cut;
  cut.SetInt("start frame", 0);
  cut.SetInt("frame count", 1);
  NodeId poison = *graph.AddDerived("video edit", {source}, cut, "poison");
  NodeId joined = branches[0];
  for (size_t i = 1; i < branches.size(); ++i) {
    joined = *graph.AddDerived("audio concat", {joined, branches[i]},
                               AttrMap{});
  }
  // Root depends on the poisoned node, so evaluation must fail…
  NodeId root = *graph.AddDerived("audio concat", {joined, poison}, AttrMap{});

  EvalOptions thorough;
  thorough.threads = 2;
  thorough.fail_fast = false;
  DerivationEngine engine(&graph, thorough);
  auto value = engine.Evaluate(root);
  EXPECT_FALSE(value.ok());
  // …but every healthy branch was still expanded and cached: a repeat
  // evaluation of the healthy subtree is pure cache hits.
  uint64_t misses = engine.stats().cache_misses;
  auto healthy = engine.Evaluate(joined);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(engine.stats().cache_misses, misses);
}

TEST(EngineTest, StatsCountWork) {
  FanOut f = MakeFanOut(4);
  EvalOptions options;
  options.threads = 2;
  DerivationEngine engine(&f.graph, options);
  ASSERT_TRUE(engine.Evaluate(f.root).ok());
  EvalStats stats = engine.stats();
  EXPECT_EQ(stats.evaluations, 1u);
  // 4 gains + 3 concats.
  EXPECT_EQ(stats.nodes_evaluated, 7u);
  EXPECT_EQ(stats.per_op.at("audio gain").invocations, 4u);
  EXPECT_EQ(stats.per_op.at("audio concat").invocations, 3u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(EngineTest, ConcurrentEvaluateCallsAreSafe) {
  FanOut f = MakeFanOut(8);
  EvalOptions options;
  options.threads = 2;
  DerivationEngine engine(&f.graph, options);
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&] {
      auto value = engine.Evaluate(f.root);
      if (!value.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "base/thread_pool.h"
#include "blob/cas_store.h"
#include "blob/chunk_reader.h"
#include "blob/fault_store.h"
#include "blob/file_store.h"
#include "blob/memory_store.h"
#include "blob/paged_store.h"
#include "blob/prefetcher.h"
#include "blob/read_policy.h"
#include "codec/synthetic.h"
#include "db/codec_bridge.h"
#include "db/database.h"
#include "interp/streaming.h"
#include "playback/streaming.h"

namespace tbm {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 0) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>((i * 31 + seed) & 0xFF);
  }
  return data;
}

std::string Scratch(const char* tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/streaming_" + tag + "_" +
                    std::to_string(static_cast<long>(::getpid())) + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// ChunkReader contract across all four stores.

enum class StoreKind { kMemory, kPaged, kFile, kCas };

std::unique_ptr<BlobStore> MakeStore(StoreKind kind,
                                     const std::string& scratch) {
  switch (kind) {
    case StoreKind::kMemory:
      return std::make_unique<MemoryBlobStore>();
    case StoreKind::kPaged:
      return std::make_unique<PagedBlobStore>(
          std::make_unique<MemoryPageDevice>(64));  // payload 56 bytes
    case StoreKind::kFile: {
      auto store = FileBlobStore::Open(scratch);
      EXPECT_TRUE(store.ok()) << store.status();
      return std::move(*store);
    }
    case StoreKind::kCas: {
      auto store = CasBlobStore::Open(scratch);
      EXPECT_TRUE(store.ok()) << store.status();
      return std::move(*store);
    }
  }
  return nullptr;
}

class ChunkReaderContract : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    scratch_ = Scratch("chunks");
    store_ = MakeStore(GetParam(), scratch_);
  }

  std::string scratch_;
  std::unique_ptr<BlobStore> store_;
};

TEST_P(ChunkReaderContract, ChunksConcatenateToWholeBlob) {
  Bytes data = Pattern(5000, 7);
  auto id = store_->PushAll(data);
  ASSERT_TRUE(id.ok()) << id.status();

  for (uint64_t chunk_size : {64u, 100u, 999u, 5000u, 10000u}) {
    ChunkReaderOptions options;
    options.chunk_size = chunk_size;
    auto reader = store_->OpenChunkReader(*id, options);
    ASSERT_TRUE(reader.ok()) << reader.status();
    EXPECT_EQ((*reader)->blob_size(), 5000u);
    EXPECT_GE((*reader)->chunk_size(), chunk_size);

    Bytes joined;
    for (uint64_t c = 0; c < (*reader)->chunk_count(); ++c) {
      auto chunk = (*reader)->ReadChunk(c);
      ASSERT_TRUE(chunk.ok()) << chunk.status();
      EXPECT_EQ(chunk->size(), (*reader)->ChunkRange(c).length);
      joined.insert(joined.end(), chunk->begin(), chunk->end());
    }
    EXPECT_EQ(joined, data) << "chunk_size=" << chunk_size;
    // Past-the-end chunk index is OutOfRange, not UB.
    EXPECT_TRUE((*reader)
                    ->ReadChunk((*reader)->chunk_count())
                    .status()
                    .IsOutOfRange());
  }
}

TEST_P(ChunkReaderContract, LastChunkIsTruncated) {
  auto id = store_->PushAll(Pattern(250));
  ASSERT_TRUE(id.ok()) << id.status();
  ChunkReaderOptions options;
  options.chunk_size = 100;
  auto reader = store_->OpenChunkReader(*id, options);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const uint64_t last = (*reader)->chunk_count() - 1;
  EXPECT_EQ((*reader)->ChunkRange(last).end(), 250u);
  auto chunk = (*reader)->ReadChunk(last);
  ASSERT_TRUE(chunk.ok());
  EXPECT_LT(chunk->size(), (*reader)->chunk_size());
}

TEST_P(ChunkReaderContract, ZeroChunkSizeRejected) {
  auto id = store_->PushAll(Pattern(10));
  ASSERT_TRUE(id.ok()) << id.status();
  ChunkReaderOptions options;
  options.chunk_size = 0;
  EXPECT_TRUE(
      store_->OpenChunkReader(*id, options).status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(AllStores, ChunkReaderContract,
                         ::testing::Values(StoreKind::kMemory,
                                           StoreKind::kPaged,
                                           StoreKind::kFile,
                                           StoreKind::kCas));

// The CAS store behind the fault decorator: chunked reads still pass
// through retry/backoff, and injected faults recover against the
// mmap-backed read path.
TEST(CasStreamingTest, FaultWrappedCasRecoversWithRetries) {
  auto cas = CasBlobStore::Open(Scratch("cas_fault"));
  ASSERT_TRUE(cas.ok()) << cas.status();
  auto fault = std::make_unique<FaultInjectingStore>(std::move(*cas));
  Bytes data = Pattern(3000, 5);
  auto id = fault->PushAll(data);
  ASSERT_TRUE(id.ok()) << id.status();

  fault->FailNextReads(2);
  ReadPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_us = 10.0;  // Keep the test quick.
  policy.backoff_max_us = 50.0;
  auto read = ReadWithPolicy(*fault, *id, ByteRange{0, 3000}, policy);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, data);
  EXPECT_EQ(fault->injected_read_faults(), 2u);
}

// Concurrent pulls of the same CAS blob from many threads (in the CI
// TSan filter): every reader sees identical bytes, all zero-copy views
// of one shared mmap.
TEST(CasStreamingTest, ConcurrentPullsShareOneMapping) {
  auto cas = CasBlobStore::Open(Scratch("cas_pulls"));
  ASSERT_TRUE(cas.ok()) << cas.status();
  CasBlobStore* store = cas->get();
  Bytes data = Pattern(64 * 1024, 11);
  auto id = store->PushAll(data);
  ASSERT_TRUE(id.ok()) << id.status();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<BufferSlice> slices(kThreads);
  std::vector<Status> statuses(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        uint64_t offset = static_cast<uint64_t>((t * 997 + i * 131) %
                                                (64 * 1024 - 256));
        auto read = store->Read(*id, ByteRange{offset, 256});
        if (!read.ok()) {
          statuses[t] = read.status();
          return;
        }
        if (!std::equal(read->begin(), read->end(),
                        data.begin() + static_cast<long>(offset))) {
          statuses[t] = Status::Internal("bytes mismatch");
          return;
        }
        slices[t] = *read;  // Keep the last slice alive past the loop.
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(statuses[t].ok()) << statuses[t];
  }
  // All views alias the single mapping.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_TRUE(slices[t].SharesBufferWith(slices[0]));
  }
}

TEST(ChunkReaderTest, PagedStoreAlignsChunksToPagePayloads) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(64));
  auto id = store.PushAll(Pattern(1000));
  ASSERT_TRUE(id.ok());
  ChunkReaderOptions options;
  options.chunk_size = 100;  // Not a multiple of the 56-byte payload.
  auto reader = store.OpenChunkReader(*id, options);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->chunk_size() % store.payload_per_page(), 0u);
  EXPECT_GE((*reader)->chunk_size(), 100u);
}

// ---------------------------------------------------------------------------
// Retry / backoff / timeout under scripted fault sequences.

ReadPolicy FastRetryPolicy(int retries) {
  ReadPolicy policy;
  policy.max_retries = retries;
  policy.backoff_initial_us = 10.0;  // Keep tests quick.
  policy.backoff_max_us = 50.0;
  return policy;
}

TEST(ReadPolicyTest, RetriesRecoverFromTransientFaults) {
  auto fault =
      std::make_unique<FaultInjectingStore>(std::make_unique<MemoryBlobStore>());
  Bytes data = Pattern(300);
  auto id = fault->PushAll(data);
  ASSERT_TRUE(id.ok());

  fault->FailNextReads(2);
  auto read = ReadWithPolicy(*fault, *id, ByteRange{0, 300},
                             FastRetryPolicy(3));
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, data);
  EXPECT_EQ(fault->injected_read_faults(), 2u);
  EXPECT_EQ(fault->reads_seen(), 3u);  // 2 failures + 1 success.
}

TEST(ReadPolicyTest, GivesUpWhenRetriesExhausted) {
  auto fault =
      std::make_unique<FaultInjectingStore>(std::make_unique<MemoryBlobStore>());
  auto id = fault->PushAll(Pattern(10));
  ASSERT_TRUE(id.ok());

  fault->FailNextReads(5);
  auto read = ReadWithPolicy(*fault, *id, ByteRange{0, 10},
                             FastRetryPolicy(2));
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsIOError());
  EXPECT_EQ(fault->reads_seen(), 3u);  // 1 attempt + 2 retries, all failed.
}

TEST(ReadPolicyTest, DefiniteErrorsAreNotRetried) {
  auto fault =
      std::make_unique<FaultInjectingStore>(std::make_unique<MemoryBlobStore>());
  auto read = ReadWithPolicy(*fault, 999, ByteRange{0, 10},
                             FastRetryPolicy(5));
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsNotFound());
  EXPECT_EQ(fault->reads_seen(), 1u);  // No retry can make the BLOB appear.
}

TEST(ReadPolicyTest, CorruptionRetriedOnlyWhenOpted) {
  FaultConfig config;
  config.code = StatusCode::kCorruption;
  auto fault = std::make_unique<FaultInjectingStore>(
      std::make_unique<MemoryBlobStore>(), config);
  auto id = fault->PushAll(Pattern(10));
  ASSERT_TRUE(id.ok());

  fault->FailNextReads(1);
  auto read =
      ReadWithPolicy(*fault, *id, ByteRange{0, 10}, FastRetryPolicy(3));
  EXPECT_TRUE(read.status().IsCorruption());  // Not transient by default.

  fault->FailNextReads(1);
  ReadPolicy lenient = FastRetryPolicy(3);
  lenient.retry_corruption = true;
  read = ReadWithPolicy(*fault, *id, ByteRange{0, 10}, lenient);
  EXPECT_TRUE(read.ok()) << read.status();
}

TEST(ReadPolicyTest, TimeoutBoundsTotalRetryBudget) {
  FaultConfig config;
  config.read_fault_rate = 1.0;  // Every read fails.
  auto fault = std::make_unique<FaultInjectingStore>(
      std::make_unique<MemoryBlobStore>(), config);
  auto id = fault->inner()->PushAll(Pattern(10));
  ASSERT_TRUE(id.ok());

  ReadPolicy policy;
  policy.max_retries = 1'000'000;
  policy.backoff_initial_us = 2'000.0;
  policy.backoff_multiplier = 1.0;
  policy.timeout_us = 10'000.0;
  auto read = ReadWithPolicy(*fault, *id, ByteRange{0, 10}, policy);
  ASSERT_FALSE(read.ok());
  // The budget, not the retry count, stopped it: far fewer than the
  // allowed million attempts ran.
  EXPECT_LT(fault->reads_seen(), 100u);
}

// ---------------------------------------------------------------------------
// AsyncPrefetcher (in the CI TSan filter).

class PrefetcherTest : public ::testing::Test {};

TEST(PrefetcherTest, DeliversIdenticalBytesAcrossDepths) {
  MemoryBlobStore store;
  Bytes data = Pattern(40'000, 3);
  auto id = store.PushAll(data);
  ASSERT_TRUE(id.ok());

  ThreadPool pool(4);
  for (int depth : {0, 1, 4, 16}) {
    ChunkReaderOptions reader_options;
    reader_options.chunk_size = 1024;
    auto reader = store.OpenChunkReader(*id, reader_options);
    ASSERT_TRUE(reader.ok());
    PrefetchOptions options;
    options.depth = depth;
    AsyncPrefetcher prefetcher(std::move(*reader),
                               depth == 0 ? nullptr : &pool, options);
    Bytes joined;
    while (!prefetcher.Done()) {
      auto chunk = prefetcher.Next();
      ASSERT_TRUE(chunk.ok()) << chunk.status();
      joined.insert(joined.end(), chunk->begin(), chunk->end());
    }
    EXPECT_EQ(joined, data) << "depth=" << depth;
    PrefetchStats stats = prefetcher.stats();
    EXPECT_EQ(stats.chunks_delivered, prefetcher.chunk_count());
    EXPECT_EQ(stats.bytes_delivered, data.size());
    EXPECT_EQ(stats.read_errors, 0u);
    EXPECT_TRUE(prefetcher.Next().status().IsOutOfRange());
  }
}

TEST(PrefetcherTest, TightByteBudgetStillCompletes) {
  MemoryBlobStore store;
  Bytes data = Pattern(10'000, 9);
  auto id = store.PushAll(data);
  ASSERT_TRUE(id.ok());

  ThreadPool pool(4);
  ChunkReaderOptions reader_options;
  reader_options.chunk_size = 512;
  auto reader = store.OpenChunkReader(*id, reader_options);
  ASSERT_TRUE(reader.ok());
  PrefetchOptions options;
  options.depth = 8;
  options.max_inflight_bytes = 1;  // Every chunk exceeds the budget.
  AsyncPrefetcher prefetcher(std::move(*reader), &pool, options);
  Bytes joined;
  while (!prefetcher.Done()) {
    auto chunk = prefetcher.Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    joined.insert(joined.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(joined, data);
}

TEST(PrefetcherTest, ReadErrorsSurfacePerChunk) {
  auto fault =
      std::make_unique<FaultInjectingStore>(std::make_unique<MemoryBlobStore>());
  auto id = fault->PushAll(Pattern(4096));
  ASSERT_TRUE(id.ok());

  ChunkReaderOptions reader_options;
  reader_options.chunk_size = 1024;  // 4 chunks, no retries.
  auto reader = fault->OpenChunkReader(*id, reader_options);
  ASSERT_TRUE(reader.ok());
  fault->FailNextReads(1);

  // Synchronous mode so exactly the first chunk read hits the fault.
  AsyncPrefetcher prefetcher(std::move(*reader), nullptr, {});
  int failures = 0, successes = 0;
  while (!prefetcher.Done()) {
    auto chunk = prefetcher.Next();
    chunk.ok() ? ++successes : ++failures;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(successes, 3);
  EXPECT_EQ(prefetcher.stats().read_errors, 1u);
}

// ---------------------------------------------------------------------------
// Concurrent chunk readers over the paged store with a small page
// cache forcing eviction (in the CI TSan filter).

TEST(ConcurrentChunkTest, PagedEvictionUnderConcurrentReaders) {
  std::string scratch = Scratch("paged");
  std::filesystem::create_directories(scratch);
  auto device = FilePageDevice::Open(scratch + "/pages.tbm", 128);
  ASSERT_TRUE(device.ok()) << device.status();
  PagedBlobStore store(std::move(*device));
  store.set_page_cache_capacity(4);  // Far fewer than the blob's pages.

  Bytes data = Pattern(30'000, 11);
  auto id = store.PushAll(data);
  ASSERT_TRUE(id.ok());

  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kReaders, 0);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      ChunkReaderOptions options;
      options.chunk_size = 1000;
      auto reader = store.OpenChunkReader(*id, options);
      if (!reader.ok()) {
        mismatches[t] = -1;
        return;
      }
      Bytes joined;
      for (uint64_t c = 0; c < (*reader)->chunk_count(); ++c) {
        auto chunk = (*reader)->ReadChunk(c);
        if (!chunk.ok()) {
          mismatches[t] = -2;
          return;
        }
        joined.insert(joined.end(), chunk->begin(), chunk->end());
      }
      mismatches[t] = joined == data ? 0 : 1;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kReaders; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "reader " << t;
  }

  PageCacheStats stats = store.page_cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_pages, 4u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(PageCacheTest, HitsAndReuseInvalidation) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(64));
  store.set_page_cache_capacity(64);
  auto id = store.PushAll(Pattern(500, 1));
  ASSERT_TRUE(id.ok());

  ASSERT_TRUE(store.Read(*id, ByteRange{0, 500}).ok());
  uint64_t misses_after_first = store.page_cache_stats().misses;
  ASSERT_TRUE(store.Read(*id, ByteRange{0, 500}).ok());
  PageCacheStats stats = store.page_cache_stats();
  EXPECT_EQ(stats.misses, misses_after_first);  // Second pass all hits.
  EXPECT_GT(stats.hits, 0u);

  // Deleting and re-pushing reuses the freed pages; the cached copies
  // must not serve the deleted BLOB's bytes.
  ASSERT_TRUE(store.Delete(*id).ok());
  auto fresh = store.PushAll(Pattern(500, 2));
  ASSERT_TRUE(fresh.ok());
  auto all = store.ReadAll(*fresh);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, Pattern(500, 2));

  store.set_page_cache_capacity(0);  // Disable and drop.
  EXPECT_EQ(store.page_cache_stats().resident_pages, 0u);
  EXPECT_TRUE(store.Read(*fresh, ByteRange{0, 100}).ok());
}

// ---------------------------------------------------------------------------
// Fault injection *below* the paged store: failures strike during LRU
// cache refills, so these tests pin the no-poisoned-residents
// invariant (regression tests for the FaultInjectingStore × page-cache
// composition).

TEST(PageCacheFaultTest, FaultedRefillLeavesNothingResident) {
  auto device = std::make_unique<FaultInjectingPageDevice>(
      std::make_unique<MemoryPageDevice>(64));
  FaultInjectingPageDevice* faults = device.get();
  PagedBlobStore store(std::move(device));
  store.set_page_cache_capacity(16);

  Bytes data = Pattern(300, 3);  // ~6 pages of 56-byte payloads.
  auto id = store.PushAll(data);
  ASSERT_TRUE(id.ok());

  // Fail the second page's refill: page 0 caches legitimately, page 1
  // faults mid-read. The failed refill must not leave any entry for
  // page 1 resident (a poisoned partial/stale payload).
  faults->FailNextPageReads(0);
  uint64_t resident_before = store.page_cache_stats().resident_pages;
  EXPECT_EQ(resident_before, 0u);
  faults->FailNextPageReads(1);
  // First page read fails immediately; nothing may become resident.
  auto failed = store.Read(*id, ByteRange{0, 300});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  EXPECT_EQ(store.page_cache_stats().resident_pages, 0u);

  // A multi-page read faulting on a later page keeps only the pages
  // that were read successfully before the fault.
  faults->FailNextPageReads(0);
  auto first_page = store.Read(*id, ByteRange{0, 10});  // Page 0 only.
  ASSERT_TRUE(first_page.ok());
  EXPECT_EQ(store.page_cache_stats().resident_pages, 1u);
  faults->FailNextPageReads(1);  // Next device read (page 1) faults.
  auto partial = store.Read(*id, ByteRange{0, 300});
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(store.page_cache_stats().resident_pages, 1u);

  // After the fault clears, the full read succeeds and every byte is
  // correct — no stale payload survived the failed attempts.
  auto recovered = store.Read(*id, ByteRange{0, 300});
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(std::equal(recovered->begin(), recovered->end(), data.begin()));
  EXPECT_EQ(faults->injected_read_faults(), 2u);
}

TEST(PageCacheFaultTest, DeletePurgesResidentPages) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(64));
  store.set_page_cache_capacity(32);

  auto id = store.PushAll(Pattern(400, 5));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Read(*id, ByteRange{0, 400}).ok());
  ASSERT_GT(store.page_cache_stats().resident_pages, 0u);

  // Deleting the BLOB frees its pages for reuse; their cached payloads
  // must leave with them, not linger as stale residents.
  ASSERT_TRUE(store.Delete(*id).ok());
  EXPECT_EQ(store.page_cache_stats().resident_pages, 0u);

  // The freed pages are reused by the next BLOB; reads see the new
  // bytes, never the deleted BLOB's cached payloads.
  Bytes fresh = Pattern(400, 9);
  auto next = store.PushAll(fresh);
  ASSERT_TRUE(next.ok());
  auto read = store.Read(*next, ByteRange{0, 400});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), fresh.begin()));
}

TEST(PageCacheFaultTest, DefragmentPurgesOldPagesFromCache) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(64));
  store.set_page_cache_capacity(64);

  // Interleave two in-flight pushes so the survivor is fragmented.
  auto push_a = store.StartPush();
  auto push_b = store.StartPush();
  ASSERT_TRUE(push_a.ok());
  ASSERT_TRUE(push_b.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE((*push_a)->Push(Pattern(56, static_cast<uint8_t>(i))).ok());
    ASSERT_TRUE(
        (*push_b)->Push(Pattern(56, static_cast<uint8_t>(100 + i))).ok());
  }
  auto a = (*push_a)->Finish();
  auto b = (*push_b)->Finish();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(store.Delete(*b).ok());
  auto frag = store.Fragmentation(*a);
  ASSERT_TRUE(frag.ok());
  ASSERT_GT(*frag, 0.0);

  Bytes expected;
  for (int i = 0; i < 6; ++i) {
    Bytes part = Pattern(56, static_cast<uint8_t>(i));
    expected.insert(expected.end(), part.begin(), part.end());
  }
  ASSERT_TRUE(store.Read(*a, ByteRange{0, expected.size()}).ok());
  ASSERT_GT(store.page_cache_stats().resident_pages, 0u);

  // Defragment rewrites the BLOB onto fresh contiguous pages and frees
  // the old ones; their cached payloads must be purged so later reuse
  // of those page indexes can't surface stale bytes.
  ASSERT_TRUE(store.Defragment(*a).ok());
  EXPECT_EQ(store.page_cache_stats().resident_pages, 0u);

  auto read = store.Read(*a, ByteRange{0, expected.size()});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(std::equal(read->begin(), read->end(), expected.begin()));

  frag = store.Fragmentation(*a);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(*frag, 0.0);
}

TEST(PageCacheFaultTest, FaultedPushDoesNotLeakPages) {
  FaultConfig config;
  config.append_fault_rate = 1.0;  // Every WritePage faults.
  auto faulty = std::make_unique<FaultInjectingPageDevice>(
      std::make_unique<MemoryPageDevice>(64), config);
  PagedBlobStore store(std::move(faulty));

  auto push = store.StartPush();
  ASSERT_TRUE(push.ok());
  ASSERT_FALSE((*push)->Push(Pattern(200)).ok());
  ASSERT_TRUE((*push)->Abort().ok());
  EXPECT_TRUE(store.List().empty());  // Nothing published.

  // The faulted push must not strand its freshly acquired page: the
  // page returns to the free list, so repeating the faulting push
  // never grows the device further (physical_bytes stays flat).
  uint64_t physical_after_fault = store.Stats().physical_bytes;
  auto again = store.StartPush();
  ASSERT_TRUE(again.ok());
  ASSERT_FALSE((*again)->Push(Pattern(200)).ok());
  EXPECT_EQ(store.Stats().physical_bytes, physical_after_fault);
}

// ---------------------------------------------------------------------------
// ElementStream + streamed playback under injected faults (in the CI
// TSan filter).

Interpretation ContiguousInterp(BlobStore* store, int elements,
                                size_t element_bytes, BlobId* blob_out) {
  auto push = store->StartPush();
  EXPECT_TRUE(push.ok());
  InterpretedObject object;
  object.name = "v";
  object.descriptor.type_name = "application/test";
  object.descriptor.kind = MediaKind::kVideo;
  object.time_system = TimeSystem(25);
  for (int i = 0; i < elements; ++i) {
    Bytes data = Pattern(element_bytes, static_cast<uint8_t>(i));
    EXPECT_TRUE((*push)->Push(data).ok());
    object.elements.push_back(
        {i, i, 1, ByteRange{i * element_bytes, element_bytes}, {}});
  }
  auto id = (*push)->Finish();
  EXPECT_TRUE(id.ok());
  Interpretation interp(*id);
  EXPECT_TRUE(interp.AddObject(std::move(object)).ok());
  if (blob_out != nullptr) *blob_out = *id;
  return interp;
}

TEST(StreamingFaultTest, StreamedMaterializeMatchesDirect) {
  MemoryBlobStore store;
  Interpretation interp = ContiguousInterp(&store, 40, 997, nullptr);
  auto direct = interp.Materialize(store, "v");
  ASSERT_TRUE(direct.ok());

  ThreadPool pool(4);
  for (uint64_t chunk_size : {64u, 1000u, 100'000u}) {
    for (int depth : {0, 1, 4}) {
      StreamReadOptions options;
      options.chunk_size = chunk_size;
      options.prefetch_depth = depth;
      options.pool = depth == 0 ? nullptr : &pool;
      auto streamed = MaterializeStreamed(store, interp, "v", options);
      ASSERT_TRUE(streamed.ok()) << streamed.status();
      ASSERT_EQ(streamed->size(), direct->size());
      for (size_t i = 0; i < direct->size(); ++i) {
        EXPECT_EQ(streamed->at(i).data, direct->at(i).data);
        EXPECT_EQ(streamed->at(i).start, direct->at(i).start);
      }
    }
  }
}

TEST(StreamingFaultTest, OutOfOrderPlacementsStream) {
  // Key-first layout: element 0's bytes live at the END of the BLOB
  // (paper §4.2's out-of-order placement freedom).
  MemoryBlobStore store;
  Bytes body = Pattern(9000, 5);
  Bytes key = Pattern(1000, 6);
  auto push = store.StartPush();
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE((*push)->Push(body).ok());
  ASSERT_TRUE((*push)->Push(key).ok());
  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok());

  Interpretation interp(*id);
  InterpretedObject object;
  object.name = "v";
  object.descriptor.type_name = "application/test";
  object.time_system = TimeSystem(25);
  object.elements.push_back({0, 0, 1, ByteRange{9000, 1000}, {}});  // Key.
  for (int i = 0; i < 9; ++i) {
    object.elements.push_back(
        {i + 1, i + 1, 1, ByteRange{i * 1000u, 1000u}, {}});
  }
  ASSERT_TRUE(interp.AddObject(std::move(object)).ok());

  auto direct = interp.Materialize(store, "v");
  ASSERT_TRUE(direct.ok());
  ThreadPool pool(2);
  StreamReadOptions options;
  options.chunk_size = 1000;
  options.pool = &pool;
  auto streamed = MaterializeStreamed(store, interp, "v", options);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  ASSERT_EQ(streamed->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(streamed->at(i).data, direct->at(i).data) << "element " << i;
  }
}

TEST(StreamingFaultTest, FailedChunkFallsBackToDirectRead) {
  auto fault =
      std::make_unique<FaultInjectingStore>(std::make_unique<MemoryBlobStore>());
  BlobId blob;
  Interpretation interp = ContiguousInterp(fault->inner(), 10, 1000, &blob);
  interp.set_blob(blob);

  fault->FailNextReads(1);  // First chunk read fails; no retries set.
  StreamReadOptions options;
  options.chunk_size = 1000;
  options.prefetch_depth = 0;
  auto stream = ElementStream::Open(*fault, interp, "v", options);
  ASSERT_TRUE(stream.ok());
  Bytes expected = Pattern(1000, 0);
  auto first = (*stream)->Next();
  ASSERT_TRUE(first.ok()) << first.status();  // Recovered via fallback.
  EXPECT_EQ(first->data, expected);
  EXPECT_GE((*stream)->stats().fallback_element_reads, 1u);
  while (!(*stream)->Done()) {
    auto element = (*stream)->Next();
    ASSERT_TRUE(element.ok()) << element.status();
  }
}

TEST(StreamingFaultTest, ZeroAbortsAtFivePercentFaultRate) {
  // Acceptance criterion: 5% transient read-fault rate, retries on —
  // every element is delivered and playback never aborts.
  FaultConfig config;
  config.read_fault_rate = 0.05;
  config.seed = 1234;
  auto fault = std::make_unique<FaultInjectingStore>(
      std::make_unique<MemoryBlobStore>(), config);
  BlobId blob;
  Interpretation interp = ContiguousInterp(fault->inner(), 100, 2000, &blob);
  interp.set_blob(blob);

  ThreadPool pool(4);
  StreamReadOptions options;
  options.chunk_size = 4096;
  options.prefetch_depth = 4;
  options.pool = &pool;
  options.policy = FastRetryPolicy(8);

  auto report = PlayStreamed(*fault, interp, {"v"}, PlaybackConfig{}, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->elements_skipped, 0u) << "playback dropped elements";
  EXPECT_EQ(report->playback.total_elements, 100);
  EXPECT_GT(fault->injected_read_faults(), 0u)
      << "fault injection never fired; the test is vacuous";
  ASSERT_EQ(report->read_stats.size(), 1u);
  EXPECT_EQ(report->read_stats[0].elements_delivered, 100u);
}

TEST(StreamingTest, PlayStreamedAdmittedBooksAndReleases) {
  MemoryBlobStore store;
  Interpretation interp = ContiguousInterp(&store, 25, 4000, nullptr);

  const InterpretedObject* object = *interp.FindObject("v");
  RateProfile profile = MeasureRateProfileFromPlacements(*object);
  EXPECT_GT(profile.average_bytes_per_second, 0.0);
  EXPECT_GE(profile.peak_bytes_per_second, profile.average_bytes_per_second);

  AdmissionController controller(profile.peak_bytes_per_second * 2,
                                 AdmissionController::Policy::kPeakRate);
  auto report = PlayStreamedAdmitted(&controller, "s1", store, interp, {"v"},
                                     PlaybackConfig{}, StreamReadOptions{});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(controller.session_count(), 0u);  // Booking released.

  AdmissionController tiny(profile.peak_bytes_per_second / 2,
                           AdmissionController::Policy::kPeakRate);
  auto rejected = PlayStreamedAdmitted(&tiny, "s2", store, interp, {"v"},
                                       PlaybackConfig{}, StreamReadOptions{});
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_EQ(tiny.session_count(), 0u);  // No residue after rejection.
}

// ---------------------------------------------------------------------------
// Database-level wiring: injected stores and the streamed read path.

TEST(DatabaseStreamingTest, InjectedFaultStoreComposes) {
  FaultConfig config;
  config.read_fault_rate = 0.05;
  config.seed = 77;
  auto db = MediaDatabase::CreateWithStore(
      std::make_unique<FaultInjectingStore>(
          std::make_unique<MemoryBlobStore>(), config));

  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(32, 24, 8, 2);
  auto interp = StoreValue(db->blob_store(), MediaValue(video), "clip");
  ASSERT_TRUE(interp.ok()) << interp.status();
  auto interp_id = db->AddInterpretation("clip_interp", std::move(*interp));
  ASSERT_TRUE(interp_id.ok());
  auto media_id = db->AddMediaObject("clip_media", *interp_id, "clip");
  ASSERT_TRUE(media_id.ok());

  // Streamed path with retries: materialization survives the 5% fault
  // rate and matches the direct path element for element.
  auto direct = db->MaterializeStream(*media_id);
  // The direct path has no retry layer; tolerate a fault here by
  // retrying the whole call (bounded).
  for (int i = 0; i < 20 && !direct.ok(); ++i) {
    direct = db->MaterializeStream(*media_id);
  }
  ASSERT_TRUE(direct.ok()) << direct.status();

  StreamReadOptions options;
  options.prefetch_depth = 4;
  options.policy = FastRetryPolicy(8);
  db->set_read_options(options);
  ASSERT_NE(db->read_options(), nullptr);
  auto streamed = db->MaterializeStream(*media_id);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  ASSERT_EQ(streamed->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(streamed->at(i).data, direct->at(i).data);
  }

  db->clear_read_options();
  EXPECT_EQ(db->read_options(), nullptr);
}

TEST(DatabaseStreamingTest, OpenWithInjectedFileStorePersists) {
  std::string dir = Scratch("dbinject");
  BlobId blob_id;
  {
    auto file_store = FileBlobStore::Open(dir);
    ASSERT_TRUE(file_store.ok());
    auto db = MediaDatabase::Open(
        dir, std::make_unique<FaultInjectingStore>(std::move(*file_store)));
    ASSERT_TRUE(db.ok()) << db.status();
    Interpretation interp =
        ContiguousInterp((*db)->blob_store(), 5, 100, &blob_id);
    ASSERT_TRUE((*db)->AddInterpretation("i", std::move(interp)).ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  // Reopen with the plain convenience factory: same catalog, same data.
  auto reopened = MediaDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto id = (*reopened)->FindByName("i");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE((*reopened)->blob_store()->Exists(blob_id));
}

TEST(DatabaseStreamingTest, DecodeStreamedMatchesDecodeStream) {
  MemoryBlobStore store;
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(32, 24, 6, 4);
  StoreOptions store_options;
  store_options.video_codec = "tjpeg";
  auto interp = StoreValue(&store, MediaValue(video), "clip", store_options);
  ASSERT_TRUE(interp.ok()) << interp.status();

  auto direct_stream = interp->Materialize(store, "clip");
  ASSERT_TRUE(direct_stream.ok());
  auto direct = DecodeStream(*direct_stream);
  ASSERT_TRUE(direct.ok()) << direct.status();

  ThreadPool pool(2);
  StreamReadOptions options;
  options.chunk_size = 2048;
  options.pool = &pool;
  ElementStreamStats stats;
  auto streamed = DecodeStreamed(store, *interp, "clip", options, &stats);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_GT(stats.elements_delivered, 0u);

  const VideoValue& a = std::get<VideoValue>(*direct);
  const VideoValue& b = std::get<VideoValue>(*streamed);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].data, b.frames[i].data) << "frame " << i;
  }
}

}  // namespace
}  // namespace tbm

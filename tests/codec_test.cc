#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "codec/adpcm.h"
#include "codec/color.h"
#include "codec/dct.h"
#include "codec/pcm.h"
#include "codec/rle.h"
#include "codec/synthetic.h"
#include "codec/tjpeg.h"
#include "codec/tmpeg.h"

namespace tbm {
namespace {

// ---------------------------------------------------------------------------
// Image basics

TEST(ImageTest, ExpectedBytesPerModel) {
  EXPECT_EQ(Image::ExpectedBytes(10, 10, ColorModel::kGray8), 100u);
  EXPECT_EQ(Image::ExpectedBytes(10, 10, ColorModel::kRgb24), 300u);
  EXPECT_EQ(Image::ExpectedBytes(10, 10, ColorModel::kYuv444), 300u);
  EXPECT_EQ(Image::ExpectedBytes(10, 10, ColorModel::kYuv422),
            100u + 2u * 5 * 10);
  EXPECT_EQ(Image::ExpectedBytes(10, 10, ColorModel::kYuv420),
            100u + 2u * 5 * 5);
  EXPECT_EQ(Image::ExpectedBytes(10, 10, ColorModel::kCmyk32), 400u);
  // Odd dimensions round chroma up.
  EXPECT_EQ(Image::ExpectedBytes(11, 11, ColorModel::kYuv420),
            121u + 2u * 6 * 6);
}

TEST(ImageTest, ValidateCatchesBadSizes) {
  Image img = Image::Zero(8, 8, ColorModel::kRgb24);
  EXPECT_TRUE(img.Validate().ok());
  img.data = img.data.Slice(0, img.data.size() - 1);
  EXPECT_TRUE(img.Validate().IsInvalidArgument());
  Image degenerate;
  EXPECT_TRUE(degenerate.Validate().IsInvalidArgument());
}

TEST(ImageTest, PsnrBehaviour) {
  Image a = videogen::Still(32, 32, 1);
  EXPECT_EQ(*Psnr(a, a), 99.0);  // Identical.
  Image b = a;
  Bytes tweaked = b.data.MutableCopy();
  tweaked[0] = static_cast<uint8_t>(tweaked[0] ^ 0x80);
  b.data = std::move(tweaked);
  double psnr = *Psnr(a, b);
  EXPECT_LT(psnr, 99.0);
  EXPECT_GT(psnr, 30.0);  // One flipped byte barely moves PSNR.
  Image c = Image::Zero(16, 16, ColorModel::kRgb24);
  EXPECT_TRUE(Psnr(a, c).status().IsInvalidArgument());  // Geometry mismatch.
}

// ---------------------------------------------------------------------------
// Color conversions

TEST(ColorTest, RgbYuvRoundTripIsNearLossless444) {
  Image rgb = videogen::Still(64, 48, 7);
  auto yuv = RgbToYuv(rgb, ColorModel::kYuv444);
  ASSERT_TRUE(yuv.ok());
  auto back = YuvToRgb(*yuv);
  ASSERT_TRUE(back.ok());
  EXPECT_GT(*Psnr(rgb, *back), 45.0);
}

TEST(ColorTest, SubsamplingDegradesGracefully) {
  Image rgb = videogen::Still(64, 48, 7);
  auto yuv422 = RgbToYuv(rgb, ColorModel::kYuv422);
  auto yuv420 = RgbToYuv(rgb, ColorModel::kYuv420);
  ASSERT_TRUE(yuv422.ok() && yuv420.ok());
  double psnr422 = *Psnr(rgb, *YuvToRgb(*yuv422));
  double psnr420 = *Psnr(rgb, *YuvToRgb(*yuv420));
  EXPECT_GT(psnr422, 35.0);
  EXPECT_GE(psnr422, psnr420 - 0.5);  // 4:2:2 keeps more chroma than 4:2:0.
  // The paper's size claim: subsampling shrinks the image data.
  EXPECT_LT(yuv422->data.size(), rgb.data.size());
  EXPECT_LT(yuv420->data.size(), yuv422->data.size());
}

TEST(ColorTest, GrayPixelsSurviveYuv) {
  Image rgb = Image::Zero(16, 16, ColorModel::kRgb24);
  rgb.data = Bytes(rgb.data.size(), 128);
  auto yuv = RgbToYuv(rgb, ColorModel::kYuv420);
  ASSERT_TRUE(yuv.ok());
  auto back = YuvToRgb(*yuv);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < back->data.size(); ++i) {
    EXPECT_NEAR(back->data[i], 128, 2);
  }
}

TEST(ColorTest, WrongInputModelRejected) {
  Image gray = Image::Zero(8, 8, ColorModel::kGray8);
  EXPECT_TRUE(RgbToYuv(gray, ColorModel::kYuv420).status().IsInvalidArgument());
  Image rgb = Image::Zero(8, 8, ColorModel::kRgb24);
  EXPECT_TRUE(RgbToYuv(rgb, ColorModel::kRgb24).status().IsInvalidArgument());
  EXPECT_TRUE(YuvToRgb(rgb).status().IsInvalidArgument());
  EXPECT_TRUE(CmykToRgb(rgb).status().IsInvalidArgument());
}

TEST(ColorTest, CmykSeparationRoundTrip) {
  Image rgb = videogen::Still(32, 32, 3);
  SeparationParams params;  // Full black generation + UCR.
  auto cmyk = RgbToCmyk(rgb, params);
  ASSERT_TRUE(cmyk.ok());
  EXPECT_EQ(cmyk->model, ColorModel::kCmyk32);
  auto back = CmykToRgb(*cmyk);
  ASSERT_TRUE(back.ok());
  EXPECT_GT(*Psnr(rgb, *back), 35.0);
}

TEST(ColorTest, SeparationParametersMatter) {
  // Paper: "the mapping from RGB into the CMYK color model is not
  // unique" — different parameters give different plates.
  Image rgb = videogen::Still(32, 32, 3);
  auto full = RgbToCmyk(rgb, SeparationParams{1.0, 1.0});
  auto none = RgbToCmyk(rgb, SeparationParams{0.0, 0.0});
  ASSERT_TRUE(full.ok() && none.ok());
  EXPECT_NE(full->data, none->data);
  // With black_generation = 0, the K plate is empty.
  auto k_plate = CmykPlate(*none, 3);
  ASSERT_TRUE(k_plate.ok());
  for (uint8_t v : k_plate->data) EXPECT_EQ(v, 0);
}

TEST(ColorTest, PlatesExtractChannels) {
  Image rgb = videogen::Still(16, 16, 5);
  auto cmyk = RgbToCmyk(rgb, SeparationParams{});
  ASSERT_TRUE(cmyk.ok());
  for (int channel = 0; channel < 4; ++channel) {
    auto plate = CmykPlate(*cmyk, channel);
    ASSERT_TRUE(plate.ok());
    EXPECT_EQ(plate->model, ColorModel::kGray8);
  }
  EXPECT_TRUE(CmykPlate(*cmyk, 4).status().IsInvalidArgument());
}

TEST(ColorTest, BadSeparationParamsRejected) {
  Image rgb = Image::Zero(8, 8, ColorModel::kRgb24);
  EXPECT_TRUE(
      RgbToCmyk(rgb, SeparationParams{1.5, 0.5}).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// PCM

TEST(PcmTest, BytesRoundTrip) {
  AudioBuffer audio = audiogen::Sine(8000, 2, 440.0, 0.5, 0.25);
  Bytes bytes = audio.ToBytes();
  EXPECT_EQ(bytes.size(), audio.samples.size() * 2);
  auto restored = AudioBuffer::FromBytes(bytes, 8000, 2);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->samples, audio.samples);
}

TEST(PcmTest, GeneratorsProduceExpectedShapes) {
  AudioBuffer sine = audiogen::Sine(44100, 2, 440.0, 0.8, 1.0);
  EXPECT_EQ(sine.FrameCount(), 44100);
  EXPECT_NEAR(PeakAmplitude(sine), 0.8 * 32767, 100);
  EXPECT_NEAR(RmsAmplitude(sine), 0.8 * 32767 / std::sqrt(2.0), 200);

  AudioBuffer silence = audiogen::Silence(44100, 1, 0.5);
  EXPECT_EQ(PeakAmplitude(silence), 0);

  AudioBuffer noise = audiogen::Noise(44100, 1, 0.5, 0.5, 99);
  EXPECT_GT(RmsAmplitude(noise), 0.0);
  // Determinism.
  AudioBuffer noise2 = audiogen::Noise(44100, 1, 0.5, 0.5, 99);
  EXPECT_EQ(noise.samples, noise2.samples);
}

TEST(PcmTest, ValidateCatchesErrors) {
  AudioBuffer bad;
  bad.channels = 2;
  bad.samples = std::vector<int16_t>{1, 2, 3};  // Not divisible by channels.
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad.samples = std::vector<int16_t>{1, 2};
  bad.sample_rate = 0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(PcmTest, SnrOfIdenticalIsSentinel) {
  AudioBuffer a = audiogen::Sine(8000, 1, 220.0, 0.5, 0.1);
  EXPECT_EQ(*AudioSnr(a, a), 99.0);
}

// ---------------------------------------------------------------------------
// ADPCM (heterogeneous elements)

TEST(AdpcmTest, RoundTripQuality) {
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.6, 0.5);
  auto blocks = AdpcmEncode(audio, 1024);
  ASSERT_TRUE(blocks.ok());
  auto decoded = AdpcmDecode(*blocks, 44100, 2);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->samples.size(), audio.samples.size());
  EXPECT_GT(*AudioSnr(audio, *decoded), 20.0);  // 4-bit ADPCM ≈ 20-30 dB.
}

TEST(AdpcmTest, CompressionIsFourToOne) {
  AudioBuffer audio = audiogen::Noise(44100, 2, 0.3, 1.0, 5);
  auto blocks = AdpcmEncode(audio, 4096);
  ASSERT_TRUE(blocks.ok());
  size_t encoded = 0;
  for (const AdpcmBlock& block : *blocks) encoded += block.data.size();
  size_t raw = audio.samples.size() * 2;
  EXPECT_NEAR(static_cast<double>(raw) / encoded, 4.0, 0.05);
}

TEST(AdpcmTest, BlockStateVariesAcrossBlocks) {
  // The paper's point: encoding parameters vary over the sequence and
  // belong in element descriptors.
  AudioBuffer audio = audiogen::Sine(44100, 1, 220.0, 0.9, 0.5);
  auto blocks = AdpcmEncode(audio, 512);
  ASSERT_TRUE(blocks.ok());
  ASSERT_GT(blocks->size(), 3u);
  bool varies = false;
  for (size_t i = 1; i < blocks->size(); ++i) {
    if ((*blocks)[i].predictor[0] != (*blocks)[0].predictor[0] ||
        (*blocks)[i].step_index[0] != (*blocks)[0].step_index[0]) {
      varies = true;
    }
  }
  EXPECT_TRUE(varies);
}

TEST(AdpcmTest, BlocksDecodeIndependently) {
  AudioBuffer audio = audiogen::Sine(44100, 1, 330.0, 0.5, 0.2);
  auto blocks = AdpcmEncode(audio, 1000);
  ASSERT_TRUE(blocks.ok());
  // Decode only block 3; compare against the matching span of a full
  // decode (identical because block state is self-contained).
  auto full = AdpcmDecode(*blocks, 44100, 1);
  ASSERT_TRUE(full.ok());
  auto one = AdpcmDecodeBlock((*blocks)[3], 44100, 1);
  ASSERT_TRUE(one.ok());
  for (int64_t i = 0; i < one->FrameCount(); ++i) {
    EXPECT_EQ(one->samples[i], full->samples[3000 + i]);
  }
}

TEST(AdpcmTest, CorruptBlockRejected) {
  AudioBuffer audio = audiogen::Sine(8000, 1, 200.0, 0.5, 0.1);
  auto blocks = AdpcmEncode(audio, 256);
  ASSERT_TRUE(blocks.ok());
  AdpcmBlock bad = (*blocks)[0];
  bad.step_index[0] = 200;  // Out of table range.
  EXPECT_TRUE(AdpcmDecodeBlock(bad, 8000, 1).status().IsCorruption());
  bad = (*blocks)[0];
  bad.data = bad.data.Slice(0, bad.data.size() - 1);
  EXPECT_TRUE(AdpcmDecodeBlock(bad, 8000, 1).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// DCT

TEST(DctTest, ForwardInverseIsIdentity) {
  float block[64], coeffs[64], back[64];
  for (int i = 0; i < 64; ++i) block[i] = static_cast<float>((i * 37) % 255) - 128;
  ForwardDct8x8(block, coeffs);
  InverseDct8x8(coeffs, back);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(back[i], block[i], 0.01) << "coefficient " << i;
  }
}

TEST(DctTest, FlatBlockHasOnlyDc) {
  float block[64], coeffs[64];
  for (int i = 0; i < 64; ++i) block[i] = 100.0f;
  ForwardDct8x8(block, coeffs);
  EXPECT_NEAR(coeffs[0], 800.0f, 0.01);  // 100 * 8 (orthonormal scale).
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(coeffs[i], 0.0f, 0.01);
}

TEST(DctTest, QuantTableScaling) {
  auto base = ScaleQuantTable(kLumaQuantBase, 50);
  EXPECT_EQ(base, kLumaQuantBase);  // Quality 50 = identity.
  auto fine = ScaleQuantTable(kLumaQuantBase, 95);
  auto coarse = ScaleQuantTable(kLumaQuantBase, 10);
  for (int i = 0; i < 64; ++i) {
    EXPECT_LE(fine[i], base[i]);
    EXPECT_GE(coarse[i], base[i]);
    EXPECT_GE(fine[i], 1);
    EXPECT_LE(coarse[i], 255);
  }
}

TEST(DctTest, ZigzagIsAPermutation) {
  std::array<bool, 64> seen{};
  for (uint8_t index : kZigzag) {
    EXPECT_LT(index, 64);
    EXPECT_FALSE(seen[index]);
    seen[index] = true;
  }
  EXPECT_EQ(kZigzag[0], 0);   // DC first.
  EXPECT_EQ(kZigzag[1], 1);   // Then the first AC.
  EXPECT_EQ(kZigzag[63], 63); // Highest frequency last.
}

// ---------------------------------------------------------------------------
// TJPEG

class TjpegQuality : public ::testing::TestWithParam<int> {};

TEST_P(TjpegQuality, RoundTripAtQuality) {
  Image rgb = videogen::Still(96, 64, 11);
  auto encoded = TjpegEncode(rgb, GetParam());
  ASSERT_TRUE(encoded.ok());
  auto decoded = TjpegDecode(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width, rgb.width);
  EXPECT_EQ(decoded->height, rgb.height);
  double psnr = *Psnr(rgb, *decoded);
  // Even the worst quality should beat 18 dB on synthetic scenes; high
  // quality should beat 32 dB.
  EXPECT_GT(psnr, GetParam() >= 75 ? 32.0 : 18.0) << "quality " << GetParam();
  // Real compression happens at every quality.
  EXPECT_LT(encoded->size(), rgb.data.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, TjpegQuality,
                         ::testing::Values(5, 25, 50, 75, 95));

TEST(TjpegTest, QualityTradesRateForFidelity) {
  Image rgb = videogen::Still(128, 96, 13);
  size_t prev_size = 0;
  double prev_psnr = 0.0;
  for (int quality : {10, 50, 90}) {
    auto encoded = TjpegEncode(rgb, quality);
    ASSERT_TRUE(encoded.ok());
    auto decoded = TjpegDecode(*encoded);
    ASSERT_TRUE(decoded.ok());
    double psnr = *Psnr(rgb, *decoded);
    EXPECT_GT(encoded->size(), prev_size);
    EXPECT_GT(psnr, prev_psnr);
    prev_size = encoded->size();
    prev_psnr = psnr;
  }
}

TEST(TjpegTest, GrayscaleSupported) {
  Image rgb = videogen::Still(64, 64, 2);
  auto gray = RgbToGray(rgb);
  ASSERT_TRUE(gray.ok());
  auto encoded = TjpegEncode(*gray, 70);
  ASSERT_TRUE(encoded.ok());
  auto decoded = TjpegDecode(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->model, ColorModel::kGray8);
  EXPECT_GT(*Psnr(*gray, *decoded), 25.0);
}

TEST(TjpegTest, NonMultipleOf8Dimensions) {
  Image rgb = videogen::Still(33, 21, 4);
  auto encoded = TjpegEncode(rgb, 60);
  ASSERT_TRUE(encoded.ok());
  auto decoded = TjpegDecode(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width, 33);
  EXPECT_EQ(decoded->height, 21);
  EXPECT_GT(*Psnr(rgb, *decoded), 18.0);
}

TEST(TjpegTest, RejectsGarbage) {
  Bytes garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(TjpegDecode(garbage).status().IsCorruption());
  EXPECT_TRUE(TjpegDecode(Bytes{}).status().IsCorruption());
  Image rgb = Image::Zero(8, 8, ColorModel::kRgb24);
  EXPECT_TRUE(TjpegEncode(rgb, 0).status().IsInvalidArgument());
  EXPECT_TRUE(TjpegEncode(rgb, 101).status().IsInvalidArgument());
}

TEST(TjpegTest, TruncatedPayloadIsCorruption) {
  Image rgb = videogen::Still(32, 32, 9);
  auto encoded = TjpegEncode(rgb, 50);
  ASSERT_TRUE(encoded.ok());
  Bytes truncated(encoded->begin(), encoded->begin() + encoded->size() / 2);
  EXPECT_FALSE(TjpegDecode(truncated).ok());
}

// ---------------------------------------------------------------------------
// RLE

class RleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RleRoundTrip, Identity) {
  // Mix of runs and literals seeded by the parameter.
  Bytes data;
  uint32_t state = static_cast<uint32_t>(GetParam()) * 2654435761u + 1;
  for (int i = 0; i < 5000; ++i) {
    state = state * 1664525u + 1013904223u;
    if ((state >> 28) < 6) {
      // Insert a run.
      uint8_t value = static_cast<uint8_t>(state);
      size_t length = (state >> 8) % 300 + 1;
      data.insert(data.end(), length, value);
    } else {
      data.push_back(static_cast<uint8_t>(state >> 16));
    }
  }
  Bytes encoded = RleEncode(data);
  auto decoded = RleDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleRoundTrip, ::testing::Range(1, 9));

TEST(RleTest, CompressesRuns) {
  Bytes runs(10000, 0xAA);
  Bytes encoded = RleEncode(runs);
  EXPECT_LT(encoded.size(), runs.size() / 20);
  EXPECT_EQ(*RleDecode(encoded), runs);
}

TEST(RleTest, EmptyAndTruncated) {
  EXPECT_TRUE(RleEncode(Bytes{}).empty());
  EXPECT_TRUE(RleDecode(Bytes{})->empty());
  Bytes truncated = {static_cast<uint8_t>(10)};  // Claims 11 literals.
  EXPECT_TRUE(RleDecode(truncated).status().IsCorruption());
  Bytes truncated_run = {static_cast<uint8_t>(200)};  // Run without value.
  EXPECT_TRUE(RleDecode(truncated_run).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// TMPEG

std::vector<Image> SmallClip(int64_t frames, uint32_t scene = 21) {
  return videogen::Clip(64, 48, frames, scene);
}

TEST(TmpegTest, ForwardDeltaRoundTrip) {
  std::vector<Image> clip = SmallClip(12);
  TmpegConfig config;
  config.quality = 60;
  config.key_interval = 4;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->size(), clip.size());
  // Storage order equals presentation order in forward mode.
  for (size_t i = 0; i < encoded->size(); ++i) {
    EXPECT_EQ((*encoded)[i].presentation_index, static_cast<int64_t>(i));
  }
  auto decoded = TmpegDecodeSequence(*encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), clip.size());
  for (size_t i = 0; i < clip.size(); ++i) {
    EXPECT_GT(*Psnr(clip[i], (*decoded)[i]), 22.0) << "frame " << i;
  }
}

TEST(TmpegTest, KeyFramesAtInterval) {
  std::vector<Image> clip = SmallClip(10);
  TmpegConfig config;
  config.key_interval = 4;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  for (size_t i = 0; i < encoded->size(); ++i) {
    FrameKind expected =
        (i % 4 == 0) ? FrameKind::kKey : FrameKind::kDelta;
    EXPECT_EQ((*encoded)[i].kind, expected) << "frame " << i;
  }
}

TEST(TmpegTest, DeltaFramesAreSmallerThanKeys) {
  std::vector<Image> clip = SmallClip(12);
  TmpegConfig config;
  config.key_interval = 6;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  uint64_t key_bytes = 0, key_count = 0, delta_bytes = 0, delta_count = 0;
  for (const TmpegFrame& frame : *encoded) {
    if (frame.kind == FrameKind::kKey) {
      key_bytes += frame.data.size();
      ++key_count;
    } else {
      delta_bytes += frame.data.size();
      ++delta_count;
    }
  }
  ASSERT_GT(key_count, 0u);
  ASSERT_GT(delta_count, 0u);
  EXPECT_LT(delta_bytes / delta_count, key_bytes / key_count);
}

TEST(TmpegTest, BidirectionalStorageOrderIsOutOfOrder) {
  // The paper's example: four elements, first and last keys, stored
  // 1,4,2,3.
  std::vector<Image> clip = SmallClip(4);
  TmpegConfig config;
  config.key_interval = 3;
  config.bidirectional = true;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  std::vector<int64_t> storage_order;
  for (const TmpegFrame& frame : *encoded) {
    storage_order.push_back(frame.presentation_index);
  }
  EXPECT_EQ(storage_order, (std::vector<int64_t>{0, 3, 1, 2}));
  EXPECT_EQ((*encoded)[0].kind, FrameKind::kKey);
  EXPECT_EQ((*encoded)[1].kind, FrameKind::kKey);
  EXPECT_EQ((*encoded)[2].kind, FrameKind::kBidirectional);
  EXPECT_EQ((*encoded)[2].ref_before, 0);
  EXPECT_EQ((*encoded)[2].ref_after, 3);
}

TEST(TmpegTest, BidirectionalRoundTrip) {
  std::vector<Image> clip = SmallClip(13, 33);
  TmpegConfig config;
  config.quality = 60;
  config.key_interval = 6;
  config.bidirectional = true;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  auto decoded = TmpegDecodeSequence(*encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), clip.size());
  for (size_t i = 0; i < clip.size(); ++i) {
    EXPECT_GT(*Psnr(clip[i], (*decoded)[i]), 20.0) << "frame " << i;
  }
}

TEST(TmpegTest, InterframeBeatsIntraframeOnCoherentVideo) {
  std::vector<Image> clip = SmallClip(24, 44);
  TmpegConfig inter;
  inter.quality = 50;
  inter.key_interval = 12;
  auto encoded = TmpegEncodeSequence(clip, inter);
  ASSERT_TRUE(encoded.ok());
  uint64_t inter_bytes = 0;
  for (const TmpegFrame& frame : *encoded) inter_bytes += frame.data.size();
  uint64_t intra_bytes = 0;
  for (const Image& frame : clip) {
    auto tjpeg = TjpegEncode(frame, 50);
    ASSERT_TRUE(tjpeg.ok());
    intra_bytes += tjpeg->size();
  }
  EXPECT_LT(inter_bytes, intra_bytes);
}

TEST(TmpegTest, DeltaBeforeKeyIsFailedPrecondition) {
  std::vector<Image> clip = SmallClip(6);
  TmpegConfig config;
  config.key_interval = 3;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  // Drop the first key: its deltas cannot decode.
  std::vector<TmpegFrame> broken(encoded->begin() + 1, encoded->end());
  EXPECT_TRUE(TmpegDecodeSequence(broken).status().IsFailedPrecondition());
}

TEST(TmpegTest, KeysOnlyDecodeIsScalableRead) {
  std::vector<Image> clip = SmallClip(12, 55);
  TmpegConfig config;
  config.key_interval = 4;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  auto keys = TmpegDecodeKeysOnly(*encoded);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 3u);  // Frames 0, 4, 8.
  EXPECT_EQ((*keys)[0].first, 0);
  EXPECT_EQ((*keys)[1].first, 4);
  EXPECT_EQ((*keys)[2].first, 8);
  EXPECT_GT(*Psnr(clip[4], (*keys)[1].second), 22.0);
}

TEST(TmpegTest, ParseFrameRecoversMetadata) {
  std::vector<Image> clip = SmallClip(4);
  TmpegConfig config;
  config.key_interval = 2;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  for (const TmpegFrame& frame : *encoded) {
    auto parsed = TmpegParseFrame(frame.data);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->kind, frame.kind);
    EXPECT_EQ(parsed->presentation_index, frame.presentation_index);
  }
}

TEST(TmpegTest, InvalidInputsRejected) {
  EXPECT_TRUE(TmpegEncodeSequence({}, TmpegConfig{})
                  .status()
                  .IsInvalidArgument());
  std::vector<Image> mixed = {videogen::Still(32, 32, 1),
                              videogen::Still(64, 64, 1)};
  EXPECT_TRUE(
      TmpegEncodeSequence(mixed, TmpegConfig{}).status().IsInvalidArgument());
}

// A translating scene: the whole frame shifts right 2 px per frame —
// ideal for motion compensation.
std::vector<Image> PanningClip(int64_t frames) {
  Image wide = videogen::Still(160, 64, 66);
  // Texture the scene: without high-frequency content, a plain delta of
  // a smooth gradient is nearly as cheap as a motion-compensated one.
  Bytes textured = wide.data.MutableCopy();
  for (int32_t y = 0; y < wide.height; ++y) {
    for (int32_t x = 0; x < wide.width; ++x) {
      uint32_t h = static_cast<uint32_t>(x * 374761393 + y * 668265263);
      h = (h ^ (h >> 13)) * 1274126177;
      int noise = static_cast<int>(h % 97) - 48;
      for (int c = 0; c < 3; ++c) {
        int v = textured[3 * (y * wide.width + x) + c] + noise;
        textured[3 * (y * wide.width + x) + c] =
            static_cast<uint8_t>(std::clamp(v, 0, 255));
      }
    }
  }
  wide.data = std::move(textured);
  std::vector<Image> out;
  for (int64_t f = 0; f < frames; ++f) {
    Image frame = Image::Zero(96, 64, ColorModel::kRgb24);
    Bytes pixels(frame.data.size(), 0);
    for (int32_t y = 0; y < 64; ++y) {
      for (int32_t x = 0; x < 96; ++x) {
        int32_t sx = std::min<int32_t>(x + 2 * static_cast<int32_t>(f), 159);
        for (int c = 0; c < 3; ++c) {
          pixels[3 * (y * 96 + x) + c] = wide.data[3 * (y * 160 + sx) + c];
        }
      }
    }
    frame.data = std::move(pixels);
    out.push_back(std::move(frame));
  }
  return out;
}

TEST(TmpegTest, MotionCompensationRoundTrip) {
  std::vector<Image> clip = PanningClip(8);
  TmpegConfig config;
  config.quality = 60;
  config.key_interval = 8;
  config.motion_compensation = true;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto decoded = TmpegDecodeSequence(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), clip.size());
  for (size_t i = 0; i < clip.size(); ++i) {
    EXPECT_GT(*Psnr(clip[i], (*decoded)[i]), 22.0) << "frame " << i;
  }
}

TEST(TmpegTest, MotionCompensationShrinksPanningDeltas) {
  std::vector<Image> clip = PanningClip(8);
  TmpegConfig plain;
  plain.quality = 60;
  plain.key_interval = 8;
  TmpegConfig mc = plain;
  mc.motion_compensation = true;
  auto without = TmpegEncodeSequence(clip, plain);
  auto with = TmpegEncodeSequence(clip, mc);
  ASSERT_TRUE(without.ok() && with.ok());
  auto delta_bytes = [](const std::vector<TmpegFrame>& frames) {
    uint64_t total = 0;
    for (const TmpegFrame& frame : frames) {
      if (frame.kind == FrameKind::kDelta) total += frame.data.size();
    }
    return total;
  };
  // On a pure 2 px/frame pan, ±4 px full search should cut the residual
  // substantially (motion vectors cost 2 bytes per 16x16 block).
  EXPECT_LT(delta_bytes(*with), delta_bytes(*without) * 7 / 10);
}

TEST(TmpegTest, MotionCompensatedStreamThroughParseFrame) {
  std::vector<Image> clip = PanningClip(4);
  TmpegConfig config;
  config.key_interval = 4;
  config.motion_compensation = true;
  auto encoded = TmpegEncodeSequence(clip, config);
  ASSERT_TRUE(encoded.ok());
  // Parsing and re-decoding from parsed frames works (the codec-bridge
  // path).
  std::vector<TmpegFrame> parsed;
  for (const TmpegFrame& frame : *encoded) {
    auto p = TmpegParseFrame(frame.data);
    ASSERT_TRUE(p.ok());
    parsed.push_back(std::move(*p));
  }
  auto decoded = TmpegDecodeSequence(parsed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 4u);
}

// ---------------------------------------------------------------------------
// Synthetic generator

TEST(SyntheticTest, DeterministicPerScene) {
  Image a = videogen::Frame(32, 32, 5, 7);
  Image b = videogen::Frame(32, 32, 5, 7);
  EXPECT_EQ(a.data, b.data);
  Image other_scene = videogen::Frame(32, 32, 5, 8);
  EXPECT_NE(a.data, other_scene.data);
  Image other_frame = videogen::Frame(32, 32, 6, 7);
  EXPECT_NE(a.data, other_frame.data);
}

TEST(SyntheticTest, TemporalCoherence) {
  // Consecutive frames should differ by much less than distant ones —
  // this is what makes interframe coding effective.
  Image f0 = videogen::Frame(64, 48, 0, 12);
  Image f1 = videogen::Frame(64, 48, 1, 12);
  Image f50 = videogen::Frame(64, 48, 50, 12);
  EXPECT_GT(*Psnr(f0, f1), *Psnr(f0, f50));
}

}  // namespace
}  // namespace tbm

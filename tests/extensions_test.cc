// Tests for the extension features: edit lists compiled to derivation
// objects (§4.2), rights/authorization (§6 future work), activity-based
// flows (§6 / ref [5]), interchange export, and the extended derivation
// operators.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "codec/color.h"
#include "codec/export.h"
#include "codec/layered.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "db/database.h"
#include "db/edit_list.h"
#include "db/rights.h"
#include "playback/activity.h"

namespace tbm {
namespace {

const DerivationRegistry& Reg() { return DerivationRegistry::Builtin(); }

Result<ObjectId> IngestVideo(MediaDatabase* db, const std::string& name,
                             uint32_t scene, int64_t frames) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(48, 32, frames, scene);
  StoreOptions options;
  options.video_codec = "raw";
  auto interp = StoreValue(db->blob_store(), video, name, options);
  if (!interp.ok()) return interp.status();
  auto interp_id = db->AddInterpretation(name + "_interp", *interp);
  if (!interp_id.ok()) return interp_id.status();
  return db->AddMediaObject(name, *interp_id, name);
}

// ---------------------------------------------------------------------------
// EditList

TEST(EditListTest, ValidationRules) {
  EditList list;
  EXPECT_TRUE(list.AddSelection(1, 10, 10).IsInvalidArgument());  // Empty.
  EXPECT_TRUE(list.AddSelection(1, -1, 5).IsInvalidArgument());
  // First selection cannot carry a transition.
  EXPECT_TRUE(list.AddSelection(1, 0, 10, EditList::Join::kFade, 5)
                  .IsInvalidArgument());
  ASSERT_TRUE(list.AddSelection(1, 0, 10).ok());
  // Transition requires positive frames and fitting selections.
  EXPECT_TRUE(list.AddSelection(1, 0, 10, EditList::Join::kFade, 0)
                  .IsInvalidArgument());
  EXPECT_TRUE(list.AddSelection(1, 0, 4, EditList::Join::kFade, 5)
                  .IsInvalidArgument());  // Shorter than transition.
  ASSERT_TRUE(list.AddSelection(1, 0, 10, EditList::Join::kFade, 5).ok());
  EXPECT_EQ(list.OutputFrames(), 10 + 10 - 5);
}

TEST(EditListTest, TimecodeAddressing) {
  EditList list;
  // 00:00:01:00 .. 00:00:02:00 at 25 fps = frames [25, 50).
  ASSERT_TRUE(list.AddSelectionTimecode(1, "00:00:01:00", "00:00:02:00", 25)
                  .ok());
  EXPECT_EQ(list.entries()[0].in_frame, 25);
  EXPECT_EQ(list.entries()[0].out_frame, 50);
  EXPECT_TRUE(list.AddSelectionTimecode(1, "garbage", "00:00:02:00", 25)
                  .IsInvalidArgument());
}

TEST(EditListTest, CompilesAndExpands) {
  auto db = MediaDatabase::CreateInMemory();
  auto video = IngestVideo(db.get(), "tape", 5, 100);
  ASSERT_TRUE(video.ok());

  EditList list;
  ASSERT_TRUE(list.AddSelection(*video, 0, 30).ok());
  ASSERT_TRUE(list.AddSelection(*video, 50, 80).ok());  // Plain cut.
  ASSERT_TRUE(
      list.AddSelection(*video, 10, 40, EditList::Join::kFade, 10).ok());
  EXPECT_EQ(list.OutputFrames(), 30 + 30 + 30 - 10);

  auto program = list.Compile(db.get(), "program");
  ASSERT_TRUE(program.ok()) << program.status();
  auto value = db->Materialize(*program);
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(std::get<VideoValue>(*value).frames.size(),
            static_cast<size_t>(list.OutputFrames()));

  // The compiled program is pure metadata.
  auto record = db->DerivationRecordBytes(*program);
  ASSERT_TRUE(record.ok());
  EXPECT_LT(*record, 1000u);
  // Sources untouched.
  auto source = db->MaterializeStream(*video);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->size(), 100u);
}

TEST(EditListTest, EmptyCompileFails) {
  auto db = MediaDatabase::CreateInMemory();
  EditList list;
  EXPECT_TRUE(list.Compile(db.get(), "x").status().IsFailedPrecondition());
}

TEST(EditListTest, WipeJoin) {
  auto db = MediaDatabase::CreateInMemory();
  auto a = IngestVideo(db.get(), "a", 1, 40);
  auto b = IngestVideo(db.get(), "b", 2, 40);
  ASSERT_TRUE(a.ok() && b.ok());
  EditList list;
  ASSERT_TRUE(list.AddSelection(*a, 0, 20).ok());
  ASSERT_TRUE(list.AddSelection(*b, 0, 20, EditList::Join::kWipe, 6).ok());
  auto program = list.Compile(db.get(), "wiped");
  ASSERT_TRUE(program.ok());
  auto value = db->Materialize(*program);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(std::get<VideoValue>(*value).frames.size(), 34u);
}

// ---------------------------------------------------------------------------
// Rights

TEST(RightsTest, UnprotectedIsOpen) {
  RightsManager rights;
  EXPECT_TRUE(rights.Check(1, "anyone", MediaOperation::kDelete).ok());
  EXPECT_FALSE(rights.IsProtected(1));
}

TEST(RightsTest, OwnerAlwaysAllowed) {
  RightsManager rights;
  ASSERT_TRUE(rights.Protect(1, "alice", "(c) 1994 alice").ok());
  for (auto op : {MediaOperation::kRead, MediaOperation::kDerive,
                  MediaOperation::kCompose, MediaOperation::kModify,
                  MediaOperation::kDelete}) {
    EXPECT_TRUE(rights.Check(1, "alice", op).ok());
    EXPECT_TRUE(rights.Check(1, "bob", op).IsFailedPrecondition());
  }
}

TEST(RightsTest, GrantsAndWildcards) {
  RightsManager rights;
  ASSERT_TRUE(rights.Protect(1, "alice").ok());
  ASSERT_TRUE(rights.Grant(1, "bob", MaskOf(MediaOperation::kRead) |
                                         MaskOf(MediaOperation::kDerive))
                  .ok());
  ASSERT_TRUE(rights.Grant(1, "*", MaskOf(MediaOperation::kRead)).ok());
  EXPECT_TRUE(rights.Check(1, "bob", MediaOperation::kDerive).ok());
  EXPECT_TRUE(rights.Check(1, "bob", MediaOperation::kDelete)
                  .IsFailedPrecondition());
  // Wildcard covers strangers for read only.
  EXPECT_TRUE(rights.Check(1, "carol", MediaOperation::kRead).ok());
  EXPECT_TRUE(rights.Check(1, "carol", MediaOperation::kDerive)
                  .IsFailedPrecondition());
  // Revocation.
  ASSERT_TRUE(rights.Revoke(1, "bob").ok());
  EXPECT_TRUE(rights.Check(1, "bob", MediaOperation::kDerive)
                  .IsFailedPrecondition());
  EXPECT_TRUE(rights.Check(1, "bob", MediaOperation::kRead).ok());  // Via "*".
  EXPECT_TRUE(rights.Revoke(1, "bob").IsNotFound());
}

TEST(RightsTest, OwnershipTransfer) {
  RightsManager rights;
  ASSERT_TRUE(rights.Protect(1, "alice").ok());
  ASSERT_TRUE(rights.TransferOwnership(1, "bob").ok());
  EXPECT_TRUE(rights.Check(1, "bob", MediaOperation::kDelete).ok());
  EXPECT_TRUE(
      rights.Check(1, "alice", MediaOperation::kDelete).IsFailedPrecondition());
}

TEST(RightsTest, DerivedCopyrightNotice) {
  RightsManager rights;
  ASSERT_TRUE(rights.Protect(1, "alice", "(c) alice 1994").ok());
  ASSERT_TRUE(rights.Protect(2, "bob", "(c) bob 1993").ok());
  std::string notice = rights.DeriveCopyrightNotice({1, 2, 3});
  EXPECT_NE(notice.find("(c) alice 1994"), std::string::npos);
  EXPECT_NE(notice.find("(c) bob 1993"), std::string::npos);
  EXPECT_TRUE(rights.DeriveCopyrightNotice({3, 4}).empty());
}

TEST(RightsTest, SerializeRoundTrip) {
  RightsManager rights;
  ASSERT_TRUE(rights.Protect(7, "alice", "(c) alice").ok());
  ASSERT_TRUE(rights.Grant(7, "bob", kAllOperations).ok());
  BinaryWriter writer;
  rights.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto restored = RightsManager::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->IsProtected(7));
  EXPECT_TRUE(restored->Check(7, "bob", MediaOperation::kDelete).ok());
  EXPECT_TRUE(restored->Check(7, "carol", MediaOperation::kRead)
                  .IsFailedPrecondition());
}

TEST(RightsTest, DoubleProtectFails) {
  RightsManager rights;
  ASSERT_TRUE(rights.Protect(1, "alice").ok());
  EXPECT_TRUE(rights.Protect(1, "bob").IsAlreadyExists());
  EXPECT_TRUE(rights.Protect(2, "").IsInvalidArgument());
  EXPECT_TRUE(rights.Grant(99, "bob", 1).IsNotFound());
}

// ---------------------------------------------------------------------------
// Activities

MediaDescriptor AudioDesc() {
  MediaDescriptor desc;
  desc.type_name = "audio/pcm-block";
  desc.kind = MediaKind::kAudio;
  return desc;
}

TimedStream BlockStream(int64_t blocks, int64_t duration, uint8_t fill) {
  TimedStream stream(AudioDesc(), TimeSystem(1000));
  for (int64_t i = 0; i < blocks; ++i) {
    EXPECT_TRUE(stream.AppendContiguous(Bytes(100, fill), duration).ok());
  }
  return stream;
}

TEST(ActivityTest, SourceStreamsAllElements) {
  TimedStream stream = BlockStream(10, 5, 1);
  StreamSource source(&stream);
  FlowStats stats;
  auto out = RunToStream(&source, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 10u);
  EXPECT_EQ(stats.elements, 10);
  EXPECT_EQ(stats.bytes, 1000u);
  // Exhausted source keeps returning NotFound.
  EXPECT_TRUE(source.Next().status().IsNotFound());
}

TEST(ActivityTest, TransformAppliesPerElement) {
  TimedStream stream = BlockStream(5, 5, 1);
  auto pipeline = std::make_unique<TransformActivity>(
      std::make_unique<StreamSource>(&stream),
      [](StreamElement element) -> Result<StreamElement> {
        Bytes doubled = element.data.MutableCopy();
        for (uint8_t& byte : doubled) byte *= 2;
        element.data = std::move(doubled);
        return element;
      });
  auto out = RunToStream(pipeline.get());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->at(3).data[0], 2);
}

TEST(ActivityTest, ParallelTransformMatchesSerial) {
  TimedStream stream = BlockStream(10, 5, 3);
  auto transform = [](StreamElement element) -> Result<StreamElement> {
    Bytes doubled = element.data.MutableCopy();
    for (uint8_t& byte : doubled) byte *= 2;
    element.data = std::move(doubled);
    return element;
  };
  auto serial = std::make_unique<TransformActivity>(
      std::make_unique<StreamSource>(&stream), transform);
  auto expected = RunToStream(serial.get());
  ASSERT_TRUE(expected.ok());

  // window=4 over 10 elements exercises full and partial windows.
  ParallelTransformActivity parallel(std::make_unique<StreamSource>(&stream),
                                     transform, /*threads=*/3, /*window=*/4);
  auto out = RunToStream(&parallel);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), expected->size());
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_EQ(out->at(i).start, expected->at(i).start) << i;
    EXPECT_EQ(out->at(i).data, expected->at(i).data) << i;
  }
  // Exhausted like any activity.
  EXPECT_TRUE(parallel.Next().status().IsNotFound());
}

TEST(ActivityTest, ParallelTransformErrorsAbortFlow) {
  TimedStream stream = BlockStream(8, 5, 1);
  ParallelTransformActivity failing(
      std::make_unique<StreamSource>(&stream),
      [](StreamElement element) -> Result<StreamElement> {
        if (element.start >= 20) return Status::Corruption("boom");
        return element;
      },
      /*threads=*/2, /*window=*/3);
  // Elements before the failing one still flow, then the error sticks.
  int delivered = 0;
  Status final_status;
  while (true) {
    auto element = failing.Next();
    if (!element.ok()) {
      final_status = element.status();
      break;
    }
    ++delivered;
  }
  EXPECT_TRUE(final_status.IsCorruption()) << final_status;
  EXPECT_EQ(delivered, 4);  // starts 0, 5, 10, 15.
  EXPECT_TRUE(failing.Next().status().IsCorruption());
}

TEST(ActivityTest, TransformErrorsAbortFlow) {
  TimedStream stream = BlockStream(5, 5, 1);
  TransformActivity failing(
      std::make_unique<StreamSource>(&stream),
      [](StreamElement element) -> Result<StreamElement> {
        if (element.start >= 10) return Status::Corruption("boom");
        return element;
      });
  auto out = RunToStream(&failing);
  EXPECT_TRUE(out.status().IsCorruption());
}

TEST(ActivityTest, SpanFilterIsStreamingDurationQuery) {
  TimedStream stream = BlockStream(20, 5, 1);  // Spans [0, 100).
  SpanFilterActivity filter(std::make_unique<StreamSource>(&stream),
                            TickSpan{25, 30});
  auto out = RunToStream(&filter);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);  // Elements at 25..50.
  EXPECT_EQ(out->StartTime(), 25);
}

TEST(ActivityTest, MergeInterleavesByStartTime) {
  // Audio blocks every 10 ticks, "video" elements every 25.
  TimedStream a = BlockStream(10, 10, 1);
  TimedStream b(AudioDesc(), TimeSystem(1000));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(b.AppendContiguous(Bytes(50, 9), 25).ok());
  }
  MergeActivity merge(std::make_unique<StreamSource>(&a),
                      std::make_unique<StreamSource>(&b));
  auto out = RunToStream(&merge);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 14u);
  // Starts are non-decreasing (Def. 3 holds across the merge).
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_LE(out->at(i - 1).start, out->at(i).start);
  }
}

TEST(ActivityTest, MergeRequiresSameTimeSystem) {
  TimedStream a = BlockStream(2, 10, 1);
  TimedStream b(AudioDesc(), TimeSystem(44100));
  ASSERT_TRUE(b.AppendContiguous(Bytes(10, 2), 1).ok());
  MergeActivity merge(std::make_unique<StreamSource>(&a),
                      std::make_unique<StreamSource>(&b));
  EXPECT_TRUE(merge.Next().status().IsInvalidArgument());
}

TEST(ActivityTest, DrainCountsWithoutStoring) {
  TimedStream stream = BlockStream(100, 1, 3);
  StreamSource source(&stream);
  auto stats = Drain(&source);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->elements, 100);
  EXPECT_EQ(stats->bytes, 10000u);
}

// ---------------------------------------------------------------------------
// Export formats

TEST(ExportTest, PnmRoundTrip) {
  std::string path = ::testing::TempDir() + "/tbm_test.ppm";
  Image image = videogen::Still(40, 30, 3);
  ASSERT_TRUE(WritePnm(image, path).ok());
  auto restored = ReadPnm(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->width, 40);
  EXPECT_EQ(restored->data, image.data);
}

TEST(ExportTest, PgmRoundTrip) {
  std::string path = ::testing::TempDir() + "/tbm_test.pgm";
  auto gray = RgbToGray(videogen::Still(25, 17, 5));
  ASSERT_TRUE(gray.ok());
  ASSERT_TRUE(WritePnm(*gray, path).ok());
  auto restored = ReadPnm(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->model, ColorModel::kGray8);
  EXPECT_EQ(restored->data, gray->data);
}

TEST(ExportTest, WavRoundTrip) {
  std::string path = ::testing::TempDir() + "/tbm_test.wav";
  AudioBuffer audio = audiogen::Sine(22050, 2, 440.0, 0.5, 0.25);
  ASSERT_TRUE(WriteWav(audio, path).ok());
  auto restored = ReadWav(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->sample_rate, 22050);
  EXPECT_EQ(restored->channels, 2);
  EXPECT_EQ(restored->samples, audio.samples);
}

TEST(ExportTest, RejectsGarbage) {
  std::string path = ::testing::TempDir() + "/tbm_garbage.bin";
  Bytes garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  ASSERT_TRUE(WriteFile(path, garbage).ok());
  EXPECT_FALSE(ReadPnm(path).ok());
  EXPECT_FALSE(ReadWav(path).ok());
  Image yuv = Image::Zero(8, 8, ColorModel::kYuv420);
  EXPECT_TRUE(WritePnm(yuv, path).IsUnsupported());
}

// ---------------------------------------------------------------------------
// Extended derivation operators

VideoValue SmallVideo(int64_t frames, uint32_t scene = 3) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(48, 32, frames, scene);
  return video;
}

TEST(ExtendedOpsTest, VideoReverse) {
  MediaValue video = SmallVideo(10);
  auto out = Reg().Apply("video reverse", {&video}, AttrMap{});
  ASSERT_TRUE(out.ok());
  const VideoValue& original = std::get<VideoValue>(video);
  const VideoValue& reversed = std::get<VideoValue>(*out);
  EXPECT_EQ(reversed.frames.front().data, original.frames.back().data);
  EXPECT_EQ(reversed.frames.back().data, original.frames.front().data);
  // Reversing twice is identity.
  auto twice = Reg().Apply("video reverse", {&*out}, AttrMap{});
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(std::get<VideoValue>(*twice).frames[4].data,
            original.frames[4].data);
}

TEST(ExtendedOpsTest, VideoSpeed) {
  MediaValue video = SmallVideo(20);
  AttrMap double_speed;
  double_speed.SetInt("speed num", 2);
  double_speed.SetInt("speed den", 1);
  auto fast = Reg().Apply("video speed", {&video}, double_speed);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(std::get<VideoValue>(*fast).frames.size(), 10u);
  AttrMap half_speed;
  half_speed.SetInt("speed num", 1);
  half_speed.SetInt("speed den", 2);
  auto slow = Reg().Apply("video speed", {&video}, half_speed);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(std::get<VideoValue>(*slow).frames.size(), 40u);
  // Slow motion repeats frames.
  EXPECT_EQ(std::get<VideoValue>(*slow).frames[0].data,
            std::get<VideoValue>(*slow).frames[1].data);
  AttrMap bad;
  bad.SetInt("speed num", 0);
  EXPECT_TRUE(
      Reg().Apply("video speed", {&video}, bad).status().IsInvalidArgument());
}

TEST(ExtendedOpsTest, AudioFade) {
  MediaValue audio = audiogen::Sine(8000, 1, 440, 0.8, 1.0);
  AttrMap params;
  params.SetInt("fade in frames", 2000);
  params.SetInt("fade out frames", 2000);
  auto out = Reg().Apply("audio fade", {&audio}, params);
  ASSERT_TRUE(out.ok());
  const AudioBuffer& faded = std::get<AudioBuffer>(*out);
  const AudioBuffer& original = std::get<AudioBuffer>(audio);
  // Quiet at the very edges, untouched in the middle.
  EXPECT_EQ(faded.samples[0], 0);
  EXPECT_LT(std::abs(faded.samples[100]), std::abs(original.samples[100]) + 1);
  EXPECT_EQ(faded.samples[4000], original.samples[4000]);
  EXPECT_EQ(faded.samples[7999], 0);
  params.SetInt("fade in frames", 9000);
  EXPECT_TRUE(
      Reg().Apply("audio fade", {&audio}, params).status().IsOutOfRange());
}

TEST(ExtendedOpsTest, ImageCrop) {
  MediaValue image = videogen::Still(64, 48, 7);
  AttrMap params;
  params.SetInt("x", 10);
  params.SetInt("y", 8);
  params.SetInt("width", 20);
  params.SetInt("height", 16);
  auto out = Reg().Apply("image crop", {&image}, params);
  ASSERT_TRUE(out.ok());
  const Image& cropped = std::get<Image>(*out);
  EXPECT_EQ(cropped.width, 20);
  EXPECT_EQ(cropped.height, 16);
  const Image& original = std::get<Image>(image);
  // Pixel (0,0) of the crop is pixel (10,8) of the original.
  EXPECT_EQ(cropped.data[0], original.data[3 * (8 * 64 + 10)]);
  params.SetInt("width", 600);
  EXPECT_TRUE(
      Reg().Apply("image crop", {&image}, params).status().IsOutOfRange());
}

TEST(ExtendedOpsTest, ImageScale) {
  MediaValue image = videogen::Still(64, 48, 9);
  AttrMap params;
  params.SetInt("width", 32);
  params.SetInt("height", 24);
  auto out = Reg().Apply("image scale", {&image}, params);
  ASSERT_TRUE(out.ok());
  const Image& scaled = std::get<Image>(*out);
  EXPECT_EQ(scaled.width, 32);
  EXPECT_EQ(scaled.height, 24);
  // Upscale back: still recognizably the same picture.
  AttrMap up;
  up.SetInt("width", 64);
  up.SetInt("height", 48);
  auto restored = Reg().Apply("image scale", {&*out}, up);
  ASSERT_TRUE(restored.ok());
  EXPECT_GT(*Psnr(std::get<Image>(image), std::get<Image>(*restored)), 20.0);
}

// ---------------------------------------------------------------------------
// Rights integrated into the database

TEST(DbRightsTest, MaterializeForEnforcesTransitiveRead) {
  auto db = MediaDatabase::CreateInMemory();
  auto video = IngestVideo(db.get(), "tape", 5, 20);
  ASSERT_TRUE(video.ok());
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("frame count", 10);
  auto cut = db->AddDerivedObject("cut", "video edit", {*video}, params);
  ASSERT_TRUE(cut.ok());

  ASSERT_TRUE(db->rights().Protect(*video, "alice", "(c) alice").ok());
  // Alice can read her own material through the derivation.
  EXPECT_TRUE(db->MaterializeFor(*cut, "alice").ok());
  // Bob cannot: the *input* is protected even though the derived
  // object is not.
  EXPECT_TRUE(
      db->MaterializeFor(*cut, "bob").status().IsFailedPrecondition());
  // Granting read fixes it.
  ASSERT_TRUE(
      db->rights().Grant(*video, "bob", MaskOf(MediaOperation::kRead)).ok());
  EXPECT_TRUE(db->MaterializeFor(*cut, "bob").ok());
}

TEST(DbRightsTest, DeriveForPropagatesCopyright) {
  auto db = MediaDatabase::CreateInMemory();
  auto video = IngestVideo(db.get(), "tape", 5, 20);
  ASSERT_TRUE(video.ok());
  ASSERT_TRUE(
      db->rights().Protect(*video, "alice", "(c) 1994 alice films").ok());
  AttrMap params;
  params.SetInt("start frame", 0);
  params.SetInt("frame count", 5);
  // Bob has no derive grant.
  EXPECT_TRUE(db->AddDerivedObjectFor("bob", "bobcut", "video edit", {*video},
                                      params)
                  .status()
                  .IsFailedPrecondition());
  ASSERT_TRUE(
      db->rights().Grant(*video, "bob", MaskOf(MediaOperation::kDerive)).ok());
  auto cut = db->AddDerivedObjectFor("bob", "bobcut", "video edit", {*video},
                                     params);
  ASSERT_TRUE(cut.ok());
  auto entry = db->Get(*cut);
  ASSERT_TRUE(entry.ok());
  auto notice = (*entry)->attrs.GetString("copyright");
  ASSERT_TRUE(notice.ok());
  EXPECT_NE(notice->find("(c) 1994 alice films"), std::string::npos);
}

TEST(DbRightsTest, RightsSurviveReopen) {
  std::string dir = ::testing::TempDir() + "/tbm_db_rights_persist";
  std::filesystem::remove_all(dir);
  ObjectId video = 0;
  {
    auto db = MediaDatabase::Open(dir);
    ASSERT_TRUE(db.ok());
    auto v = IngestVideo(db->get(), "tape", 5, 10);
    ASSERT_TRUE(v.ok());
    video = *v;
    ASSERT_TRUE((*db)->rights().Protect(video, "alice", "(c) alice").ok());
    ASSERT_TRUE((*db)
                    ->rights()
                    .Grant(video, "bob", MaskOf(MediaOperation::kRead))
                    .ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  auto db = MediaDatabase::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->rights().IsProtected(video));
  EXPECT_TRUE((*db)->MaterializeFor(video, "bob").ok());
  EXPECT_TRUE(
      (*db)->MaterializeFor(video, "carol").status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Descriptor and duration queries

TEST(DbQueryTest, SelectByDescriptorAttribute) {
  auto db = MediaDatabase::CreateInMemory();
  auto small = IngestVideo(db.get(), "small", 1, 10);
  ASSERT_TRUE(small.ok());
  // A taller clip.
  VideoValue tall;
  tall.frame_rate = Rational(25);
  tall.frames = videogen::Clip(48, 64, 10, 2);
  StoreOptions options;
  options.video_codec = "raw";
  auto interp = StoreValue(db->blob_store(), tall, "tall", options);
  ASSERT_TRUE(interp.ok());
  auto interp_id = db->AddInterpretation("tall_interp", *interp);
  ASSERT_TRUE(interp_id.ok());
  auto tall_id = db->AddMediaObject("tall", *interp_id, "tall");
  ASSERT_TRUE(tall_id.ok());

  auto hits = db->SelectByDescriptor(
      "frame height", [](const AttrValue& value) {
        return std::holds_alternative<int64_t>(value) &&
               std::get<int64_t>(value) >= 48;
      });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], *tall_id);
}

TEST(DbQueryTest, AttrIndexMatchesScanAndTracksUpdates) {
  auto db = MediaDatabase::CreateInMemory();
  for (int i = 0; i < 20; ++i) {
    AttrMap attrs;
    attrs.SetString("language", i % 3 == 0 ? "German" : "English");
    attrs.SetInt("year", 1990 + i % 5);
    auto id = db->AddEntity("e" + std::to_string(i), attrs);
    ASSERT_TRUE(id.ok());
  }
  // Scan result before indexing.
  auto scan = db->SelectByAttr("language", AttrValue(std::string("German")));
  ASSERT_TRUE(db->CreateAttrIndex("language").ok());
  EXPECT_TRUE(db->HasAttrIndex("language"));
  auto indexed =
      db->SelectByAttr("language", AttrValue(std::string("German")));
  EXPECT_EQ(indexed, scan);

  // Updates keep the index consistent.
  ObjectId first = scan.front();
  ASSERT_TRUE(
      db->SetAttr(first, "language", AttrValue(std::string("French"))).ok());
  auto german =
      db->SelectByAttr("language", AttrValue(std::string("German")));
  EXPECT_EQ(german.size(), scan.size() - 1);
  auto french =
      db->SelectByAttr("language", AttrValue(std::string("French")));
  ASSERT_EQ(french.size(), 1u);
  EXPECT_EQ(french[0], first);

  // Inserts after index creation are indexed.
  AttrMap attrs;
  attrs.SetString("language", "French");
  auto fresh = db->AddEntity("fresh", attrs);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(
      db->SelectByAttr("language", AttrValue(std::string("French"))).size(),
      2u);

  // Removal unindexes.
  ASSERT_TRUE(db->Remove(*fresh).ok());
  EXPECT_EQ(
      db->SelectByAttr("language", AttrValue(std::string("French"))).size(),
      1u);

  // Typed values don't collide: int 1990 vs string "1990".
  ASSERT_TRUE(db->CreateAttrIndex("year").ok());
  auto by_year = db->SelectByAttr("year", AttrValue(int64_t{1990}));
  EXPECT_FALSE(by_year.empty());
  EXPECT_TRUE(
      db->SelectByAttr("year", AttrValue(std::string("1990"))).empty());

  ASSERT_TRUE(db->DropAttrIndex("language").ok());
  EXPECT_FALSE(db->HasAttrIndex("language"));
  EXPECT_TRUE(db->DropAttrIndex("language").IsNotFound());
  // Post-drop queries fall back to scanning with identical results.
  EXPECT_EQ(
      db->SelectByAttr("language", AttrValue(std::string("French"))).size(),
      1u);
}

TEST(DbQueryTest, SelectByDuration) {
  auto db = MediaDatabase::CreateInMemory();
  auto short_clip = IngestVideo(db.get(), "short", 1, 10);   // 0.4 s.
  auto long_clip = IngestVideo(db.get(), "long", 2, 100);    // 4 s.
  ASSERT_TRUE(short_clip.ok() && long_clip.ok());
  auto hits = db->SelectByDuration(1.0, 10.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], *long_clip);
  hits = db->SelectByDuration(0.0, 0.5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], *short_clip);
  EXPECT_TRUE(db->SelectByDuration(100.0, 200.0).empty());
}

// ---------------------------------------------------------------------------
// Multiple interpretations of one BLOB (paper §4.1)

TEST(AlternativeInterpretationTest, SecondInterpretationOfSameBlob) {
  // "Definition 5 does not preclude a BLOB from having more than one
  // interpretation ... a second interpretation can be formed simply by
  // removing table entries or changing their element number."
  auto db = MediaDatabase::CreateInMemory();
  auto video = IngestVideo(db.get(), "full", 5, 20);
  ASSERT_TRUE(video.ok());
  auto entry = db->Get(*video);
  ASSERT_TRUE(entry.ok());
  auto interp_entry = db->Get((*entry)->interpretation_ref);
  ASSERT_TRUE(interp_entry.ok());
  const Interpretation& original = (*interp_entry)->interpretation;
  auto source = original.FindObject("full");
  ASSERT_TRUE(source.ok());

  // Build an alternative interpretation over the SAME BLOB exposing
  // only every other frame, renumbered — an "edited view" without
  // touching a byte.
  Interpretation alternative(original.blob());
  InterpretedObject halved;
  halved.name = "every_other";
  halved.descriptor = (*source)->descriptor;
  halved.time_system = (*source)->time_system;
  int64_t n = 0;
  for (size_t i = 0; i < (*source)->elements.size(); i += 2) {
    ElementPlacement p = (*source)->elements[i];
    p.element_number = n;
    p.start = n;
    ++n;
    halved.elements.push_back(std::move(p));
  }
  ASSERT_TRUE(alternative.AddObject(std::move(halved)).ok());
  auto alt_id = db->AddInterpretation("alt_interp", alternative);
  ASSERT_TRUE(alt_id.ok());
  auto alt_video = db->AddMediaObject("every_other", *alt_id, "every_other");
  ASSERT_TRUE(alt_video.ok());

  auto stream = db->MaterializeStream(*alt_video);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 10u);
  // Element 1 of the view is frame 2 of the original.
  auto full_stream = db->MaterializeStream(*video);
  ASSERT_TRUE(full_stream.ok());
  EXPECT_EQ(stream->at(1).data, full_stream->at(2).data);
}

// ---------------------------------------------------------------------------
// Layered (scalable) image coding

TEST(LayeredTest, BaseIsSmallAndRecognizable) {
  Image image = videogen::Still(128, 96, 21);
  auto layered = LayeredEncode(image);
  ASSERT_TRUE(layered.ok()) << layered.status();
  // Base layer alone is much smaller than the whole encoding.
  EXPECT_LT(layered->base.size(),
            (layered->base.size() + layered->enhancement.size()) / 2 + 1);
  auto preview = LayeredDecodeBase(*layered);
  ASSERT_TRUE(preview.ok());
  EXPECT_EQ(preview->width, 128);
  EXPECT_EQ(preview->height, 96);
  // The preview is the right picture (well above noise floor)...
  double base_psnr = *Psnr(image, *preview);
  EXPECT_GT(base_psnr, 20.0);
  // ...and the enhancement layer strictly improves on it.
  auto full = LayeredDecodeFull(*layered);
  ASSERT_TRUE(full.ok());
  double full_psnr = *Psnr(image, *full);
  EXPECT_GT(full_psnr, base_psnr + 2.0);
  EXPECT_GT(full_psnr, 30.0);
}

TEST(LayeredTest, ScalabilityClaimHolds) {
  // Paper §2.2: reduced fidelity by ignoring parts of the storage
  // unit. Reading only the base layer touches a minority of the bytes.
  Image image = videogen::Still(256, 192, 8);
  auto layered = LayeredEncode(image);
  ASSERT_TRUE(layered.ok());
  double base_fraction =
      static_cast<double>(layered->base.size()) /
      (layered->base.size() + layered->enhancement.size());
  EXPECT_LT(base_fraction, 0.5);
  EXPECT_GT(base_fraction, 0.02);
}

TEST(LayeredTest, InputValidation) {
  Image tiny = Image::Zero(1, 1, ColorModel::kRgb24);
  EXPECT_TRUE(LayeredEncode(tiny).status().IsInvalidArgument());
  Image gray = Image::Zero(16, 16, ColorModel::kGray8);
  EXPECT_TRUE(LayeredEncode(gray).status().IsInvalidArgument());
  // Corrupt enhancement fails cleanly; base still decodes.
  Image image = videogen::Still(64, 48, 3);
  auto layered = LayeredEncode(image);
  ASSERT_TRUE(layered.ok());
  layered->enhancement.resize(4);
  EXPECT_TRUE(LayeredDecodeBase(*layered).ok());
  EXPECT_FALSE(LayeredDecodeFull(*layered).ok());
}

TEST(LayeredTest, OddGeometry) {
  Image image = videogen::Still(63, 41, 4);
  auto layered = LayeredEncode(image);
  ASSERT_TRUE(layered.ok());
  auto full = LayeredDecodeFull(*layered);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->width, 63);
  EXPECT_EQ(full->height, 41);
}

// ---------------------------------------------------------------------------
// Composition sync rules

TEST(SyncRuleTest, ValidatesDeclaredRelations) {
  DerivationGraph graph;
  NodeId music = graph.AddLeaf(audiogen::Sine(8000, 1, 440, 0.4, 4.0),
                               "music");
  NodeId narration = graph.AddLeaf(audiogen::Sine(8000, 1, 220, 0.4, 2.0),
                                   "narration");
  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", music, Rational(0)).ok());
  ASSERT_TRUE(mm.AddComponent("c2", narration, Rational(1)).ok());
  // Narration [1,3] during music [0,4].
  ASSERT_TRUE(
      mm.RequireRelation("c2", "c1", IntervalRelation::kDuring).ok());
  EXPECT_TRUE(mm.ValidateRelations().ok());
  // A rule that doesn't hold is reported.
  ASSERT_TRUE(mm.RequireRelation("c2", "c1", IntervalRelation::kEquals).ok());
  Status status = mm.ValidateRelations();
  EXPECT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("equals"), std::string::npos);
  // Unknown components rejected at declaration time.
  EXPECT_TRUE(
      mm.RequireRelation("c9", "c1", IntervalRelation::kEquals).IsNotFound());
}

TEST(ExtendedOpsTest, NewOpsAreRegisteredWithCategories) {
  for (const char* name : {"video reverse", "video speed"}) {
    auto op = Reg().Find(name);
    ASSERT_TRUE(op.ok()) << name;
    EXPECT_EQ((*op)->category, DerivationCategory::kTiming) << name;
  }
  for (const char* name : {"audio fade", "image crop", "image scale"}) {
    auto op = Reg().Find(name);
    ASSERT_TRUE(op.ok()) << name;
    EXPECT_EQ((*op)->category, DerivationCategory::kContent) << name;
  }
}

}  // namespace
}  // namespace tbm

// Tests for the observability subsystem (src/obs/): histogram bucket
// boundaries and quantile estimation, counter/histogram exactness
// under thread contention, span nesting and cross-thread parenting,
// ring-buffer wraparound, Chrome trace serialization, and the
// TBM_OBS_DISABLED no-op mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tbm::obs {
namespace {

#ifndef TBM_OBS_DISABLED

// ---------------------------------------------------------------------------
// Histogram buckets & quantiles

TEST(ObsHistogramTest, BucketBoundaries) {
  // Bucket 0 holds values <= 1; bucket i holds (2^(i-1), 2^i].
  EXPECT_EQ(HistogramBucketIndex(0), 0);
  EXPECT_EQ(HistogramBucketIndex(1), 0);
  EXPECT_EQ(HistogramBucketIndex(2), 1);
  EXPECT_EQ(HistogramBucketIndex(3), 2);
  EXPECT_EQ(HistogramBucketIndex(4), 2);
  EXPECT_EQ(HistogramBucketIndex(5), 3);
  EXPECT_EQ(HistogramBucketIndex(8), 3);
  EXPECT_EQ(HistogramBucketIndex(9), 4);
  // Exact powers of two land in the bucket they bound.
  for (int i = 1; i < kHistogramBuckets - 1; ++i) {
    EXPECT_EQ(HistogramBucketIndex(1ull << i), i) << "2^" << i;
    EXPECT_EQ(HistogramBucketIndex((1ull << i) + 1), i + 1) << "2^" << i
                                                            << "+1";
  }
  // The last bucket absorbs everything, up to UINT64_MAX.
  EXPECT_EQ(HistogramBucketIndex(UINT64_MAX), kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketBound(kHistogramBuckets - 1), UINT64_MAX);
  // Bounds are inclusive upper limits consistent with the index map.
  for (int i = 0; i < kHistogramBuckets - 1; ++i) {
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketBound(i)), i);
  }
}

TEST(ObsHistogramTest, SnapshotCountsSumMinMax) {
  Histogram h;
  for (uint64_t v : {5u, 10u, 100u, 1000u, 3u}) h.Record(v);
  HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 1118u);
  EXPECT_EQ(snapshot.min, 3u);
  EXPECT_EQ(snapshot.max, 1000u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 1118.0 / 5);
  uint64_t bucket_total = 0;
  for (uint64_t b : snapshot.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 5u);
}

TEST(ObsHistogramTest, QuantilesClampToObservedRange) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(50);  // One bucket: (32, 64].
  HistogramSnapshot snapshot = h.Snapshot();
  // Every quantile of a constant distribution is that constant.
  EXPECT_EQ(snapshot.P50(), 50.0);
  EXPECT_EQ(snapshot.P95(), 50.0);
  EXPECT_EQ(snapshot.P99(), 50.0);
}

TEST(ObsHistogramTest, QuantilesOrderAcrossBuckets) {
  Histogram h;
  // 90 small values, 10 large ones: p50 must sit low, p99 high.
  for (int i = 0; i < 90; ++i) h.Record(4);
  for (int i = 0; i < 10; ++i) h.Record(4096);
  HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_LE(snapshot.P50(), 8.0);
  EXPECT_GE(snapshot.P99(), 2048.0);
  EXPECT_LE(snapshot.P99(), 4096.0);
  EXPECT_LE(snapshot.P50(), snapshot.P95());
  EXPECT_LE(snapshot.P95(), snapshot.P99());
  // Degenerate cases.
  EXPECT_EQ(HistogramSnapshot{}.P50(), 0.0);
  EXPECT_EQ(snapshot.Quantile(0.0), snapshot.min);
  EXPECT_EQ(snapshot.Quantile(1.0), snapshot.max);
}

// ---------------------------------------------------------------------------
// Contention exactness

TEST(ObsContentionTest, CounterExactUnderThreads) {
  Registry registry;
  Counter* counter = registry.counter("contended");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsContentionTest, HistogramExactCountAndSumUnderThreads) {
  Registry registry;
  Histogram* histogram = registry.histogram("contended_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record(static_cast<uint64_t>(t) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<uint64_t>(t + 1) * kPerThread;
  }
  EXPECT_EQ(snapshot.sum, expected_sum);
  EXPECT_EQ(snapshot.min, 1u);
  EXPECT_EQ(snapshot.max, static_cast<uint64_t>(kThreads));
}

TEST(ObsContentionTest, RegistryHandleIsStableAcrossLookups) {
  Registry registry;
  Counter* first = registry.counter("stable");
  // Force rebalancing pressure with many other instruments.
  for (int i = 0; i < 100; ++i) {
    registry.counter("other_" + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("stable"), first);
  first->Add(7);
  EXPECT_EQ(registry.Snapshot().counters.at("stable"), 7u);
}

TEST(ObsRegistryTest, SnapshotAndReset) {
  Registry registry;
  registry.counter("c")->Add(3);
  registry.gauge("g")->Set(-5);
  registry.histogram("h")->Record(42);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c"), 3u);
  EXPECT_EQ(snapshot.gauges.at("g"), -5);
  EXPECT_EQ(snapshot.histograms.at("h").count, 1u);
  EXPECT_FALSE(snapshot.empty());
  EXPECT_NE(snapshot.ToString().find("c"), std::string::npos);
  EXPECT_NE(snapshot.ToJson().find("\"counters\""), std::string::npos);
  registry.Reset();
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.at("c"), 0u);
  EXPECT_EQ(after.histograms.at("h").count, 0u);
}

TEST(ObsRegistryTest, LabeledHandlesMangleAndStayDistinct) {
  Registry registry;
  Counter* s1 = registry.counter("serve.admitted", "qos", "s1");
  Counter* s2 = registry.counter("serve.admitted", "qos", "s2");
  Counter* plain = registry.counter("serve.admitted");
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, plain);
  // Repeat lookups return the same handle (cacheable at the site).
  EXPECT_EQ(registry.counter("serve.admitted", "qos", "s1"), s1);
  EXPECT_EQ(registry.gauge("g", "k", "v"), registry.gauge("g", "k", "v"));
  EXPECT_EQ(registry.histogram("h", "k", "v"),
            registry.histogram("h", "k", "v"));

  s1->Add(3);
  s2->Add(5);
  plain->Add(7);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("serve.admitted{qos=s1}"), 3u);
  EXPECT_EQ(snapshot.counters.at("serve.admitted{qos=s2}"), 5u);
  EXPECT_EQ(snapshot.counters.at("serve.admitted"), 7u);
}

// Regression: Snapshot() order must be sorted by name — exporters and
// goldens rely on it — and labeled variants of one base name must sit
// adjacent (they share the base as a prefix).
TEST(ObsRegistryTest, SnapshotOrderIsSortedAndDeterministic) {
  Registry registry;
  // Registered deliberately out of order.
  registry.counter("zeta")->Add(1);
  registry.counter("serve.read_bytes", "qos", "s4")->Add(1);
  registry.counter("alpha")->Add(1);
  registry.counter("serve.read_bytes", "qos", "s1")->Add(1);
  registry.counter("serve.read_bytes")->Add(1);
  registry.gauge("mid")->Set(2);
  registry.histogram("hist.b")->Record(1);
  registry.histogram("hist.a")->Record(1);

  MetricsSnapshot first = registry.Snapshot();
  std::vector<std::string> counter_names;
  for (const auto& [name, value] : first.counters) {
    counter_names.push_back(name);
  }
  EXPECT_TRUE(std::is_sorted(counter_names.begin(), counter_names.end()));
  std::vector<std::string> expected = {
      "alpha", "serve.read_bytes", "serve.read_bytes{qos=s1}",
      "serve.read_bytes{qos=s4}", "zeta"};
  EXPECT_EQ(counter_names, expected);
  ASSERT_EQ(first.histograms.size(), 2u);
  EXPECT_EQ(first.histograms.begin()->first, "hist.a");

  // Repeated snapshots render byte-identically.
  MetricsSnapshot second = registry.Snapshot();
  EXPECT_EQ(first.ToString(), second.ToString());
  EXPECT_EQ(first.ToJson(), second.ToJson());
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorderTest, RingKeepsNewestEvents) {
  FlightRecorder recorder(/*capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Record(FlightEventType::kNote, "event", i, i * 2);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6 + i);  // Oldest-first, newest retained.
    EXPECT_EQ(events[i].b, (6 + i) * 2);
    EXPECT_GE(events[i].t_us, 0);
  }
}

TEST(FlightRecorderTest, SnapshotBelowCapacityIsComplete) {
  FlightRecorder recorder;
  recorder.Record(FlightEventType::kAdmit, "admitted", 1);
  recorder.Record(FlightEventType::kState, "STREAMING");
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, FlightEventType::kAdmit);
  EXPECT_EQ(events[1].type, FlightEventType::kState);
}

TEST(FlightRecorderTest, DumpNamesLabelCauseAndEvents) {
  FlightRecorder recorder;
  recorder.set_label("session 7 clip");
  recorder.Record(FlightEventType::kAdmit, "admitted", 1, 10000);
  recorder.Record(FlightEventType::kDegrade, "stride doubled", 1, 2);
  recorder.Record(FlightEventType::kEvict, "slow client", 12);
  std::string dump = recorder.Dump("send stalled");
  EXPECT_NE(dump.find("session 7 clip"), std::string::npos) << dump;
  EXPECT_NE(dump.find("send stalled"), std::string::npos);
  EXPECT_NE(dump.find("3 events recorded"), std::string::npos);
  EXPECT_NE(dump.find("ADMIT"), std::string::npos);
  EXPECT_NE(dump.find("DEGRADE"), std::string::npos);
  EXPECT_NE(dump.find("stride doubled"), std::string::npos);
  EXPECT_NE(dump.find("a=1 b=2"), std::string::npos);
  // Event order in the text matches recording order.
  EXPECT_LT(dump.find("ADMIT"), dump.find("DEGRADE"));
  EXPECT_LT(dump.find("DEGRADE"), dump.find("EVICT"));
  // Empty cause gets the default wording.
  EXPECT_NE(recorder.Dump("").find("dump requested"), std::string::npos);
}

TEST(FlightRecorderTest, DumpAllSeesEveryLiveRecorder) {
  FlightRecorder first;
  first.set_label("recorder-one");
  first.Record(FlightEventType::kNote, "alive");
  std::string all;
  {
    FlightRecorder second;
    second.set_label("recorder-two");
    second.Record(FlightEventType::kNote, "alive");
    all = DumpAllFlightRecorders("test sweep");
    EXPECT_NE(all.find("recorder-two"), std::string::npos);
  }
  EXPECT_NE(all.find("recorder-one"), std::string::npos);
  EXPECT_NE(all.find("test sweep"), std::string::npos);
  // Destroyed recorders drop out of later sweeps.
  EXPECT_EQ(DumpAllFlightRecorders("again").find("recorder-two"),
            std::string::npos);
}

// TSan target: one session recording while a dumper snapshots.
TEST(FlightRecorderTest, ConcurrentRecordAndDumpAreSafe) {
  FlightRecorder recorder;
  recorder.set_label("contended");
  constexpr uint64_t kWrites = 2000;
  std::thread writer([&] {
    for (uint64_t i = 0; i < kWrites; ++i) {
      recorder.Record(FlightEventType::kNote, "tick", i);
    }
  });
  for (int i = 0; i < 200; ++i) {
    std::string dump = recorder.Dump("concurrent");
    EXPECT_NE(dump.find("contended"), std::string::npos);
    (void)DumpAllFlightRecorders("concurrent");
    (void)recorder.Snapshot();
  }
  writer.join();
  EXPECT_EQ(recorder.recorded(), kWrites);
}

TEST(FlightRecorderTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kState), "STATE");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kAdmit), "ADMIT");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kDegrade), "DEGRADE");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kSeek), "SEEK");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kFault), "FAULT");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kSlowRead), "SLOW_READ");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kEvict), "EVICT");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kNote), "NOTE");
}

// ---------------------------------------------------------------------------
// ThreadPool instrumentation (hooks installed by obs at static init).

#ifndef TBM_OBS_DISABLED
TEST(ObsPoolTest, PoolReportsDepthAndTaskLatency) {
  auto& registry = Registry::Global();
  HistogramSnapshot task_before = registry.histogram("pool.task_us")->Snapshot();
  HistogramSnapshot wait_before =
      registry.histogram("pool.queue_wait_us")->Snapshot();

  constexpr int kTasks = 32;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // Destructor drains the queue.
  EXPECT_EQ(ran.load(), kTasks);

  // Every task reports exactly one (queue_wait, run) sample.
  HistogramSnapshot task_after = registry.histogram("pool.task_us")->Snapshot();
  HistogramSnapshot wait_after =
      registry.histogram("pool.queue_wait_us")->Snapshot();
  EXPECT_EQ(task_after.count - task_before.count, static_cast<uint64_t>(kTasks));
  EXPECT_EQ(wait_after.count - wait_before.count, static_cast<uint64_t>(kTasks));

  // The gauge tracks the live queue; after the pool drained it reads 0.
  EXPECT_EQ(registry.Snapshot().gauges.at("pool.queue_depth"), 0);
}

TEST(ObsPoolTest, QueueDepthVisibleWhileBlocked) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  ThreadPool pool(1);
  pool.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  pool.Submit([] {});
  pool.Submit([] {});
  // Once the single worker is pinned inside the first task, exactly
  // the other two tasks are waiting in the queue.
  while (!started.load()) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(), 2);
  release.store(true);
}
#endif  // !TBM_OBS_DISABLED

// ---------------------------------------------------------------------------
// Tracing

TEST(ObsTraceTest, SpansNestOnOneThread) {
  Tracer tracer;
  uint64_t outer_id = 0, inner_id = 0;
  {
    ScopedSpan outer(&tracer, "outer");
    outer_id = outer.span_id();
    {
      ScopedSpan inner(&tracer, "inner");
      inner_id = inner.span_id();
      EXPECT_EQ(Tracer::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : spans) by_name[span.name] = span;
  EXPECT_EQ(by_name.at("outer").parent_id, 0u);
  EXPECT_EQ(by_name.at("inner").parent_id, outer_id);
  EXPECT_EQ(by_name.at("inner").span_id, inner_id);
  // The child is contained in the parent.
  EXPECT_GE(by_name.at("inner").start_ns, by_name.at("outer").start_ns);
  EXPECT_LE(by_name.at("inner").start_ns + by_name.at("inner").duration_ns,
            by_name.at("outer").start_ns + by_name.at("outer").duration_ns);
}

TEST(ObsTraceTest, ExplicitParentCrossesThreads) {
  Tracer tracer;
  uint64_t parent_id = 0;
  {
    ScopedSpan parent(&tracer, "parent");
    parent_id = parent.span_id();
    std::thread worker([&tracer, parent_id] {
      // A worker has no thread-local current span; the explicit parent
      // keeps the edge.
      EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
      ScopedSpan child(&tracer, "child", parent_id);
    });
    worker.join();
  }
  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 2u);
  std::set<uint32_t> thread_ids;
  for (const SpanRecord& span : spans) {
    thread_ids.insert(span.thread_id);
    if (std::string(span.name) == "child") {
      EXPECT_EQ(span.parent_id, parent_id);
    }
  }
  EXPECT_EQ(thread_ids.size(), 2u);  // Two distinct recording threads.
}

TEST(ObsTraceTest, RingWrapsKeepingNewestSpans) {
  Tracer tracer;
  const size_t total = Tracer::kRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    ScopedSpan span(&tracer, "wrap");
  }
  std::vector<SpanRecord> spans = tracer.Collect();
  EXPECT_EQ(spans.size(), Tracer::kRingCapacity);
  // The survivors are the newest spans: the last kRingCapacity of the
  // sequentially-assigned ids (whose base is randomized per tracer for
  // cross-process uniqueness, so only relative positions are stable).
  uint64_t min_id = UINT64_MAX, max_id = 0;
  for (const SpanRecord& span : spans) {
    min_id = std::min(min_id, span.span_id);
    max_id = std::max(max_id, span.span_id);
  }
  EXPECT_EQ(max_id - min_id + 1, Tracer::kRingCapacity);
  EXPECT_GT(min_id, 0u);
}

TEST(ObsTraceTest, ClearForgetsRecordedSpans) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "before"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Collect().empty());
  { ScopedSpan span(&tracer, "after"); }
  std::vector<SpanRecord> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "after");
}

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    ScopedSpan span(&tracer, "muted");
    EXPECT_EQ(span.span_id(), 0u);
  }
  EXPECT_TRUE(tracer.Collect().empty());
}

TEST(ObsTraceTest, InternReturnsStablePointer) {
  Tracer tracer;
  const char* a = tracer.Intern("dynamic_name");
  const char* b = tracer.Intern(std::string("dynamic") + "_name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "dynamic_name");
}

TEST(ObsTraceTest, ConcurrentWritersAllSpansSurvive) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;  // Well under the ring capacity.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&tracer, "worker");
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<SpanRecord> spans = tracer.Collect();
  EXPECT_EQ(spans.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  std::set<uint64_t> ids;
  for (const SpanRecord& span : spans) ids.insert(span.span_id);
  EXPECT_EQ(ids.size(), spans.size());  // All distinct.
}

#else  // TBM_OBS_DISABLED

// ---------------------------------------------------------------------------
// No-op mode: instruments are empty and methods compile to nothing.

static_assert(sizeof(Counter) == 1, "disabled Counter must be empty");
static_assert(sizeof(Gauge) == 1, "disabled Gauge must be empty");
static_assert(sizeof(Histogram) == 1, "disabled Histogram must be empty");
static_assert(sizeof(ScopedSpan) == 1, "disabled ScopedSpan must be empty");
static_assert(Tracer::kRingCapacity == 0,
              "disabled Tracer must not reserve ring space");

TEST(ObsDisabledTest, EverythingIsInertButSafe) {
  EXPECT_EQ(NowTicksNs(), 0);
  auto& registry = Registry::Global();
  Counter* counter = registry.counter("ignored");
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 0u);
  registry.gauge("g")->Set(9);
  EXPECT_EQ(registry.gauge("g")->Value(), 0);
  registry.histogram("h")->Record(1234);
  EXPECT_EQ(registry.histogram("h")->Snapshot().count, 0u);
  EXPECT_TRUE(registry.Snapshot().empty());

  auto& tracer = Tracer::Global();
  { ScopedSpan span("noop"); }
  EXPECT_TRUE(tracer.Collect().empty());
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(NewTraceId(), 0u);

  FlightRecorder recorder;
  recorder.set_label("inert");
  recorder.Record(FlightEventType::kEvict, "ignored", 1, 2);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_TRUE(recorder.Dump("cause").empty());
  EXPECT_TRUE(DumpAllFlightRecorders("cause").empty());
}

#endif  // TBM_OBS_DISABLED

// ---------------------------------------------------------------------------
// Chrome trace export (mode-independent plain-data path)

TEST(ObsTraceTest, ChromeTraceJsonShape) {
  std::vector<SpanRecord> spans;
  SpanRecord parent;
  parent.name = "derive.evaluate";
  parent.span_id = 1;
  parent.thread_id = 0;
  parent.start_ns = 1000;
  parent.duration_ns = 9000;
  SpanRecord child;
  child.name = "derive:video edit";
  child.span_id = 2;
  child.parent_id = 1;
  child.thread_id = 1;
  child.start_ns = 2000;
  child.duration_ns = 3000;
  spans.push_back(parent);
  spans.push_back(child);
  std::string json = ToChromeTraceJson(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"derive.evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"derive:video edit\""), std::string::npos);
  // Times are exported in microseconds.
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":9"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);

  std::string path =
      (std::filesystem::temp_directory_path() / "tbm_obs_test_trace.json")
          .string();
  ASSERT_TRUE(WriteChromeTrace(spans, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::filesystem::remove(path);
}

TEST(ObsTraceTest, ChromeTraceJsonEmptyInput) {
  std::string json = ToChromeTraceJson({});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("[]"), std::string::npos);
}

}  // namespace
}  // namespace tbm::obs

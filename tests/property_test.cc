// Property-style randomized tests: seeded sweeps checking invariants
// that must hold for *any* instance — category-lattice implications,
// index/linear-scan agreement, rescale ordering, serialization
// robustness against truncation.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/adpcm.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "codec/tjpeg.h"
#include "derive/graph.h"
#include "derive/operators.h"
#include "derive/scheduler.h"
#include "interp/index.h"
#include "interp/interpretation.h"
#include "media/attr.h"
#include "stream/category.h"
#include "time/rational.h"

namespace tbm {
namespace {

// Deterministic PRNG for reproducible "random" instances.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B9) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int64_t Range(int64_t lo, int64_t hi) {  // [lo, hi)
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo));
  }
  bool Chance(int percent) { return Range(0, 100) < percent; }

 private:
  uint64_t state_;
};

MediaDescriptor AnyDescriptor() {
  MediaDescriptor desc;
  desc.type_name = "audio/pcm-block";
  desc.kind = MediaKind::kAudio;
  return desc;
}

// Random stream without overlaps: continuous runs with occasional gaps
// and occasional events.
TimedStream RandomStream(Rng* rng, int64_t elements) {
  TimedStream stream(AnyDescriptor(), TimeSystem(1000));
  int64_t t = 0;
  for (int64_t i = 0; i < elements; ++i) {
    if (rng->Chance(10)) t += rng->Range(1, 50);  // Gap.
    int64_t duration = rng->Chance(15) ? 0 : rng->Range(1, 20);
    StreamElement e;
    e.data = Bytes(static_cast<size_t>(rng->Range(1, 64)), 0);
    e.start = t;
    e.duration = duration;
    if (rng->Chance(20)) e.descriptor.SetInt("variant", rng->Range(0, 3));
    EXPECT_TRUE(stream.Append(std::move(e)).ok());
    t += duration;
  }
  return stream;
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// --- Category lattice implications (Figure 1 structure) --------------------

TEST_P(SeededProperty, CategoryLatticeImplicationsHold) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    TimedStream stream = RandomStream(&rng, rng.Range(1, 60));
    StreamCategories c = Classify(stream);
    // uniform ⇒ constant frequency ∧ constant data rate.
    if (c.uniform) {
      EXPECT_TRUE(c.constant_frequency);
      EXPECT_TRUE(c.constant_data_rate);
    }
    // constant frequency / data rate ⇒ continuous.
    if (c.constant_frequency) {
      EXPECT_TRUE(c.continuous);
    }
    if (c.constant_data_rate) {
      EXPECT_TRUE(c.continuous);
    }
    // event-based ⇒ all durations zero ⇒ not constant frequency.
    if (c.event_based) {
      EXPECT_FALSE(c.constant_frequency);
      for (const StreamElement& e : stream) EXPECT_EQ(e.duration, 0);
    }
    // ToString never empty and starts with the homogeneity word.
    std::string text = c.ToString();
    EXPECT_FALSE(text.empty());
    EXPECT_TRUE(text.rfind(c.homogeneous ? "homogeneous" : "heterogeneous",
                           0) == 0);
  }
}

TEST_P(SeededProperty, ElementAtTimeAgreesWithLinearScan) {
  Rng rng(GetParam() * 77 + 1);
  TimedStream stream = RandomStream(&rng, 50);
  const int64_t end = stream.EndTime() + 5;
  for (int64_t t = -2; t <= end; ++t) {
    // Linear-scan reference: latest-starting element containing t.
    int64_t expected = -1;
    for (size_t i = 0; i < stream.size(); ++i) {
      const StreamElement& e = stream.at(i);
      bool contains = e.duration == 0 ? (e.start == t)
                                      : (t >= e.start &&
                                         t < e.start + e.duration);
      if (contains) expected = static_cast<int64_t>(i);
    }
    auto actual = stream.ElementAtTime(t);
    if (expected < 0) {
      EXPECT_FALSE(actual.ok()) << "t=" << t;
    } else {
      ASSERT_TRUE(actual.ok()) << "t=" << t;
      // Any containing element is acceptable only if it's the
      // latest-starting one; ties (same start) may return either, so
      // compare starts instead of indexes.
      EXPECT_EQ(stream.at(*actual).start, stream.at(expected).start)
          << "t=" << t;
    }
  }
}

// --- Interpretation index equivalence ---------------------------------------

TEST_P(SeededProperty, CompactIndexMatchesFlatTable) {
  Rng rng(GetParam() * 131 + 7);
  InterpretedObject object;
  object.name = "fuzz";
  object.time_system = TimeSystem(1000);
  int64_t t = 0;
  uint64_t offset = 0;
  const int64_t n = rng.Range(1, 200);
  for (int64_t i = 0; i < n; ++i) {
    if (rng.Chance(15)) t += rng.Range(1, 30);        // Gap.
    if (rng.Chance(25)) offset += rng.Range(1, 500);  // Placement hole.
    int64_t duration = rng.Range(1, 10);
    uint64_t size = static_cast<uint64_t>(rng.Range(1, 2000));
    ElementPlacement p{i, t, duration, ByteRange{offset, size}, {}};
    if (rng.Chance(10)) p.descriptor.SetString("frame kind", "key");
    object.elements.push_back(std::move(p));
    t += duration;
    offset += size;
  }
  CompactElementIndex index = CompactElementIndex::Build(object);
  ASSERT_EQ(index.element_count(), n);
  for (int64_t i = 0; i < n; ++i) {
    const ElementPlacement& truth = object.elements[i];
    EXPECT_EQ(*index.PlacementOf(i), truth.placement) << i;
    EXPECT_EQ(*index.SpanOf(i), (TickSpan{truth.start, truth.duration})) << i;
    EXPECT_EQ(*index.ElementAtTime(truth.start), i);
    // Mid-element lookups hit the same element.
    if (truth.duration > 1) {
      EXPECT_EQ(*index.ElementAtTime(truth.start + truth.duration - 1), i);
    }
  }
  // Sync table equals the brute-force key scan.
  std::vector<int64_t> keys;
  for (const ElementPlacement& p : object.elements) {
    auto kind = p.descriptor.GetString("frame kind");
    if (kind.ok() && *kind == "key") keys.push_back(p.element_number);
  }
  EXPECT_EQ(index.sync_elements(), keys);
}

// --- Rescale ordering --------------------------------------------------------

TEST_P(SeededProperty, RescaleRoundingOrdered) {
  Rng rng(GetParam() * 1337 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    int64_t ticks = rng.Range(-100000, 100000);
    Rational factor(rng.Range(1, 1000), rng.Range(1, 1000));
    int64_t floor_v = RescaleTicks(ticks, factor, Rounding::kFloor);
    int64_t nearest_v = RescaleTicks(ticks, factor, Rounding::kNearest);
    int64_t ceil_v = RescaleTicks(ticks, factor, Rounding::kCeil);
    EXPECT_LE(floor_v, nearest_v);
    EXPECT_LE(nearest_v, ceil_v);
    EXPECT_LE(ceil_v - floor_v, 1);
    // Exactness when divisible.
    int64_t exact = ticks * factor.den();
    EXPECT_EQ(RescaleTicks(exact, factor, Rounding::kFloor) * factor.den(),
              exact * factor.num());
  }
}

TEST_P(SeededProperty, TimeSystemConversionRoundTripWithinOneTick) {
  Rng rng(GetParam() * 7 + 11);
  for (int trial = 0; trial < 100; ++trial) {
    TimeSystem from(Rational(rng.Range(1, 100000), rng.Range(1, 100)));
    TimeSystem to(Rational(rng.Range(1, 100000), rng.Range(1, 100)));
    int64_t ticks = rng.Range(0, 1000000);
    int64_t converted = from.ConvertTo(to, ticks, Rounding::kNearest);
    int64_t back = to.ConvertTo(from, converted, Rounding::kNearest);
    // Round trip through a coarser system can lose up to half a tick
    // each way, measured in the source system's resolution.
    double tick_ratio = from.frequency().ToDouble() / to.frequency().ToDouble();
    double tolerance = std::max(1.0, tick_ratio);
    EXPECT_LE(std::abs(back - ticks), tolerance)
        << from.ToString() << " -> " << to.ToString();
  }
}

// --- Serialization robustness ------------------------------------------------

TEST_P(SeededProperty, TruncatedAttrMapNeverSucceedsWrongly) {
  Rng rng(GetParam() * 911);
  AttrMap attrs;
  const int count = static_cast<int>(rng.Range(1, 10));
  for (int i = 0; i < count; ++i) {
    std::string name = "a" + std::to_string(i);
    switch (rng.Range(0, 4)) {
      case 0: attrs.SetInt(name, rng.Range(-1000, 1000)); break;
      case 1: attrs.SetDouble(name, rng.Range(0, 100) / 7.0); break;
      case 2: attrs.SetString(name, std::string(rng.Range(0, 20), 'x')); break;
      default: attrs.SetRational(name,
                                 Rational(rng.Range(1, 99), rng.Range(1, 99)));
    }
  }
  BinaryWriter writer;
  attrs.Serialize(&writer);
  // The full buffer round-trips.
  {
    BinaryReader reader(writer.buffer());
    auto restored = AttrMap::Deserialize(&reader);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, attrs);
  }
  // Every strict prefix either fails cleanly or — if it happens to
  // parse (varint prefixes can) — yields fewer attributes. It must
  // never crash or hang.
  for (size_t cut = 0; cut < writer.size(); ++cut) {
    BinaryReader reader(ByteSpan(writer.buffer().data(), cut));
    auto restored = AttrMap::Deserialize(&reader);
    if (restored.ok()) {
      EXPECT_LT(restored->size(), attrs.size() + 1);
    }
  }
}

TEST_P(SeededProperty, TruncatedTjpegNeverCrashes) {
  Rng rng(GetParam() * 4242);
  Image image = videogen::Still(24 + rng.Range(0, 16) * 2,
                                24 + rng.Range(0, 16) * 2,
                                static_cast<uint32_t>(GetParam()));
  auto encoded = TjpegEncode(image, static_cast<int>(rng.Range(1, 100)));
  ASSERT_TRUE(encoded.ok());
  for (size_t cut = 0; cut < encoded->size(); cut += 7) {
    Bytes truncated(encoded->begin(), encoded->begin() + cut);
    auto decoded = TjpegDecode(truncated);
    // Must never succeed on a strict prefix of the luma/chroma data...
    // except headers-only prefixes of degenerate tiny images; accept
    // Status or a validated image.
    if (decoded.ok()) {
      EXPECT_TRUE(decoded->Validate().ok());
    }
  }
}

TEST_P(SeededProperty, AdpcmRoundTripSnrAcrossSignals) {
  Rng rng(GetParam() * 31337);
  double freq = 100.0 + rng.Range(0, 3000);
  double amplitude = 0.1 + rng.Range(0, 80) / 100.0;
  AudioBuffer audio = audiogen::Sine(22050, 1, freq, amplitude, 0.3);
  auto blocks = AdpcmEncode(audio, 512);
  ASSERT_TRUE(blocks.ok());
  auto decoded = AdpcmDecode(*blocks, 22050, 1);
  ASSERT_TRUE(decoded.ok());
  EXPECT_GT(*AudioSnr(audio, *decoded), 10.0)
      << "freq=" << freq << " amp=" << amplitude;
}

// --- Fusion: compiled plans are bit-exact against node-at-a-time -----------

// One link of a random derivation chain.
struct ChainStep {
  std::string op;
  AttrMap params;
};

// Random chain of image content ops, tracking the value's shape so
// every step is valid. Covers each fusable image op: filter (all
// kinds), color separation, reencode, crop, scale.
std::vector<ChainStep> RandomImageChain(Rng* rng, int depth, int64_t* w,
                                        int64_t* h) {
  std::vector<ChainStep> steps;
  bool cmyk = false;
  for (int i = 0; i < depth; ++i) {
    ChainStep step;
    // After color separation only the byte-wise filters still apply.
    int pick = cmyk ? static_cast<int>(rng->Range(0, 2))
                    : static_cast<int>(rng->Range(0, 7));
    switch (pick) {
      case 0:
        step.op = "image filter";
        step.params.SetString("kind", "invert");
        break;
      case 1:
        step.op = "image filter";
        step.params.SetString("kind", "threshold");
        step.params.SetInt("threshold", rng->Range(1, 255));
        break;
      case 2:
        step.op = "image filter";
        step.params.SetString("kind", "box blur");
        step.params.SetInt("radius", rng->Range(1, 3));
        break;
      case 3:
        step.op = "image reencode";
        step.params.SetInt("quality", rng->Range(30, 90));
        break;
      case 4: {
        if (*w < 9 || *h < 9) {  // too small to crop an 8-px window from
          step.op = "image filter";
          step.params.SetString("kind", "invert");
          break;
        }
        step.op = "image crop";
        int64_t x = rng->Range(0, *w - 8);
        int64_t y = rng->Range(0, *h - 8);
        int64_t cw = rng->Range(8, *w - x + 1);
        int64_t ch = rng->Range(8, *h - y + 1);
        step.params.SetInt("x", x);
        step.params.SetInt("y", y);
        step.params.SetInt("width", cw);
        step.params.SetInt("height", ch);
        *w = cw;
        *h = ch;
        break;
      }
      case 5:
        step.op = "image scale";
        *w = rng->Range(8, 64);
        *h = rng->Range(8, 64);
        step.params.SetInt("width", *w);
        step.params.SetInt("height", *h);
        break;
      default:
        step.op = "color separation";
        step.params.SetDouble("black generation", rng->Range(0, 101) / 100.0);
        step.params.SetDouble("under color removal",
                              rng->Range(0, 101) / 100.0);
        cmyk = true;
        break;
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

// Random chain of audio content ops, tracking rate and frame count.
// Covers each fusable audio op: gain, normalization, fade, resample.
std::vector<ChainStep> RandomAudioChain(Rng* rng, int depth, int64_t rate,
                                        int64_t frames) {
  std::vector<ChainStep> steps;
  for (int i = 0; i < depth; ++i) {
    ChainStep step;
    switch (rng->Range(0, 4)) {
      case 0:
        step.op = "audio gain";
        step.params.SetDouble("gain", rng->Range(1, 20) / 10.0);
        break;
      case 1:
        step.op = "audio normalization";
        step.params.SetDouble("target peak", rng->Range(50, 96) / 100.0);
        break;
      case 2:
        step.op = "audio fade";
        step.params.SetInt("fade in frames",
                           rng->Range(0, std::max<int64_t>(2, frames / 2)));
        step.params.SetInt("fade out frames",
                           rng->Range(0, std::max<int64_t>(2, frames / 2)));
        break;
      default: {
        step.op = "audio resample";
        int64_t target = rng->Range(4000, 16000);
        step.params.SetInt("target rate", target);
        if (target != rate) {
          frames = frames * target / rate;  // mirrors AudioResampleStage
          rate = target;
        }
        break;
      }
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

NodeId BuildChain(DerivationGraph* graph, const MediaValue& leaf_value,
                  const std::vector<ChainStep>& steps) {
  NodeId node = graph->AddLeaf(leaf_value, "leaf");
  for (const ChainStep& step : steps) {
    auto next = graph->AddDerived(step.op, {node}, step.params);
    EXPECT_TRUE(next.ok()) << step.op << ": " << next.status();
    node = *next;
  }
  return node;
}

void ExpectBitIdentical(const MediaValue& a, const MediaValue& b) {
  ASSERT_EQ(a.index(), b.index());
  if (const Image* ia = std::get_if<Image>(&a)) {
    const Image& ib = std::get<Image>(b);
    ASSERT_EQ(ia->width, ib.width);
    ASSERT_EQ(ia->height, ib.height);
    ASSERT_EQ(ia->model, ib.model);
    ASSERT_EQ(ia->data.size(), ib.data.size());
    EXPECT_EQ(std::memcmp(ia->data.data(), ib.data.data(), ib.data.size()), 0);
  } else if (const AudioBuffer* aa = std::get_if<AudioBuffer>(&a)) {
    const AudioBuffer& ab = std::get<AudioBuffer>(b);
    ASSERT_EQ(aa->sample_rate, ab.sample_rate);
    ASSERT_EQ(aa->channels, ab.channels);
    ASSERT_EQ(aa->samples.size(), ab.samples.size());
    EXPECT_EQ(std::memcmp(aa->samples.data(), ab.samples.data(),
                          ab.samples.size() * sizeof(int16_t)),
              0);
  } else {
    FAIL() << "unexpected value kind";
  }
}

TEST_P(SeededProperty, FusedChainsBitExactAgainstUnfused) {
  Rng rng(GetParam() * 60493 + 17);
  for (int depth : {2, 5, 9}) {
    for (int trial = 0; trial < 3; ++trial) {
      MediaValue leaf;
      std::vector<ChainStep> steps;
      if (rng.Chance(50)) {
        int64_t w = rng.Range(24, 64), h = rng.Range(24, 64);
        leaf = videogen::Still(static_cast<int32_t>(w),
                               static_cast<int32_t>(h),
                               static_cast<uint32_t>(rng.Range(0, 100)));
        steps = RandomImageChain(&rng, depth, &w, &h);
      } else {
        int64_t rate = 8000;
        AudioBuffer tone =
            audiogen::Sine(static_cast<int32_t>(rate),
                           rng.Chance(50) ? 1 : 2, 440, 0.6, 0.25);
        int64_t frames = tone.FrameCount();
        leaf = std::move(tone);
        steps = RandomAudioChain(&rng, depth, rate, frames);
      }

      DerivationGraph fused_graph, plain_graph;
      NodeId fused_root = BuildChain(&fused_graph, leaf, steps);
      NodeId plain_root = BuildChain(&plain_graph, leaf, steps);

      DerivationEngine fused(&fused_graph);  // plan compiler on
      EvalOptions off;
      off.fuse = false;
      DerivationEngine plain(&plain_graph, off);

      auto a = fused.Evaluate(fused_root);
      auto b = plain.Evaluate(plain_root);
      ASSERT_TRUE(a.ok()) << "depth " << depth << ": " << a.status();
      ASSERT_TRUE(b.ok()) << "depth " << depth << ": " << b.status();
      ExpectBitIdentical(**a, **b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tbm

// Aliasing invariants of the zero-copy buffer substrate: ref-counted
// Buffer / BufferSlice / TypedSlice semantics, ByteRange overflow
// regressions, logical-vs-resident byte accounting of MediaValues, and
// the expansion cache's deduplicated budget charging.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "base/buffer.h"
#include "base/bytes.h"
#include "blob/memory_store.h"
#include "codec/synthetic.h"
#include "derive/cache.h"
#include "derive/operators.h"
#include "derive/value.h"
#include "stream/timed_stream.h"

namespace tbm {
namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

Bytes Pattern(size_t n) {
  Bytes out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(i * 31 + 7);
  return out;
}

VideoValue SmallClip(int64_t frames) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(48, 32, frames, 7);
  return video;
}

const DerivationRegistry& Reg() { return DerivationRegistry::Builtin(); }

// ---------------------------------------------------------------------------
// ByteRange overflow regressions

TEST(ByteRangeOverflowTest, EndSaturatesInsteadOfWrapping) {
  ByteRange wrapping{kMax - 5, 100};
  EXPECT_EQ(wrapping.end(), kMax);  // Not (kMax - 5 + 100) mod 2^64 == 94.
  ByteRange at_limit{kMax - 100, 100};
  EXPECT_EQ(at_limit.end(), kMax);
  EXPECT_EQ((ByteRange{0, kMax}).end(), kMax);
}

TEST(ByteRangeOverflowTest, ValidateRejectsOverflow) {
  EXPECT_TRUE((ByteRange{kMax - 5, 100}).Validate().IsInvalidArgument());
  EXPECT_TRUE((ByteRange{kMax, 1}).Validate().IsInvalidArgument());
  EXPECT_TRUE((ByteRange{kMax - 100, 100}).Validate().ok());
  EXPECT_TRUE((ByteRange{0, kMax}).Validate().ok());
  EXPECT_TRUE((ByteRange{0, 0}).Validate().ok());
}

TEST(ByteRangeOverflowTest, WrappedRangeIsNeverContained) {
  // Pre-fix, a wrapped end() made a range reaching past the address
  // space look like a tiny prefix and pass Contains.
  ByteRange small{0, 1000};
  ByteRange wrapped{500, kMax - 100};
  EXPECT_FALSE(small.Contains(wrapped));
  EXPECT_TRUE(small.Overlaps(wrapped));  // They do share [500, 1000).
}

// ---------------------------------------------------------------------------
// Buffer / BufferSlice aliasing

TEST(BufferSliceTest, SubSlicesShareOneBuffer) {
  Bytes payload = Pattern(256);
  Bytes expected = payload;
  BufferSlice whole(std::move(payload));
  ASSERT_EQ(whole.size(), 256u);
  EXPECT_NE(whole.buffer_id(), 0u);

  BufferSlice head = whole.Slice(0, 64);
  BufferSlice mid = whole.Slice(64, 128);
  EXPECT_TRUE(head.SharesBufferWith(whole));
  EXPECT_TRUE(mid.SharesBufferWith(head));
  EXPECT_EQ(head.buffer_id(), whole.buffer_id());
  EXPECT_EQ(mid.data(), whole.data() + 64);  // Same physical bytes.
  EXPECT_EQ(mid[0], expected[64]);

  // Clamping: a sub-slice cannot reach past its parent.
  EXPECT_EQ(whole.Slice(200, 1000).size(), 56u);
  EXPECT_EQ(whole.Slice(300, 10).size(), 0u);
  EXPECT_EQ(whole.Slice(300, 10).buffer_id(), 0u);  // Empty needs no buffer.
}

TEST(BufferSliceTest, MutableCopyNeverWritesThrough) {
  BufferSlice slice(Pattern(64));
  uint8_t before = slice[3];
  Bytes copy = slice.MutableCopy();
  copy[3] = static_cast<uint8_t>(~copy[3]);
  EXPECT_EQ(slice[3], before);  // The view is untouched.
  // Writing the copy back re-wraps into a fresh buffer: siblings of the
  // old buffer still see the old bytes.
  BufferSlice sibling = slice.Slice(0, 64);
  uint64_t old_id = slice.buffer_id();
  slice = std::move(copy);
  EXPECT_NE(slice.buffer_id(), old_id);
  EXPECT_FALSE(slice.SharesBufferWith(sibling));
  EXPECT_EQ(sibling[3], before);
}

TEST(BufferSliceTest, SliceOutlivesStoreAndBlob) {
  Bytes payload = Pattern(1000);
  BufferSlice slice;
  {
    MemoryBlobStore store;
    auto id = store.PushAll(ByteSpan(payload.data(), payload.size()));
    ASSERT_TRUE(id.ok());
    auto read = store.Read(*id, ByteRange{100, 200});
    ASSERT_TRUE(read.ok());
    slice = *read;
    ASSERT_TRUE(store.Delete(*id).ok());
  }  // Store destroyed; the slice's refcount keeps the bytes alive.
  ASSERT_EQ(slice.size(), 200u);
  EXPECT_EQ(slice, Bytes(payload.begin() + 100, payload.begin() + 300));
}

TEST(BufferSliceTest, MemoryStoreReadsAreViewsNotCopies) {
  MemoryBlobStore store;
  Bytes payload = Pattern(512);
  auto id = store.PushAll(ByteSpan(payload.data(), payload.size()));
  ASSERT_TRUE(id.ok());
  auto a = store.Read(*id, ByteRange{0, 512});
  auto b = store.Read(*id, ByteRange{128, 64});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->SharesBufferWith(*b));  // Same backing append buffer.
  EXPECT_EQ(b->data(), a->data() + 128);
}

TEST(TypedSliceTest, SharesAndCopies) {
  std::vector<int16_t> samples(100);
  std::iota(samples.begin(), samples.end(), int16_t{0});
  SampleSlice all(std::move(samples));
  ASSERT_EQ(all.size(), 100u);
  SampleSlice tail = all.Slice(40, 60);
  EXPECT_TRUE(tail.SharesBufferWith(all));
  EXPECT_EQ(tail[0], 40);
  EXPECT_EQ(tail.data(), all.data() + 40);

  std::vector<int16_t> copy = tail.MutableCopy();
  copy[0] = -1;
  EXPECT_EQ(tail[0], 40);  // COW: the view never sees the write.
  EXPECT_EQ(all[40], 40);
}

// ---------------------------------------------------------------------------
// Logical vs resident bytes per MediaValue variant

TEST(ValueBytesTest, UnsharedValuesAreFullyResident) {
  MediaValue audio = audiogen::Sine(8000, 1, 440, 0.5, 0.1);
  uint64_t audio_bytes =
      std::get<AudioBuffer>(audio).samples.size() * sizeof(int16_t);
  EXPECT_EQ(ExpandedBytes(audio), audio_bytes);
  EXPECT_EQ(ResidentBytes(audio), audio_bytes);

  MediaValue video = SmallClip(4);
  EXPECT_EQ(ExpandedBytes(video), 4u * 48 * 32 * 3);
  EXPECT_EQ(ResidentBytes(video), ExpandedBytes(video));

  MediaValue image = std::get<VideoValue>(video).frames[0];
  EXPECT_EQ(ExpandedBytes(image), 48u * 32 * 3);
  EXPECT_EQ(ResidentBytes(image), 48u * 32 * 3);

  // Variants without shared buffers fall back to their serialized size.
  MediaValue midi = MidiSequence{};
  EXPECT_EQ(ResidentBytes(midi), ExpandedBytes(midi));
  MediaValue scene = AnimationScene{};
  EXPECT_EQ(ResidentBytes(scene), ExpandedBytes(scene));
}

TEST(ValueBytesTest, StreamElementsSharingABufferCountOnce) {
  BufferSlice storage(Pattern(1024));
  TimedStream stream;
  for (int i = 0; i < 8; ++i) {
    StreamElement element;
    element.data = storage.Slice(0, 1024);  // Every element: same bytes.
    element.start = i;
    element.duration = 1;
    ASSERT_TRUE(stream.Append(std::move(element)).ok());
  }
  MediaValue value = std::move(stream);
  EXPECT_EQ(ExpandedBytes(value), 8u * 1024);  // Logical: with multiplicity.
  EXPECT_EQ(ResidentBytes(value), 1024u);      // Physical: one buffer.
}

TEST(ValueBytesTest, AudioCutPinsItsWholeSourceBuffer) {
  MediaValue tone = audiogen::Sine(8000, 1, 440, 0.5, 1.0);  // 8000 frames.
  AttrMap params;
  params.SetInt("start frame", 1000);
  params.SetInt("frame count", 100);
  auto cut = Reg().Apply("audio cut", {&tone}, params);
  ASSERT_TRUE(cut.ok());
  const AudioBuffer& out = std::get<AudioBuffer>(*cut);
  EXPECT_TRUE(out.samples.SharesBufferWith(
      std::get<AudioBuffer>(tone).samples));
  EXPECT_EQ(ExpandedBytes(*cut), 200u);  // 100 mono samples.
  // Residency is the full pinned source allocation, not the slice.
  EXPECT_EQ(ResidentBytes(*cut), 16000u);
}

// ---------------------------------------------------------------------------
// Timing-only derivations allocate O(1) pixel bytes

TEST(TimingOnlyDerivationTest, EditListSharesSourcePixels) {
  MediaValue source = SmallClip(16);
  const VideoValue& src = std::get<VideoValue>(source);

  // edit → reverse → 8x slow-motion: three timing-only steps.
  AttrMap edit_params;
  edit_params.SetInt("start frame", 2);
  edit_params.SetInt("frame count", 12);
  auto edited = Reg().Apply("video edit", {&source}, edit_params);
  ASSERT_TRUE(edited.ok());
  auto reversed = Reg().Apply("video reverse", {&*edited}, AttrMap{});
  ASSERT_TRUE(reversed.ok());
  AttrMap speed_params;
  speed_params.SetInt("speed num", 1);
  speed_params.SetInt("speed den", 8);
  auto slowed = Reg().Apply("video speed", {&*reversed}, speed_params);
  ASSERT_TRUE(slowed.ok());

  const VideoValue& out = std::get<VideoValue>(*slowed);
  ASSERT_EQ(out.frames.size(), 96u);  // 12 frames repeated 8x.
  for (const Image& frame : out.frames) {
    bool shares_source = false;
    for (const Image& original : src.frames) {
      if (frame.data.SharesBufferWith(original.data)) shares_source = true;
    }
    EXPECT_TRUE(shares_source);  // Not one pixel was copied.
  }

  // 96 logical frames, 12 distinct buffers: resident stays at the
  // edited span's size however long the derived program runs.
  uint64_t frame_bytes = 48 * 32 * 3;
  EXPECT_EQ(ExpandedBytes(*slowed), 96 * frame_bytes);
  EXPECT_EQ(ResidentBytes(*slowed), 12 * frame_bytes);
}

// ---------------------------------------------------------------------------
// Expansion-cache deduplicated charging

ValueRef Ref(MediaValue value) {
  return std::make_shared<const MediaValue>(std::move(value));
}

TEST(CacheAccountingTest, SharedBuffersChargeOnce) {
  MediaValue source = SmallClip(4);
  uint64_t source_bytes = ExpandedBytes(source);
  AttrMap params;
  params.SetInt("speed num", 1);
  params.SetInt("speed den", 8);
  auto slowed = Reg().Apply("video speed", {&source}, params);
  ASSERT_TRUE(slowed.ok());
  uint64_t slowed_logical = ExpandedBytes(*slowed);
  ASSERT_EQ(slowed_logical, 8 * source_bytes);

  ExpansionCache cache(1 << 20, /*shards=*/1);
  cache.Insert(1, Ref(std::move(source)), source_bytes, 0.01);
  cache.Insert(2, Ref(std::move(*slowed)), slowed_logical, 0.01);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  // The view's pixels are already pinned by the source entry, so the
  // budget is charged nothing for it.
  EXPECT_EQ(stats.bytes_cached, source_bytes);
  EXPECT_EQ(stats.logical_bytes, source_bytes + slowed_logical);
  EXPECT_EQ(stats.resident_bytes, source_bytes);
}

TEST(CacheAccountingTest, LogicallyOversizeViewStillFits) {
  MediaValue source = SmallClip(4);
  uint64_t source_bytes = ExpandedBytes(source);  // 18432.
  AttrMap params;
  params.SetInt("speed num", 1);
  params.SetInt("speed den", 8);
  auto slowed = Reg().Apply("video speed", {&source}, params);
  ASSERT_TRUE(slowed.ok());
  uint64_t slowed_logical = ExpandedBytes(*slowed);

  // Budget fits the source but is far below the view's logical size:
  // pre-refactor this Insert was an oversize reject.
  ExpansionCache cache(source_bytes + 512, /*shards=*/1);
  ASSERT_GT(slowed_logical, cache.budget_bytes());
  cache.Insert(1, Ref(std::move(source)), source_bytes, 0.01);
  cache.Insert(2, Ref(std::move(*slowed)), slowed_logical, 0.01);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.oversize_rejects, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes_cached, source_bytes);
}

TEST(CacheAccountingTest, ResidencySurvivesEvictingThePayer) {
  MediaValue source = SmallClip(4);
  uint64_t source_bytes = ExpandedBytes(source);
  AttrMap params;
  params.SetInt("start frame", 1);
  params.SetInt("frame count", 2);
  auto edited = Reg().Apply("video edit", {&source}, params);
  ASSERT_TRUE(edited.ok());
  uint64_t edited_logical = ExpandedBytes(*edited);

  ExpansionCache cache(1 << 20, /*shards=*/1);
  cache.Insert(1, Ref(std::move(source)), source_bytes, 0.01);
  cache.Insert(2, Ref(std::move(*edited)), edited_logical, 0.01);
  cache.Erase(1);  // The entry that paid for the shared buffers.

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.logical_bytes, edited_logical);
  // The view still pins its two frames' buffers.
  EXPECT_EQ(stats.resident_bytes, edited_logical);

  // And the cached view's pixels are still readable: the eviction freed
  // the entry, not the ref-counted buffers.
  ValueRef value = cache.Lookup(2);
  ASSERT_NE(value, nullptr);
  const VideoValue& out = std::get<VideoValue>(*value);
  ASSERT_EQ(out.frames.size(), 2u);
  EXPECT_EQ(out.frames[0].data.size(), 48u * 32 * 3);
}

TEST(CacheAccountingTest, ValueOutlivesCacheClear) {
  MediaValue source = SmallClip(2);
  uint64_t source_bytes = ExpandedBytes(source);
  ExpansionCache cache(1 << 20, /*shards=*/1);
  cache.Insert(7, Ref(std::move(source)), source_bytes, 0.01);
  ValueRef held = cache.Lookup(7);
  ASSERT_NE(held, nullptr);
  cache.Clear();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_cached, 0u);
  EXPECT_EQ(stats.logical_bytes, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  // The held ref (and every slice inside it) is still valid.
  const VideoValue& video = std::get<VideoValue>(*held);
  ASSERT_EQ(video.frames.size(), 2u);
  EXPECT_EQ(video.frames[1].data.size(), 48u * 32 * 3);
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>

#include "time/rational.h"
#include "time/time_system.h"
#include "time/timecode.h"

namespace tbm {
namespace {

// ---------------------------------------------------------------------------
// Rational

TEST(RationalTest, NormalizationAndSign) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  EXPECT_TRUE(neg.IsNegative());
}

TEST(RationalTest, Arithmetic) {
  Rational a(1, 3), b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
  EXPECT_EQ(-a, Rational(-1, 3));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(30000, 1001), Rational(29));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(RationalTest, FloorCeilRound) {
  EXPECT_EQ(Rational(7, 2).Floor(), 3);
  EXPECT_EQ(Rational(7, 2).Ceil(), 4);
  EXPECT_EQ(Rational(7, 2).Round(), 4);  // Half away from zero.
  EXPECT_EQ(Rational(-7, 2).Floor(), -4);
  EXPECT_EQ(Rational(-7, 2).Ceil(), -3);
  EXPECT_EQ(Rational(-7, 2).Round(), -4);
  EXPECT_EQ(Rational(10, 3).Round(), 3);
}

TEST(RationalTest, NoOverflowOnMediaFrequencies) {
  // 30000/1001 combined with 44100 must not overflow 64 bits.
  Rational ntsc(30000, 1001);
  Rational cd(44100);
  Rational ratio = cd / ntsc;
  EXPECT_EQ(ratio, Rational(44100 * 1001, 30000));
  EXPECT_NEAR(ratio.ToDouble(), 1471.47, 0.01);
}

TEST(RationalTest, ToStringForms) {
  EXPECT_EQ(Rational(25).ToString(), "25");
  EXPECT_EQ(Rational(30000, 1001).ToString(), "30000/1001");
}

// Property: field axioms hold over a grid of rationals.
class RationalPair
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(RationalPair, AddThenSubtractIsIdentity) {
  auto [n, d] = GetParam();
  Rational a(n, d);
  Rational b(7, 3);
  EXPECT_EQ(a + b - b, a);
}

TEST_P(RationalPair, MultiplyThenDivideIsIdentity) {
  auto [n, d] = GetParam();
  Rational a(n, d);
  Rational b(5, 9);
  EXPECT_EQ(a * b / b, a);
}

TEST_P(RationalPair, ReciprocalTwiceIsIdentity) {
  auto [n, d] = GetParam();
  Rational a(n, d);
  if (!a.IsZero()) {
    EXPECT_EQ(a.Reciprocal().Reciprocal(), a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RationalPair,
    ::testing::Values(std::make_tuple(0, 1), std::make_tuple(1, 1),
                      std::make_tuple(-3, 7), std::make_tuple(30000, 1001),
                      std::make_tuple(44100, 1), std::make_tuple(-25, 2),
                      std::make_tuple(999999, 1000000)));

// ---------------------------------------------------------------------------
// RescaleTicks

TEST(RescaleTest, RoundingModes) {
  Rational factor(2, 3);
  EXPECT_EQ(RescaleTicks(5, factor, Rounding::kFloor), 3);    // 10/3 = 3.33
  EXPECT_EQ(RescaleTicks(5, factor, Rounding::kCeil), 4);
  EXPECT_EQ(RescaleTicks(5, factor, Rounding::kNearest), 3);
  EXPECT_EQ(RescaleTicks(-5, factor, Rounding::kFloor), -4);
  EXPECT_EQ(RescaleTicks(-5, factor, Rounding::kCeil), -3);
  EXPECT_EQ(RescaleTicks(-5, factor, Rounding::kNearest), -3);
  // Exact half rounds away from zero.
  EXPECT_EQ(RescaleTicks(1, Rational(1, 2), Rounding::kNearest), 1);
  EXPECT_EQ(RescaleTicks(-1, Rational(1, 2), Rounding::kNearest), -1);
}

// ---------------------------------------------------------------------------
// TimeSystem (paper Definition 2)

TEST(TimeSystemTest, MapsTicksToSeconds) {
  TimeSystem pal = time_systems::Pal();
  EXPECT_EQ(pal.ToSeconds(25), Rational(1));
  EXPECT_EQ(pal.ToSeconds(1), Rational(1, 25));
  TimeSystem cd = time_systems::CdAudio();
  EXPECT_EQ(cd.ToSeconds(44100), Rational(1));
}

TEST(TimeSystemTest, NtscIsExactlyRational) {
  TimeSystem ntsc = time_systems::Ntsc();
  EXPECT_EQ(ntsc.frequency(), Rational(30000, 1001));
  // 30000 frames take exactly 1001 seconds.
  EXPECT_EQ(ntsc.ToSeconds(30000), Rational(1001));
  EXPECT_EQ(ntsc.ToString(), "D_30000/1001");
}

TEST(TimeSystemTest, FromSeconds) {
  TimeSystem pal = time_systems::Pal();
  EXPECT_EQ(pal.FromSeconds(Rational(10)), 250);
  EXPECT_EQ(pal.FromSeconds(Rational(1, 10), Rounding::kNearest), 3);  // 2.5→3
}

TEST(TimeSystemTest, CrossSystemConversion) {
  TimeSystem pal = time_systems::Pal();
  TimeSystem cd = time_systems::CdAudio();
  // 25 PAL frames = 1 second = 44100 CD ticks.
  EXPECT_EQ(pal.ConvertTo(cd, 25), 44100);
  // One PAL frame = 1764 CD samples (the Figure 2 number).
  EXPECT_EQ(pal.ConvertTo(cd, 1), 1764);
  // Round trip at commensurable rates is exact.
  EXPECT_EQ(cd.ConvertTo(pal, 44100), 25);
}

TEST(TimeSystemTest, NtscAudioConversionRounds) {
  TimeSystem ntsc = time_systems::Ntsc();
  TimeSystem cd = time_systems::CdAudio();
  // One NTSC frame = 44100*1001/30000 = 1471.47 samples.
  EXPECT_EQ(ntsc.ConvertTo(cd, 1, Rounding::kFloor), 1471);
  EXPECT_EQ(ntsc.ConvertTo(cd, 1, Rounding::kCeil), 1472);
  // 30000 NTSC frames = 1001 s exactly = 1001 * 44100 samples.
  EXPECT_EQ(ntsc.ConvertTo(cd, 30000), 1001 * 44100);
}

TEST(TimeSystemTest, Equality) {
  EXPECT_EQ(TimeSystem(Rational(50, 2)), TimeSystem(25));
  EXPECT_NE(time_systems::Ntsc(), TimeSystem(30));
}

TEST(TickSpanTest, ContainsAndOverlaps) {
  TickSpan span{10, 5};
  EXPECT_TRUE(span.Contains(10));
  EXPECT_TRUE(span.Contains(14));
  EXPECT_FALSE(span.Contains(15));  // Half-open.
  EXPECT_TRUE(span.Overlaps(TickSpan{14, 10}));
  EXPECT_FALSE(span.Overlaps(TickSpan{15, 10}));
}

// ---------------------------------------------------------------------------
// Timecode

TEST(TimecodeTest, NonDropBasics) {
  auto tc = FrameToTimecode(0, 25, false);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->ToString(), "00:00:00:00");
  tc = FrameToTimecode(25 * 60 * 60, 25, false);  // One hour.
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->ToString(), "01:00:00:00");
  tc = FrameToTimecode(12345, 25, false);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(*TimecodeToFrame(*tc), 12345);
}

TEST(TimecodeTest, DropFrameSkipsLabels) {
  // Frame 1800 (= 1 nominal minute at 30fps, minus nothing yet) in
  // drop-frame: the first minute drops nothing, so real frame 1800-2
  // lands differently. The canonical fact: label 00:01:00;00 does not
  // exist.
  Timecode bad;
  bad.minutes = 1;
  bad.nominal_fps = 30;
  bad.drop_frame = true;
  bad.frames = 0;
  EXPECT_TRUE(TimecodeToFrame(bad).status().IsInvalidArgument());
  bad.frames = 1;
  EXPECT_TRUE(TimecodeToFrame(bad).status().IsInvalidArgument());
  bad.frames = 2;
  EXPECT_TRUE(TimecodeToFrame(bad).ok());
  // Minute 10 keeps frame 0.
  Timecode ten;
  ten.minutes = 10;
  ten.nominal_fps = 30;
  ten.drop_frame = true;
  EXPECT_TRUE(TimecodeToFrame(ten).ok());
}

TEST(TimecodeTest, DropFrameHourAlignsWithWallClock) {
  // In one hour at 29.97 fps there are 107892 real frames
  // (30*3600 - 108 dropped labels).
  auto frame = TimecodeToFrame(Timecode{1, 0, 0, 0, 30, true});
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, 107892);
  auto tc = FrameToTimecode(107892, 30, true);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->ToString(), "01:00:00;00");
}

// Property: frame -> timecode -> frame is identity for both counting
// systems across a sweep of frame numbers.
class TimecodeRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(TimecodeRoundTrip, NonDrop25) {
  auto tc = FrameToTimecode(GetParam(), 25, false);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(*TimecodeToFrame(*tc), GetParam());
}

TEST_P(TimecodeRoundTrip, NonDrop24) {
  auto tc = FrameToTimecode(GetParam(), 24, false);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(*TimecodeToFrame(*tc), GetParam());
}

TEST_P(TimecodeRoundTrip, Drop30) {
  auto tc = FrameToTimecode(GetParam(), 30, true);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(*TimecodeToFrame(*tc), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimecodeRoundTrip,
                         ::testing::Values(0, 1, 29, 30, 1799, 1800, 1801,
                                           17982, 17983, 107891, 107892,
                                           123456, 999999));

TEST(TimecodeTest, ParseAndValidate) {
  auto tc = ParseTimecode("01:02:03:04", 25);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->hours, 1);
  EXPECT_EQ(tc->frames, 4);
  EXPECT_FALSE(tc->drop_frame);
  auto drop = ParseTimecode("00:10:00;02", 30);
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(drop->drop_frame);
  EXPECT_FALSE(ParseTimecode("garbage", 25).ok());
  EXPECT_FALSE(ParseTimecode("00:00:00:99", 25).ok());  // Frame >= fps.
}

TEST(TimecodeTest, DropFrameRequiresNominal30) {
  EXPECT_TRUE(FrameToTimecode(0, 25, true).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tbm

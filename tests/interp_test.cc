#include <gtest/gtest.h>

#include "blob/memory_store.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "interp/av_capture.h"
#include "interp/capture.h"
#include "interp/index.h"
#include "interp/interpretation.h"

namespace tbm {
namespace {

Bytes Data(size_t n, uint8_t fill) { return Bytes(n, fill); }

MediaDescriptor VideoDescriptor() {
  MediaDescriptor desc;
  desc.type_name = "video/tjpeg";
  desc.kind = MediaKind::kVideo;
  desc.attrs.SetRational("frame rate", Rational(25));
  desc.attrs.SetInt("frame width", 64);
  desc.attrs.SetInt("frame height", 48);
  desc.attrs.SetInt("frame depth", 24);
  desc.attrs.SetString("color model", "RGB");
  desc.attrs.SetString("encoding", "YUV 4:2:0, TJPEG");
  return desc;
}

// ---------------------------------------------------------------------------
// Interpretation structure (Definition 5)

TEST(InterpretationTest, AddObjectValidatesElementTable) {
  Interpretation interp(1);
  InterpretedObject object;
  object.name = "video1";
  object.descriptor = VideoDescriptor();
  object.time_system = TimeSystem(25);
  object.elements.push_back({0, 0, 1, ByteRange{0, 10}, {}});
  object.elements.push_back({1, 1, 1, ByteRange{10, 10}, {}});
  EXPECT_TRUE(interp.AddObject(object).ok());
  // Duplicate name.
  EXPECT_TRUE(interp.AddObject(object).IsAlreadyExists());
  // Bad element numbering.
  InterpretedObject bad = object;
  bad.name = "video2";
  bad.elements[1].element_number = 5;
  EXPECT_TRUE(interp.AddObject(bad).IsInvalidArgument());
  // Decreasing starts.
  bad = object;
  bad.name = "video3";
  bad.elements[1].start = -1;
  EXPECT_TRUE(interp.AddObject(bad).IsInvalidArgument());
}

TEST(InterpretationTest, ValidateAgainstBlobSize) {
  Interpretation interp(1);
  InterpretedObject object;
  object.name = "x";
  object.descriptor = VideoDescriptor();
  object.time_system = TimeSystem(25);
  object.elements.push_back({0, 0, 1, ByteRange{90, 20}, {}});
  ASSERT_TRUE(interp.AddObject(object).ok());
  EXPECT_TRUE(interp.ValidateAgainstBlobSize(200).ok());
  EXPECT_TRUE(interp.ValidateAgainstBlobSize(100).IsOutOfRange());
}

TEST(InterpretationTest, FindObject) {
  Interpretation interp(1);
  InterpretedObject object;
  object.name = "audio1";
  object.descriptor = VideoDescriptor();
  ASSERT_TRUE(interp.AddObject(object).ok());
  EXPECT_TRUE(interp.FindObject("audio1").ok());
  EXPECT_TRUE(interp.FindObject("audio2").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Capture + materialization

TEST(CaptureTest, InterleavedCaptureRoundTrip) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());

  auto video = session->DeclareObject("video1", VideoDescriptor(),
                                      TimeSystem(25));
  ASSERT_TRUE(video.ok());
  MediaDescriptor audio_desc;
  audio_desc.type_name = "audio/pcm-block";
  audio_desc.kind = MediaKind::kAudio;
  audio_desc.attrs.SetInt("sample rate", 44100);
  audio_desc.attrs.SetInt("sample size", 16);
  audio_desc.attrs.SetInt("number of channels", 2);
  audio_desc.attrs.SetString("encoding", "PCM");
  auto audio = session->DeclareObject("audio1", audio_desc,
                                      TimeSystem(44100));
  ASSERT_TRUE(audio.ok());

  // Interleave: frame, samples, frame, samples.
  ASSERT_TRUE(session->CaptureContiguous(*video, Data(100, 0xB0), 1).ok());
  ASSERT_TRUE(session->CaptureContiguous(*audio, Data(1764 * 4, 0xA0), 1764)
                  .ok());
  ASSERT_TRUE(session->CaptureContiguous(*video, Data(90, 0xB1), 1).ok());
  ASSERT_TRUE(session->CaptureContiguous(*audio, Data(1764 * 4, 0xA1), 1764)
                  .ok());

  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());

  // Materialized streams unscramble the interleaving.
  auto video_stream = interp->Materialize(store, "video1");
  ASSERT_TRUE(video_stream.ok());
  EXPECT_EQ(video_stream->size(), 2u);
  EXPECT_EQ(video_stream->at(0).data.size(), 100u);
  EXPECT_EQ(video_stream->at(1).data.size(), 90u);
  EXPECT_EQ(video_stream->at(1).start, 1);

  auto audio_stream = interp->Materialize(store, "audio1");
  ASSERT_TRUE(audio_stream.ok());
  EXPECT_EQ(audio_stream->size(), 2u);
  EXPECT_EQ(audio_stream->at(1).start, 1764);
  EXPECT_EQ(audio_stream->at(1).data, Data(1764 * 4, 0xA1));
}

TEST(CaptureTest, PaddingIsUninterpreted) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto video = session->DeclareObject("v", VideoDescriptor(), TimeSystem(25));
  ASSERT_TRUE(video.ok());
  ASSERT_TRUE(session->CaptureContiguous(*video, Data(100, 1), 1).ok());
  ASSERT_TRUE(session->AppendPadding(400).ok());
  ASSERT_TRUE(session->CaptureContiguous(*video, Data(100, 2), 1).ok());
  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());
  // 200 of 600 bytes are element payload.
  EXPECT_NEAR(interp->Coverage(600), 200.0 / 600.0, 1e-9);
  auto stream = interp->Materialize(store, "v");
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->at(1).data, Data(100, 2));
}

TEST(CaptureTest, FinishedSessionRejectsFurtherUse) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto v = session->DeclareObject("v", VideoDescriptor(), TimeSystem(25));
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(session->Finish().ok());
  EXPECT_TRUE(session->CaptureContiguous(*v, Data(1, 0), 1)
                  .IsFailedPrecondition());
  EXPECT_TRUE(session->Finish().status().IsFailedPrecondition());
}

TEST(InterpretationTest, MaterializeSpanSelectsDuration) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto v = session->DeclareObject("v", VideoDescriptor(), TimeSystem(25));
  ASSERT_TRUE(v.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(session->CaptureContiguous(
                    *v, Data(10, static_cast<uint8_t>(i)), 1)
                    .ok());
  }
  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());
  // Frames 10..19 (span [10, 20)).
  auto span = interp->MaterializeSpan(store, "v", TickSpan{10, 10});
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->size(), 10u);
  EXPECT_EQ(span->at(0).data[0], 10);
  EXPECT_EQ(span->at(9).data[0], 19);
}

TEST(InterpretationTest, ReadElementBounds) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto v = session->DeclareObject("v", VideoDescriptor(), TimeSystem(25));
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(session->CaptureContiguous(*v, Data(10, 42), 1).ok());
  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());
  auto element = interp->ReadElement(store, "v", 0);
  ASSERT_TRUE(element.ok());
  EXPECT_EQ(element->data, Data(10, 42));
  EXPECT_TRUE(interp->ReadElement(store, "v", 1).status().IsOutOfRange());
  EXPECT_TRUE(interp->ReadElement(store, "v", -1).status().IsOutOfRange());
}

TEST(InterpretationTest, RestrictMakesAlternativeView) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto v = session->DeclareObject("video1", VideoDescriptor(), TimeSystem(25));
  MediaDescriptor adesc;
  adesc.type_name = "audio/pcm-block";
  adesc.kind = MediaKind::kAudio;
  auto a = session->DeclareObject("audio1", adesc, TimeSystem(44100));
  ASSERT_TRUE(v.ok() && a.ok());
  ASSERT_TRUE(session->CaptureContiguous(*v, Data(10, 1), 1).ok());
  ASSERT_TRUE(session->CaptureContiguous(*a, Data(10, 2), 1764).ok());
  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());

  // Paper §4.1: an alternative view where only the audio is visible.
  auto view = interp->Restrict({"audio1"});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->objects().size(), 1u);
  EXPECT_TRUE(view->FindObject("video1").status().IsNotFound());
  EXPECT_TRUE(view->Materialize(store, "audio1").ok());
  EXPECT_TRUE(interp->Restrict({"nonexistent"}).status().IsNotFound());
}

TEST(InterpretationTest, SerializeRoundTrip) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto v = session->DeclareObject("v", VideoDescriptor(), TimeSystem(25));
  ASSERT_TRUE(v.ok());
  ElementDescriptor ed;
  ed.SetString("frame kind", "key");
  ASSERT_TRUE(session->CaptureContiguous(*v, Data(10, 1), 1, ed).ok());
  ASSERT_TRUE(session->CaptureContiguous(*v, Data(20, 2), 1).ok());
  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());

  BinaryWriter writer;
  interp->Serialize(&writer);
  BinaryReader reader(writer.buffer());
  auto restored = Interpretation::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->blob(), interp->blob());
  auto object = restored->FindObject("v");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ((*object)->elements.size(), 2u);
  EXPECT_EQ((*object)->elements, (*interp->FindObject("v"))->elements);
}

TEST(InterpretationTest, ReadingDeletedBlobFails) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto v = session->DeclareObject("v", VideoDescriptor(), TimeSystem(25));
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(session->CaptureContiguous(*v, Data(10, 1), 1).ok());
  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());
  ASSERT_TRUE(store.Delete(interp->blob()).ok());
  EXPECT_TRUE(interp->Materialize(store, "v").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Compact index

TEST(IndexTest, MatchesFlatTableOnInterleavedCapture) {
  MemoryBlobStore store;
  auto session = CaptureSession::Begin(&store);
  ASSERT_TRUE(session.ok());
  auto v = session->DeclareObject("v", VideoDescriptor(), TimeSystem(25));
  ASSERT_TRUE(v.ok());
  // Variable-size frames.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(session->CaptureContiguous(
                    *v, Data(50 + (i * 7) % 40, static_cast<uint8_t>(i)), 1)
                    .ok());
  }
  auto interp = session->Finish();
  ASSERT_TRUE(interp.ok());
  auto object = interp->FindObject("v");
  ASSERT_TRUE(object.ok());
  CompactElementIndex index = CompactElementIndex::Build(**object);
  ASSERT_EQ(index.element_count(), 200);

  for (int64_t e = 0; e < 200; ++e) {
    const ElementPlacement& truth = (*object)->elements[e];
    EXPECT_EQ(*index.PlacementOf(e), truth.placement) << e;
    EXPECT_EQ(*index.SpanOf(e), (TickSpan{truth.start, truth.duration})) << e;
    EXPECT_EQ(*index.ElementAtTime(truth.start), e);
  }
  EXPECT_TRUE(index.ElementAtTime(200).status().IsNotFound());
  EXPECT_TRUE(index.PlacementOf(200).status().IsOutOfRange());
}

TEST(IndexTest, ConstantStreamsCompressToOneRun) {
  InterpretedObject object;
  object.name = "audio";
  object.time_system = TimeSystem(44100);
  for (int64_t i = 0; i < 10000; ++i) {
    object.elements.push_back(
        {i, i * 100, 100, ByteRange{static_cast<uint64_t>(i) * 400, 400}, {}});
  }
  CompactElementIndex index = CompactElementIndex::Build(object);
  EXPECT_EQ(index.time_run_count(), 1u);
  EXPECT_EQ(index.chunk_count(), 1u);
  // Massive memory advantage over the flat table.
  size_t flat = object.elements.size() * sizeof(ElementPlacement);
  EXPECT_LT(index.MemoryBytes() * 100, flat);
  EXPECT_EQ(*index.ElementAtTime(555 * 100 + 3), 555);
}

TEST(IndexTest, GapsCreateRunsAndLookupRespectsThem) {
  InterpretedObject object;
  object.name = "anim";
  object.time_system = TimeSystem(25);
  object.elements.push_back({0, 0, 10, ByteRange{0, 4}, {}});
  object.elements.push_back({1, 10, 10, ByteRange{4, 4}, {}});
  object.elements.push_back({2, 50, 10, ByteRange{8, 4}, {}});  // Gap.
  CompactElementIndex index = CompactElementIndex::Build(object);
  EXPECT_EQ(index.time_run_count(), 2u);
  EXPECT_EQ(*index.ElementAtTime(15), 1);
  EXPECT_TRUE(index.ElementAtTime(30).status().IsNotFound());
  EXPECT_EQ(*index.ElementAtTime(50), 2);
  EXPECT_TRUE(index.ElementAtTime(-5).status().IsNotFound());
}

TEST(IndexTest, SyncTableFindsKeyFrames) {
  InterpretedObject object;
  object.name = "v";
  object.time_system = TimeSystem(25);
  for (int64_t i = 0; i < 30; ++i) {
    ElementPlacement placement{
        i, i, 1, ByteRange{static_cast<uint64_t>(i) * 10, 10}, {}};
    placement.descriptor.SetString("frame kind",
                                   i % 10 == 0 ? "key" : "delta");
    object.elements.push_back(std::move(placement));
  }
  CompactElementIndex index = CompactElementIndex::Build(object);
  EXPECT_EQ(index.sync_elements(), (std::vector<int64_t>{0, 10, 20}));
  EXPECT_EQ(*index.SyncBefore(15), 10);
  EXPECT_EQ(*index.SyncBefore(10), 10);
  EXPECT_EQ(*index.SyncBefore(9), 0);
  EXPECT_EQ(*index.SyncBefore(29), 20);
}

TEST(IndexTest, EmptyObject) {
  InterpretedObject object;
  object.name = "empty";
  CompactElementIndex index = CompactElementIndex::Build(object);
  EXPECT_EQ(index.element_count(), 0);
  EXPECT_TRUE(index.ElementAtTime(0).status().IsNotFound());
  EXPECT_TRUE(index.SyncBefore(0).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Figure 2 A/V capture

TEST(AvCaptureTest, Figure2NumbersHold) {
  MemoryBlobStore store;
  // 2 seconds of PAL video with CD stereo audio (scaled-down geometry
  // keeps the test fast; rates are per-second so the paper's numbers
  // scale).
  std::vector<Image> frames = videogen::Clip(160, 120, 50, 42);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 2.1);
  AvCaptureConfig config;
  auto result = CaptureInterleavedAv(&store, frames, audio, config);
  ASSERT_TRUE(result.ok()) << result.status();

  // Both objects present.
  auto video_obj = result->interpretation.FindObject("video1");
  auto audio_obj = result->interpretation.FindObject("audio1");
  ASSERT_TRUE(video_obj.ok() && audio_obj.ok());
  EXPECT_EQ((*video_obj)->elements.size(), 50u);
  EXPECT_EQ((*audio_obj)->elements.size(), 50u);

  // The Figure 2 constant: 1764 sample pairs per PAL frame.
  for (const ElementPlacement& e : (*audio_obj)->elements) {
    EXPECT_EQ(e.duration, 1764);
    EXPECT_EQ(e.placement.length, 1764u * 2 * 2);
  }

  // Audio rate: 44100 Hz * 16 bit * 2 ch = 176.4 kB/s ("172 kbyte/sec"
  // in the paper's KiB-style accounting).
  double seconds = 50.0 / 25.0;
  EXPECT_NEAR(result->audio_bytes / seconds, 176400.0, 1.0);

  // Compression reduced the video rate substantially.
  EXPECT_LT(result->encoded_video_bytes, result->raw_video_bytes / 5);

  // Interleaving: video element 0, then audio element 0, then video 1...
  EXPECT_LT((*video_obj)->elements[0].placement.offset,
            (*audio_obj)->elements[0].placement.offset);
  EXPECT_LT((*audio_obj)->elements[0].placement.offset,
            (*video_obj)->elements[1].placement.offset);

  // Every byte of the BLOB is covered (no padding configured).
  auto blob_size = store.Size(result->blob);
  ASSERT_TRUE(blob_size.ok());
  EXPECT_DOUBLE_EQ(result->interpretation.Coverage(*blob_size), 1.0);
}

TEST(AvCaptureTest, NtscRatesDistributeSamples) {
  MemoryBlobStore store;
  std::vector<Image> frames = videogen::Clip(64, 48, 30, 9);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 1.2);
  AvCaptureConfig config;
  config.frame_rate = Rational(30000, 1001);
  auto result = CaptureInterleavedAv(&store, frames, audio, config);
  ASSERT_TRUE(result.ok()) << result.status();
  auto audio_obj = result->interpretation.FindObject("audio1");
  ASSERT_TRUE(audio_obj.ok());
  // 44100*1001/30000 = 1471.47: elements alternate 1471 and 1472.
  int64_t total = 0;
  for (const ElementPlacement& e : (*audio_obj)->elements) {
    EXPECT_GE(e.duration, 1471);
    EXPECT_LE(e.duration, 1472);
    total += e.duration;
  }
  EXPECT_EQ(total, RescaleTicks(30, Rational(44100 * 1001, 30000),
                                Rounding::kFloor));
}

TEST(AvCaptureTest, ShortAudioRejected) {
  MemoryBlobStore store;
  std::vector<Image> frames = videogen::Clip(32, 32, 25, 1);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 0.5);  // Too short.
  EXPECT_TRUE(CaptureInterleavedAv(&store, frames, audio, AvCaptureConfig{})
                  .status()
                  .IsInvalidArgument());
}

TEST(AvCaptureTest, PaddingConfigured) {
  MemoryBlobStore store;
  std::vector<Image> frames = videogen::Clip(32, 32, 5, 2);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 0.3);
  AvCaptureConfig config;
  config.padding_per_frame = 256;
  auto result = CaptureInterleavedAv(&store, frames, audio, config);
  ASSERT_TRUE(result.ok());
  auto blob_size = store.Size(result->blob);
  ASSERT_TRUE(blob_size.ok());
  EXPECT_LT(result->interpretation.Coverage(*blob_size), 1.0);
}

}  // namespace
}  // namespace tbm

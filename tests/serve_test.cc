// Tests of the serve layer: wire protocol round-trips and malformed
// frames, loopback transport semantics (non-blocking readiness,
// backpressure, close), the session state machine, and the server
// end-to-end over loopback — including degrade-before-deny admission,
// slow-client eviction, and a 16-session concurrent run with injected
// read faults. Multi-stream multiplexing is covered separately in
// multiplex_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "base/macros.h"
#include "blob/fault_store.h"
#include "blob/memory_store.h"
#include "db/database.h"
#include "interp/capture.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace tbm {
namespace serve {
namespace {

constexpr int kElements = 32;
constexpr int kElementBytes = 1000;

Bytes ElementPayload(int index) {
  Bytes bytes(kElementBytes);
  for (int j = 0; j < kElementBytes; ++j) {
    bytes[static_cast<size_t>(j)] =
        static_cast<uint8_t>(index * 131 + j * 7 + 3);
  }
  return bytes;
}

// Builds an in-memory database holding one media object "clip" of
// kElements elements (kElementBytes each, 1 tick apart at 10 ticks/s:
// an average rate of 10 000 bytes/s). With `read_fault_rate` > 0 the
// BLOB store is wrapped in a FaultInjectingStore.
std::unique_ptr<MediaDatabase> BuildServeDb(double read_fault_rate = 0.0) {
  std::unique_ptr<BlobStore> store = std::make_unique<MemoryBlobStore>();
  if (read_fault_rate > 0.0) {
    FaultConfig faults;
    faults.read_fault_rate = read_fault_rate;
    faults.seed = 11;
    store = std::make_unique<FaultInjectingStore>(std::move(store), faults);
  }
  auto db = MediaDatabase::CreateWithStore(std::move(store));
  auto capture = CaptureSession::Begin(db->blob_store());
  EXPECT_TRUE(capture.ok());
  MediaDescriptor descriptor;
  descriptor.type_name = "audio/pcm-block";
  descriptor.kind = MediaKind::kAudio;
  auto handle = capture->DeclareObject("clip", descriptor, TimeSystem(10));
  EXPECT_TRUE(handle.ok());
  for (int i = 0; i < kElements; ++i) {
    EXPECT_TRUE(capture->CaptureContiguous(*handle, ElementPayload(i), 1).ok());
  }
  auto interpretation = capture->Finish();
  EXPECT_TRUE(interpretation.ok());
  auto interp_id = db->AddInterpretation("clip_interp", *interpretation);
  EXPECT_TRUE(interp_id.ok());
  EXPECT_TRUE(db->AddMediaObject("clip", *interp_id, "clip").ok());
  return db;
}

// One v1 request/response exchange over a raw transport: the
// single-stream compat path a pre-multiplexing client would use.
Result<Response> RawRoundTrip(Transport& transport, const Request& request) {
  TBM_RETURN_IF_ERROR(WriteFrame(transport, EncodeRequest(request)));
  TBM_ASSIGN_OR_RETURN(Bytes body, ReadFrame(transport, kMaxFrameBytes));
  TBM_ASSIGN_OR_RETURN(Frame frame, DecodeFrameBody(body));
  EXPECT_EQ(frame.header.version, 1);  // v1 in, v1 out.
  return DecodeResponse(frame.payload);
}

// ---------------------------------------------------------------------------
// Protocol encode/decode

TEST(ServeProtocolTest, RequestRoundTripsAllTypes) {
  Request open;
  open.type = RequestType::kOpen;
  open.object_name = "clip";
  Request read;
  read.type = RequestType::kRead;
  read.session_id = 7;
  read.max_elements = 16;
  Request seek;
  seek.type = RequestType::kSeek;
  seek.session_id = 7;
  seek.target_element = 29;
  Request stats;
  stats.type = RequestType::kStats;
  stats.session_id = 7;
  Request close;
  close.type = RequestType::kClose;
  close.session_id = 7;
  Request window;
  window.type = RequestType::kWindow;
  window.session_id = 7;
  window.window_delta = 65536;

  for (const Request& request : {open, read, seek, stats, close, window}) {
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->type, request.type);
    EXPECT_EQ(decoded->session_id, request.session_id);
    EXPECT_EQ(decoded->object_name, request.object_name);
    if (request.type == RequestType::kRead) {
      EXPECT_EQ(decoded->max_elements, request.max_elements);
    }
    if (request.type == RequestType::kSeek) {
      EXPECT_EQ(decoded->target_element, request.target_element);
    }
    if (request.type == RequestType::kWindow) {
      EXPECT_EQ(decoded->window_delta, request.window_delta);
    }
  }
}

TEST(ServeProtocolTest, QosExtensionRoundTrips) {
  Request open;
  open.type = RequestType::kOpen;
  open.object_name = "clip";
  open.qos.priority = 6;
  open.qos.max_stride = 4;
  open.qos.window_bytes = 1 << 16;
  auto decoded = DecodeRequest(EncodeRequest(open));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->qos.priority, 6u);
  EXPECT_EQ(decoded->qos.max_stride, 4u);
  EXPECT_EQ(decoded->qos.window_bytes, uint64_t{1} << 16);
}

TEST(ServeProtocolTest, ResponseRoundTripsBodies) {
  Response open;
  open.type = RequestType::kOpen;
  open.open = {42, 32, 32000, 2, 5000.0};
  auto open_rt = DecodeResponse(EncodeResponse(open));
  ASSERT_TRUE(open_rt.ok());
  EXPECT_EQ(open_rt->open.session_id, 42u);
  EXPECT_EQ(open_rt->open.element_count, 32u);
  EXPECT_EQ(open_rt->open.payload_bytes, 32000u);
  EXPECT_EQ(open_rt->open.stride, 2u);
  EXPECT_DOUBLE_EQ(open_rt->open.booked_bytes_per_second, 5000.0);

  Response read;
  read.type = RequestType::kRead;
  read.read.end_of_stream = true;
  read.read.stride = 4;
  WireElement element;
  element.element_number = 12;
  element.start = 12;
  element.duration = 1;
  element.payload = ElementPayload(12);
  read.read.elements.push_back(element);
  auto read_rt = DecodeResponse(EncodeResponse(read));
  ASSERT_TRUE(read_rt.ok());
  EXPECT_TRUE(read_rt->read.end_of_stream);
  EXPECT_EQ(read_rt->read.stride, 4u);
  ASSERT_EQ(read_rt->read.elements.size(), 1u);
  EXPECT_EQ(read_rt->read.elements[0].element_number, 12u);
  EXPECT_EQ(read_rt->read.elements[0].payload, ElementPayload(12));

  Response stats;
  stats.type = RequestType::kStats;
  stats.stats = {SessionState::kDegraded, 16, 1, 16000, 2};
  auto stats_rt = DecodeResponse(EncodeResponse(stats));
  ASSERT_TRUE(stats_rt.ok());
  EXPECT_EQ(stats_rt->stats.state, SessionState::kDegraded);
  EXPECT_EQ(stats_rt->stats.elements_delivered, 16u);
  EXPECT_EQ(stats_rt->stats.elements_skipped, 1u);
  EXPECT_EQ(stats_rt->stats.stride, 2u);

  Response error;
  error.type = RequestType::kOpen;
  error.status = Status::NotFound("no such object");
  auto error_rt = DecodeResponse(EncodeResponse(error));
  ASSERT_TRUE(error_rt.ok());
  EXPECT_EQ(error_rt->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(error_rt->status.message(), "no such object");
}

TEST(ServeProtocolTest, TruncatedPayloadIsCorruption) {
  Request request;
  request.type = RequestType::kOpen;
  request.object_name = "clip";
  Bytes payload = EncodeRequest(request);
  for (size_t cut = 1; cut < payload.size(); ++cut) {
    auto decoded =
        DecodeRequest(ByteSpan(payload.data(), payload.size() - cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(ServeProtocolTest, TrailingBytesRejected) {
  Request request;
  request.type = RequestType::kStats;
  request.session_id = 3;
  Bytes payload = EncodeRequest(request);
  payload.push_back(0xAA);
  auto decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ServeProtocolTest, UnknownEnumValuesRejected) {
  // Request type 0 and 0x77 are outside the verb set.
  for (uint8_t type : {uint8_t{0}, uint8_t{0x77}}) {
    Bytes payload = {type, 0};
    auto decoded = DecodeRequest(payload);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }

  // Unknown wire status code.
  BinaryWriter bad_code;
  bad_code.WriteU8(static_cast<uint8_t>(RequestType::kClose));
  bad_code.WriteU8(200);
  bad_code.WriteString("x");
  auto code_rt = DecodeResponse(bad_code.TakeBuffer());
  ASSERT_FALSE(code_rt.ok());
  EXPECT_EQ(code_rt.status().code(), StatusCode::kInvalidArgument);

  // Unknown session state in a STATS body.
  BinaryWriter bad_state;
  bad_state.WriteU8(static_cast<uint8_t>(RequestType::kStats));
  bad_state.WriteU8(0);
  bad_state.WriteString("");
  bad_state.WriteU8(9);  // No such SessionState.
  auto state_rt = DecodeResponse(bad_state.TakeBuffer());
  ASSERT_FALSE(state_rt.ok());
  EXPECT_EQ(state_rt.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, ElementCountBeyondFrameIsCorruption) {
  // A READ body claiming millions of elements in a near-empty frame
  // must be rejected before any allocation is sized from it.
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(RequestType::kRead));
  writer.WriteU8(0);
  writer.WriteString("");
  writer.WriteU8(0);        // end_of_stream
  writer.WriteU32(1);       // stride
  writer.WriteVarU64(1u << 24);  // element count, but no elements follow
  auto decoded = DecodeResponse(writer.TakeBuffer());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Loopback transport (non-blocking readiness interface)

TEST(LoopbackTransportTest, FramesRoundTrip) {
  auto [a, b] = CreateLoopbackPair();
  Bytes payload = ElementPayload(5);
  ASSERT_TRUE(WriteFrame(*a, payload).ok());
  auto received = ReadFrame(*b);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, payload);

  // Empty frames are legal.
  ASSERT_TRUE(WriteFrame(*b, {}).ok());
  auto empty = ReadFrame(*a);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(LoopbackTransportTest, OversizedLengthPrefixRejected) {
  auto [a, b] = CreateLoopbackPair();
  uint8_t prefix[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_TRUE(BlockingSend(*a, ByteSpan(prefix, 4),
                           std::chrono::milliseconds(1000))
                  .ok());
  auto frame = ReadFrame(*b, /*max_frame=*/1 << 20);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
}

TEST(LoopbackTransportTest, WriteSomeReportsWouldBlockWhenFull) {
  LoopbackOptions options;
  options.buffer_bytes = 64;
  auto [a, b] = CreateLoopbackPair(options);
  Bytes big(1024, 0x5A);

  // The buffer takes the first 64 bytes, then would-block (0).
  auto first = a->WriteSome(big);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 64u);
  auto blocked = a->WriteSome(ByteSpan(big.data() + 64, big.size() - 64));
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(*blocked, 0u);
  EXPECT_EQ(a->Poll() & kTransportWritable, 0u);

  // A bounded blocking send on the clogged pipe gives up with
  // ResourceExhausted rather than hanging.
  Status timed_out =
      BlockingSend(*a, big, std::chrono::milliseconds(30));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), StatusCode::kResourceExhausted);

  // Draining the consumer side restores writability and wakes the
  // waker.
  std::atomic<int> wakes{0};
  a->SetWaker([&] { wakes.fetch_add(1); });
  Bytes sink(64);
  auto drained = b->ReadSome(sink.data(), sink.size());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*drained, 64u);
  EXPECT_NE(a->Poll() & kTransportWritable, 0u);
  EXPECT_GT(wakes.load(), 0);
}

TEST(LoopbackTransportTest, ReadSomeReportsWouldBlockWhenEmpty) {
  auto [a, b] = CreateLoopbackPair();
  uint8_t byte;
  auto empty = b->ReadSome(&byte, 1);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0u);
  EXPECT_EQ(b->Poll() & kTransportReadable, 0u);

  std::atomic<int> wakes{0};
  b->SetWaker([&] { wakes.fetch_add(1); });
  Bytes data = {9};
  ASSERT_TRUE(BlockingSend(*a, data, std::chrono::milliseconds(100)).ok());
  EXPECT_NE(b->Poll() & kTransportReadable, 0u);
  EXPECT_GT(wakes.load(), 0);
  auto got = b->ReadSome(&byte, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1u);
  EXPECT_EQ(byte, 9);
}

TEST(LoopbackTransportTest, CloseUnblocksRecvAndFailsSend) {
  auto [a, b] = CreateLoopbackPair();
  std::atomic<bool> failed{false};
  std::thread receiver([&] {
    uint8_t byte;
    Status status =
        BlockingRecv(*b, &byte, 1, std::chrono::milliseconds(5000));
    failed.store(!status.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  a->Close();
  receiver.join();
  EXPECT_TRUE(failed.load());
  Bytes data = {1, 2, 3};
  EXPECT_EQ(
      BlockingSend(*a, data, std::chrono::milliseconds(100)).code(),
      StatusCode::kIOError);
  EXPECT_NE(a->Poll() & kTransportClosed, 0u);
}

// ---------------------------------------------------------------------------
// Session state machine (driven directly, no server)

TEST(ServeSessionTest, StridedSessionSkipsAndFinishesDegraded) {
  auto db = BuildServeDb();
  auto interp_id = db->FindByName("clip_interp");
  ASSERT_TRUE(interp_id.ok());
  auto entry = db->Get(*interp_id);
  ASSERT_TRUE(entry.ok());

  Session::Config config;
  config.stride = 4;
  auto session = Session::Create(1, "clip", db->blob_store(),
                                 (*entry)->interpretation, "clip", config);
  ASSERT_TRUE(session.ok()) << session.status().message();
  EXPECT_EQ((*session)->state(), SessionState::kAdmitted);
  EXPECT_TRUE((*session)->degraded());

  std::vector<uint64_t> numbers;
  for (;;) {
    auto batch = (*session)->ReadNext(64);
    ASSERT_TRUE(batch.ok()) << batch.status().message();
    for (const WireElement& element : batch->elements) {
      numbers.push_back(element.element_number);
      EXPECT_EQ(element.payload,
                ElementPayload(static_cast<int>(element.element_number)));
    }
    if (batch->end_of_stream) break;
  }
  EXPECT_EQ(numbers, (std::vector<uint64_t>{0, 4, 8, 12, 16, 20, 24, 28}));
  EXPECT_EQ((*session)->state(), SessionState::kDegraded);

  // Terminal sessions refuse further reads and seeks.
  EXPECT_EQ((*session)->ReadNext(1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->SeekTo(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServeSessionTest, SeekOutOfRangeAndEviction) {
  auto db = BuildServeDb();
  auto entry = db->Get(*db->FindByName("clip_interp"));
  ASSERT_TRUE(entry.ok());
  Session::Config config;
  auto session = Session::Create(2, "clip", db->blob_store(),
                                 (*entry)->interpretation, "clip", config);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->SeekTo(kElements).status().code(),
            StatusCode::kOutOfRange);
  auto position = (*session)->SeekTo(30);
  ASSERT_TRUE(position.ok());
  EXPECT_EQ(*position, 30u);
  (*session)->MarkEvicted();
  EXPECT_EQ((*session)->state(), SessionState::kEvicted);
  EXPECT_EQ((*session)->ReadNext(1).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Server end-to-end over loopback

TEST(MediaServerTest, StreamsWholeObjectAndFinishesDone) {
  auto db = BuildServeDb();
  MediaServer server(db.get());
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());

  MediaClient client(std::move(client_end));
  auto open = client.Open("clip");
  ASSERT_TRUE(open.ok()) << open.status().message();
  EXPECT_EQ(open->element_count, static_cast<uint64_t>(kElements));
  EXPECT_EQ(open->payload_bytes,
            static_cast<uint64_t>(kElements) * kElementBytes);
  EXPECT_EQ(open->stride, 1u);
  EXPECT_GT(open->booked_bytes_per_second, 0.0);

  std::vector<uint64_t> numbers;
  bool end_of_stream = false;
  while (!end_of_stream) {
    auto batch = client.Read(8);
    ASSERT_TRUE(batch.ok()) << batch.status().message();
    for (const WireElement& element : batch->elements) {
      EXPECT_EQ(element.payload,
                ElementPayload(static_cast<int>(element.element_number)));
      numbers.push_back(element.element_number);
    }
    end_of_stream = batch->end_of_stream;
  }
  ASSERT_EQ(numbers.size(), static_cast<size_t>(kElements));
  for (int i = 0; i < kElements; ++i) {
    EXPECT_EQ(numbers[static_cast<size_t>(i)], static_cast<uint64_t>(i));
  }

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->state, SessionState::kDone);
  EXPECT_EQ(stats->elements_delivered, static_cast<uint64_t>(kElements));
  EXPECT_EQ(stats->elements_skipped, 0u);
  EXPECT_TRUE(client.Close().ok());

  server.Stop();
  ServerStatsSnapshot snapshot = server.stats();
  EXPECT_EQ(snapshot.sessions_admitted, 1u);
  EXPECT_EQ(snapshot.sessions_denied, 0u);
  EXPECT_EQ(snapshot.sessions_evicted, 0u);
}

TEST(MediaServerTest, SeekResumesFromTarget) {
  auto db = BuildServeDb();
  MediaServer server(db.get());
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  MediaClient client(std::move(client_end));
  ASSERT_TRUE(client.Open("clip").ok());
  auto first = client.Read(4);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->elements.size(), 4u);

  auto position = client.Seek(30);
  ASSERT_TRUE(position.ok());
  EXPECT_EQ(*position, 30u);
  auto tail = client.Read(8);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->elements.size(), 2u);
  EXPECT_EQ(tail->elements[0].element_number, 30u);
  EXPECT_EQ(tail->elements[1].element_number, 31u);
  EXPECT_TRUE(tail->end_of_stream);
  EXPECT_TRUE(client.Close().ok());
}

TEST(MediaServerTest, ErrorsAreWireStatusesNotDisconnects) {
  // Driven entirely over raw v1 frames: this is the compat surface a
  // pre-multiplexing client speaks, mapped to the implicit stream 0.
  auto db = BuildServeDb();
  MediaServer server(db.get());
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());

  // READ before OPEN.
  Request read;
  read.type = RequestType::kRead;
  read.max_elements = 1;
  auto early = RawRoundTrip(*client_end, read);
  ASSERT_TRUE(early.ok()) << early.status().message();
  EXPECT_EQ(early->status.code(), StatusCode::kFailedPrecondition);

  // OPEN of a name that is not in the catalog.
  Request missing;
  missing.type = RequestType::kOpen;
  missing.object_name = "nope";
  auto not_found = RawRoundTrip(*client_end, missing);
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found->status.code(), StatusCode::kNotFound);

  // A malformed payload inside a well-formed frame draws an error
  // response and leaves the connection usable.
  Bytes garbage = {0x01, 0xDE, 0xAD};
  ASSERT_TRUE(WriteFrame(*client_end, garbage).ok());
  auto raw = ReadFrame(*client_end, kMaxFrameBytes);
  ASSERT_TRUE(raw.ok());
  auto frame = DecodeFrameBody(*raw);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeResponse(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->status.ok());

  // The connection still works: a real OPEN succeeds.
  Request open;
  open.type = RequestType::kOpen;
  open.object_name = "clip";
  auto opened = RawRoundTrip(*client_end, open);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  ASSERT_TRUE(opened->status.ok()) << opened->status.message();
  uint64_t session_id = opened->open.session_id;

  // A second OPEN on the same (v1, single-stream) connection is
  // refused with the PR 5 wording.
  auto second = RawRoundTrip(*client_end, open);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(second->status.message().find("already has a session"),
            std::string::npos);

  // A request addressing a different session id is refused.
  Request mismatch;
  mismatch.type = RequestType::kRead;
  mismatch.session_id = session_id + 99;
  mismatch.max_elements = 1;
  auto refused = RawRoundTrip(*client_end, mismatch);
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status.code(), StatusCode::kInvalidArgument);

  Request close;
  close.type = RequestType::kClose;
  close.session_id = session_id;
  auto closed = RawRoundTrip(*client_end, close);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->status.ok());
}

TEST(MediaServerTest, AdmissionDegradesBeforeDenying) {
  auto db = BuildServeDb();
  ServeConfig config;
  // The clip's average rate is 10 000 bytes/s. 26 000 admits two at
  // full fidelity, a third only at stride 2 (5 000), and nothing more
  // even at the deepest tier.
  config.capacity_bytes_per_second = 26000;
  config.max_stride = 8;
  MediaServer server(db.get(), config);

  std::vector<std::unique_ptr<MediaClient>> clients;
  std::vector<uint32_t> strides;
  bool denied = false;
  for (int i = 0; i < 4; ++i) {
    auto [client_end, server_end] = CreateLoopbackPair();
    ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
    auto client = std::make_unique<MediaClient>(std::move(client_end));
    auto open = client->Open("clip");
    if (open.ok()) {
      // Every admission so far must precede the first denial: degrade
      // comes before deny.
      EXPECT_FALSE(denied);
      strides.push_back(open->stride);
      clients.push_back(std::move(client));
    } else {
      EXPECT_EQ(open.status().code(), StatusCode::kResourceExhausted);
      denied = true;
    }
  }
  EXPECT_EQ(strides, (std::vector<uint32_t>{1, 1, 2}));
  EXPECT_TRUE(denied);

  ServerStatsSnapshot snapshot = server.stats();
  EXPECT_EQ(snapshot.sessions_admitted, 3u);
  EXPECT_EQ(snapshot.sessions_degraded, 1u);
  EXPECT_EQ(snapshot.sessions_denied, 1u);

  // Capacity released by a CLOSE readmits at full fidelity.
  ASSERT_TRUE(clients[0]->Close().ok());
  auto [client_end, server_end] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
  MediaClient fresh(std::move(client_end));
  auto reopened = fresh.Open("clip");
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened->stride, 1u);
  EXPECT_TRUE(fresh.Close().ok());
}

TEST(MediaServerTest, SlowClientIsEvicted) {
  auto db = BuildServeDb();
  ServeConfig config;
  config.stall_timeout = std::chrono::milliseconds(100);
  MediaServer server(db.get(), config);
  LoopbackOptions options;
  options.buffer_bytes = 128;  // Smaller than one element payload.
  auto [client_end, server_end] = CreateLoopbackPair(options);
  ASSERT_TRUE(server.Serve(std::move(server_end)).ok());

  Request open;
  open.type = RequestType::kOpen;
  open.object_name = "clip";
  auto opened = RawRoundTrip(*client_end, open);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened->status.ok()) << opened->status.message();

  // Ask for a batch far larger than the transport buffer and never
  // drain it: the server's writes stall past the timeout and the
  // connection is torn down, evicting the stream.
  Request request;
  request.type = RequestType::kRead;
  request.session_id = opened->open.session_id;
  request.max_elements = 16;
  ASSERT_TRUE(WriteFrame(*client_end, EncodeRequest(request)).ok());

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().sessions_evicted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().sessions_evicted, 1u);

  // The server hung up; once the buffered bytes drain, reads fail.
  Bytes sink(1u << 16);
  Status gone = Status::OK();
  while (gone.ok()) {
    gone = BlockingRecv(*client_end, sink.data(), sink.size(),
                        std::chrono::milliseconds(1000));
  }
  EXPECT_FALSE(gone.ok());
}

TEST(MediaServerTest, ConnectionTableCapacityIsEnforced) {
  auto db = BuildServeDb();
  ServeConfig config;
  config.max_sessions = 2;  // max_connections defaults to this too.
  MediaServer server(db.get(), config);
  auto [c1, s1] = CreateLoopbackPair();
  auto [c2, s2] = CreateLoopbackPair();
  auto [c3, s3] = CreateLoopbackPair();
  ASSERT_TRUE(server.Serve(std::move(s1)).ok());
  ASSERT_TRUE(server.Serve(std::move(s2)).ok());
  Status full = server.Serve(std::move(s3));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Concurrency under injected faults

TEST(MediaServerConcurrencyTest, SixteenSessionsWithFaultsAllComplete) {
  auto db = BuildServeDb(/*read_fault_rate=*/0.05);
  ServeConfig config;
  config.capacity_bytes_per_second = 8.0 * 1024 * 1024;
  config.worker_threads = 4;
  config.io_threads = 2;
  config.read_options.policy.max_retries = 4;
  config.read_options.policy.backoff_initial_us = 50.0;
  MediaServer server(db.get(), config);

  constexpr int kSessions = 16;
  std::vector<std::thread> threads;
  std::vector<SessionState> final_states(kSessions, SessionState::kOpen);
  // Not vector<bool>: each thread writes its own slot, and the packed
  // bits of vector<bool> would make those writes share bytes.
  std::vector<char> payloads_ok(kSessions, 0);
  std::atomic<int> failures{0};

  for (int i = 0; i < kSessions; ++i) {
    auto [client_end, server_end] = CreateLoopbackPair();
    ASSERT_TRUE(server.Serve(std::move(server_end)).ok());
    threads.emplace_back([&, i, endpoint = std::move(client_end)]() mutable {
      MediaClient client(std::move(endpoint));
      auto open = client.Open("clip");
      if (!open.ok()) {
        failures.fetch_add(1);
        return;
      }
      bool all_payloads_ok = true;
      bool end_of_stream = false;
      for (int rounds = 0; !end_of_stream && rounds < 256; ++rounds) {
        auto batch = client.Read(8);
        if (!batch.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (const WireElement& element : batch->elements) {
          if (element.payload !=
              ElementPayload(static_cast<int>(element.element_number))) {
            all_payloads_ok = false;
          }
        }
        end_of_stream = batch->end_of_stream;
      }
      auto stats = client.Stats();
      if (!stats.ok()) {
        failures.fetch_add(1);
        return;
      }
      final_states[static_cast<size_t>(i)] = stats->state;
      payloads_ok[static_cast<size_t>(i)] = all_payloads_ok;
      (void)client.Close();
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kSessions; ++i) {
    SessionState state = final_states[static_cast<size_t>(i)];
    EXPECT_TRUE(state == SessionState::kDone ||
                state == SessionState::kDegraded)
        << "session " << i << " ended " << SessionStateToString(state);
    EXPECT_TRUE(payloads_ok[static_cast<size_t>(i)]) << "session " << i;
  }
  ServerStatsSnapshot snapshot = server.stats();
  EXPECT_EQ(snapshot.sessions_admitted, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(snapshot.sessions_evicted, 0u);
  EXPECT_EQ(snapshot.active_sessions, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace tbm

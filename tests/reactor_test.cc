// Unit tests for serve::Reactor — the readiness loop under the media
// server. Everything here runs on the in-process loopback (fd() < 0),
// so the waker → pipe path is what gets exercised; the epoll/poll
// kernel path is covered end to end by the TCP transport tests and
// the server suites. These tests pin the loop's contract: handlers
// run on the loop thread only, timers fire in deadline order, close
// reports readable, and Stop is idempotent.
#include "serve/reactor.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/bytes.h"
#include "serve/transport.h"

namespace tbm::serve {
namespace {

// Spins until `done` returns true or five seconds elapse.
bool WaitUntil(const std::function<bool()>& done) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// Records readiness callbacks; the drain lambda decides what a
// readable event does (typically: drain the transport so the
// level-triggered loop quiesces).
class RecordingHandler : public Reactor::Handler {
 public:
  std::function<void()> on_readable;
  std::function<void()> on_writable;
  std::atomic<int> readable_calls{0};
  std::atomic<int> writable_calls{0};

  void OnReadable() override {
    readable_calls.fetch_add(1);
    if (on_readable) on_readable();
  }
  void OnWritable() override {
    writable_calls.fetch_add(1);
    if (on_writable) on_writable();
  }
};

TEST(ReactorTest, PostRunsOnLoopThread) {
  Reactor reactor;
  std::atomic<bool> ran{false};
  std::atomic<bool> in_loop{false};
  reactor.Post([&] {
    in_loop.store(reactor.InLoop());
    ran.store(true);
  });
  ASSERT_TRUE(WaitUntil([&] { return ran.load(); }));
  EXPECT_TRUE(in_loop.load());
  EXPECT_FALSE(reactor.InLoop());  // The test thread is not the loop.
  reactor.Stop();
}

TEST(ReactorTest, PostFromManyThreadsAllRun) {
  Reactor reactor;
  constexpr int kThreads = 8;
  constexpr int kPostsPerThread = 100;
  std::atomic<int> ran{0};
  std::vector<std::thread> posters;
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPostsPerThread; ++i) {
        reactor.Post([&] { ran.fetch_add(1); });
      }
    });
  }
  for (std::thread& poster : posters) poster.join();
  ASSERT_TRUE(WaitUntil([&] { return ran.load() == kThreads * kPostsPerThread; }));
  reactor.Stop();
}

TEST(ReactorTest, TimersFireInDeadlineOrderNotSubmissionOrder) {
  Reactor reactor;
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> fired{0};
  auto note = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
    fired.fetch_add(1);
  };
  auto start = std::chrono::steady_clock::now();
  reactor.PostDelayed(std::chrono::milliseconds(60), [&] { note(3); });
  reactor.PostDelayed(std::chrono::milliseconds(10), [&] { note(1); });
  reactor.PostDelayed(std::chrono::milliseconds(30), [&] { note(2); });
  ASSERT_TRUE(WaitUntil([&] { return fired.load() == 3; }));
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(60));  // Delay is a floor.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  reactor.Stop();
}

TEST(ReactorTest, LoopbackWakerDrivesReadableDispatch) {
  auto [client_end, server_end] = CreateLoopbackPair();
  RecordingHandler handler;
  Bytes received;
  std::mutex received_mu;
  Reactor reactor;
  Transport* server_transport = server_end.get();
  handler.on_readable = [&] {
    uint8_t buffer[64];
    for (;;) {
      auto n = server_transport->ReadSome(buffer, sizeof(buffer));
      if (!n.ok() || *n == 0) break;
      std::lock_guard<std::mutex> lock(received_mu);
      received.insert(received.end(), buffer, buffer + *n);
    }
  };
  reactor.Register(server_transport, &handler, kTransportReadable);

  Bytes sent = {1, 2, 3, 4, 5};
  ASSERT_TRUE(BlockingSend(*client_end, sent, std::chrono::seconds(1)).ok());
  ASSERT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(received_mu);
    return received.size() == sent.size();
  }));
  std::lock_guard<std::mutex> lock(received_mu);
  EXPECT_EQ(received, sent);
  reactor.Stop();
}

TEST(ReactorTest, UpdateInterestEnablesWritableCallbacks) {
  auto [client_end, server_end] = CreateLoopbackPair();
  RecordingHandler handler;
  Reactor reactor;
  std::atomic<uint64_t> registration{0};
  // Once writable fires, drop back to read-only interest so the
  // level-triggered loop does not spin on the always-writable buffer.
  handler.on_writable = [&] {
    reactor.UpdateInterest(registration.load(), kTransportReadable);
  };
  registration.store(
      reactor.Register(server_end.get(), &handler, kTransportReadable));
  EXPECT_EQ(handler.writable_calls.load(), 0);
  reactor.Post([&] {
    reactor.UpdateInterest(registration.load(),
                           kTransportReadable | kTransportWritable);
  });
  ASSERT_TRUE(WaitUntil([&] { return handler.writable_calls.load() > 0; }));
  reactor.Stop();
}

TEST(ReactorTest, PeerCloseReportsReadableSoHandlerSeesEof) {
  auto [client_end, server_end] = CreateLoopbackPair();
  RecordingHandler handler;
  std::atomic<bool> saw_eof{false};
  Transport* server_transport = server_end.get();
  handler.on_readable = [&] {
    uint8_t buffer[8];
    auto n = server_transport->ReadSome(buffer, sizeof(buffer));
    if (!n.ok()) saw_eof.store(true);
  };
  Reactor reactor;
  reactor.Register(server_transport, &handler, kTransportReadable);
  client_end->Close();
  ASSERT_TRUE(WaitUntil([&] { return saw_eof.load(); }));
  reactor.Stop();
}

TEST(ReactorTest, StopIsIdempotentAndDiscardsPendingTimers) {
  std::atomic<bool> fired{false};
  {
    Reactor reactor;
    reactor.PostDelayed(std::chrono::hours(1), [&] { fired.store(true); });
    reactor.Stop();
    reactor.Stop();  // Second Stop must be a no-op, not a crash.
  }
  EXPECT_FALSE(fired.load());
}

TEST(ReactorTest, BackendNamesTheCompiledPath) {
  const char* backend = Reactor::backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_TRUE(std::string(backend) == "epoll" ||
              std::string(backend) == "poll");
}

}  // namespace
}  // namespace tbm::serve

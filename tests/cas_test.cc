#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>

#include "base/bytes.h"
#include "base/sha256.h"
#include "blob/cas_store.h"

namespace tbm {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 0) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>((i * 31 + seed) & 0xFF);
  }
  return data;
}

std::string Scratch(const char* tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "/cas_" + tag + "_" +
                    std::to_string(static_cast<long>(::getpid())) + "_" +
                    std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

ByteSpan Span(const char* s) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(s), std::strlen(s));
}

// ---------------------------------------------------------------------------
// SHA-256 against FIPS 180-4 / NIST test vectors.

TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(Sha256::Hash(ByteSpan()).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::Hash(Span("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::Hash(
                Span("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnop"
                     "q"))
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(hasher.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = Pattern(100'000, 3);
  // Split at awkward boundaries (block size is 64).
  for (size_t split : {1ul, 63ul, 64ul, 65ul, 4096ul, 99'999ul}) {
    Sha256 hasher;
    hasher.Update(ByteSpan(data.data(), split));
    hasher.Update(ByteSpan(data.data() + split, data.size() - split));
    EXPECT_EQ(hasher.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, DigestHexRoundTrip) {
  Sha256Digest digest = Sha256::Hash(Span("abc"));
  Sha256Digest parsed;
  ASSERT_TRUE(Sha256Digest::FromHex(digest.ToHex(), &parsed));
  EXPECT_EQ(parsed, digest);
  EXPECT_FALSE(Sha256Digest::FromHex("xyz", &parsed));
  EXPECT_FALSE(Sha256Digest::FromHex("abcd", &parsed));
}

// ---------------------------------------------------------------------------
// Content-addressed store.

class CasStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = Scratch("store");
    auto store = CasBlobStore::Open(root_);
    ASSERT_TRUE(store.ok()) << store.status();
    store_ = std::move(*store);
  }

  std::string root_;
  std::unique_ptr<CasBlobStore> store_;
};

TEST_F(CasStoreTest, PushPullRoundTrip) {
  Bytes data = Pattern(10'000, 1);
  auto id = store_->PushAll(data);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*store_->Size(*id), 10'000u);
  EXPECT_EQ(*store_->ReadAll(*id), data);
  EXPECT_EQ(*store_->HashOf(*id), Sha256::Hash(data));
  EXPECT_EQ(*store_->LookupHash(Sha256::Hash(data)), *id);
}

TEST_F(CasStoreTest, StreamingPushMatchesOneShot) {
  Bytes data = Pattern(50'000, 2);
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok()) << push.status();
  size_t offset = 0;
  for (size_t chunk : {1ul, 63ul, 4096ul, 45'840ul}) {
    ASSERT_TRUE((*push)->Push(ByteSpan(data.data() + offset, chunk)).ok());
    offset += chunk;
  }
  ASSERT_EQ(offset, data.size());
  EXPECT_EQ((*push)->bytes_pushed(), data.size());
  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*store_->ReadAll(*id), data);
  // The identical content pushed in one shot dedups to the same id.
  EXPECT_EQ(*store_->PushAll(data), *id);
}

TEST_F(CasStoreTest, DedupReturnsSameIdAndCountsRefs) {
  Bytes data = Pattern(5000, 3);
  auto a = store_->PushAll(data);
  auto b = store_->PushAll(data);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*store_->RefCount(*a), 2u);

  CasStoreStats stats = store_->Stats();
  EXPECT_EQ(stats.blob_count, 1u);
  EXPECT_EQ(stats.stored_bytes, 5000u);
  EXPECT_EQ(stats.logical_bytes, 10'000u);
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_DOUBLE_EQ(stats.dedup_ratio(), 2.0);

  // Distinct content gets a distinct id.
  auto c = store_->PushAll(Pattern(5000, 4));
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*c, *a);
}

TEST_F(CasStoreTest, DeleteDropsOneReference) {
  Bytes data = Pattern(1000, 5);
  auto a = store_->PushAll(data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(store_->PushAll(data).ok());  // refcount -> 2
  ASSERT_TRUE(store_->Delete(*a).ok());     // refcount -> 1
  EXPECT_TRUE(store_->Exists(*a));
  EXPECT_EQ(*store_->ReadAll(*a), data);
  ASSERT_TRUE(store_->Delete(*a).ok());  // refcount -> 0: reclaimed
  EXPECT_FALSE(store_->Exists(*a));
  EXPECT_TRUE(store_->Delete(*a).IsNotFound());
}

TEST_F(CasStoreTest, EmptyBlob) {
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok());
  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*store_->Size(*id), 0u);
  auto read = store_->Read(*id, ByteRange{0, 0});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST_F(CasStoreTest, PushHandleStateMachine) {
  auto push = store_->StartPush();
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE((*push)->Push(Pattern(10)).ok());
  auto id = (*push)->Finish();
  ASSERT_TRUE(id.ok());
  // Finished handle rejects everything further.
  EXPECT_TRUE((*push)->Push(Pattern(1)).IsFailedPrecondition());
  EXPECT_TRUE((*push)->Finish().status().IsFailedPrecondition());
  EXPECT_TRUE((*push)->Abort().ok());  // No-op after finish.

  // Aborted push leaves no trace and burns no id.
  size_t blobs_before = store_->List().size();
  auto aborted = store_->StartPush();
  ASSERT_TRUE(aborted.ok());
  ASSERT_TRUE((*aborted)->Push(Pattern(100, 9)).ok());
  EXPECT_TRUE((*aborted)->Abort().ok());
  EXPECT_TRUE((*aborted)->Finish().status().IsFailedPrecondition());
  EXPECT_EQ(store_->List().size(), blobs_before);

  // A dropped handle aborts implicitly.
  {
    auto dropped = store_->StartPush();
    ASSERT_TRUE(dropped.ok());
    ASSERT_TRUE((*dropped)->Push(Pattern(50, 8)).ok());
  }
  EXPECT_EQ(store_->List().size(), blobs_before);
  // tmp/ staging is empty again.
  size_t staged = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(root_ + "/tmp")) {
    ++staged;
  }
  EXPECT_EQ(staged, 0u);
}

TEST_F(CasStoreTest, ListIsAscending) {
  std::vector<BlobId> ids;
  for (int i = 0; i < 10; ++i) {
    auto id = store_->PushAll(Pattern(100, static_cast<uint8_t>(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(store_->Delete(ids[3]).ok());
  ids.erase(ids.begin() + 3);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(store_->List(), ids);
}

TEST_F(CasStoreTest, LedgerSurvivesReopen) {
  Bytes shared = Pattern(4000, 1);
  BlobId shared_id, solo_id;
  {
    auto id = store_->PushAll(shared);
    ASSERT_TRUE(id.ok());
    shared_id = *id;
    ASSERT_TRUE(store_->PushAll(shared).ok());  // refcount 2
    auto solo = store_->PushAll(Pattern(123, 2));
    ASSERT_TRUE(solo.ok());
    solo_id = *solo;
    store_.reset();  // Close (journal flushed per record anyway).
  }
  auto reopened = CasBlobStore::Open(root_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(*(*reopened)->ReadAll(shared_id), shared);
  EXPECT_EQ(*(*reopened)->RefCount(shared_id), 2u);
  EXPECT_EQ(*(*reopened)->ReadAll(solo_id), Pattern(123, 2));
  // Dedup state survives: pushing the shared bytes again hits the
  // recovered ledger entry.
  EXPECT_EQ(*(*reopened)->PushAll(shared), shared_id);
  EXPECT_EQ(*(*reopened)->RefCount(shared_id), 3u);
  // New ids don't collide with recovered ones.
  auto fresh = (*reopened)->PushAll(Pattern(55, 9));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, solo_id);
}

TEST_F(CasStoreTest, SlicesSurviveDeleteAndStoreDestruction) {
  Bytes data = Pattern(8192, 6);
  auto id = store_->PushAll(data);
  ASSERT_TRUE(id.ok());
  auto slice = store_->Read(*id, ByteRange{100, 500});
  ASSERT_TRUE(slice.ok());
  ASSERT_TRUE(store_->Delete(*id).ok());  // Unlinks the shard file.
  EXPECT_EQ(*slice, Bytes(data.begin() + 100, data.begin() + 600));
  store_.reset();  // Even the store may go away under a live slice.
  EXPECT_EQ(*slice, Bytes(data.begin() + 100, data.begin() + 600));
}

TEST_F(CasStoreTest, ReadsAreZeroCopyViewsOfOneMapping) {
  auto id = store_->PushAll(Pattern(4096, 7));
  ASSERT_TRUE(id.ok());
  auto a = store_->Read(*id, ByteRange{0, 1000});
  auto b = store_->Read(*id, ByteRange{2000, 1000});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->SharesBufferWith(*b));
}

TEST_F(CasStoreTest, OutOfRangeAndNotFound) {
  auto id = store_->PushAll(Pattern(100));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store_->Read(*id, ByteRange{50, 51}).status().IsOutOfRange());
  EXPECT_TRUE(store_->Read(999, ByteRange{0, 1}).status().IsNotFound());
  EXPECT_TRUE(store_->Size(999).status().IsNotFound());
  EXPECT_TRUE(store_->HashOf(999).status().IsNotFound());
  EXPECT_TRUE(store_->RefCount(999).status().IsNotFound());
  EXPECT_TRUE(
      store_->LookupHash(Sha256::Hash(Pattern(1))).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Mark-and-sweep GC.

TEST_F(CasStoreTest, SweepReclaimsDeadKeepsLive) {
  auto live = store_->PushAll(Pattern(1000, 1));
  auto dead1 = store_->PushAll(Pattern(2000, 2));
  auto dead2 = store_->PushAll(Pattern(3000, 3));
  ASSERT_TRUE(live.ok() && dead1.ok() && dead2.ok());

  auto stats = store_->Sweep({*live});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->scanned, 3u);
  EXPECT_EQ(stats->swept, 2u);
  EXPECT_EQ(stats->reclaimed_bytes, 5000u);
  EXPECT_EQ(stats->pinned, 0u);

  EXPECT_TRUE(store_->Exists(*live));
  EXPECT_FALSE(store_->Exists(*dead1));
  EXPECT_FALSE(store_->Exists(*dead2));
  EXPECT_EQ(*store_->ReadAll(*live), Pattern(1000, 1));

  // Re-pushing swept content works (fresh id — the old one is gone).
  auto again = store_->PushAll(Pattern(2000, 2));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*store_->ReadAll(*again), Pattern(2000, 2));
}

TEST_F(CasStoreTest, SweepSurvivesReopen) {
  auto live = store_->PushAll(Pattern(100, 1));
  auto dead = store_->PushAll(Pattern(200, 2));
  ASSERT_TRUE(live.ok() && dead.ok());
  ASSERT_TRUE(store_->Sweep({*live}).ok());
  store_.reset();
  auto reopened = CasBlobStore::Open(root_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->Exists(*live));
  EXPECT_FALSE((*reopened)->Exists(*dead));
}

// Concurrent pushes, pulls and sweeps (in the CI TSan filter): the
// store's full-synchronization contract. The live set handed to the
// sweeper protects a fixed group of blobs; those must stay readable
// with intact bytes throughout, while churn pushes and sweeps hammer
// the rest of the store.
TEST_F(CasStoreTest, ConcurrentPushPullSweep) {
  constexpr int kPushers = 4;
  constexpr int kReaders = 2;
  constexpr int kRounds = 50;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};

  // Blobs the GC must never touch.
  std::vector<Bytes> live_data;
  std::vector<BlobId> live_ids;
  for (uint8_t i = 0; i < 4; ++i) {
    live_data.push_back(Pattern(4096, static_cast<uint8_t>(100 + i)));
    auto id = store_->PushAll(live_data.back());
    ASSERT_TRUE(id.ok());
    live_ids.push_back(*id);
  }

  // Churn content shared by all pushers, so pushes dedup against each
  // other and race the sweeper on the same hashes (exercising the
  // condemned-pin path in FinishPush).
  std::vector<Bytes> pool;
  for (uint8_t i = 0; i < 8; ++i) pool.push_back(Pattern(2048, i));

  std::vector<std::thread> threads;
  for (int t = 0; t < kPushers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        // A push must always succeed, even when the sweeper is
        // condemning its hash mid-flight. (The blob it lands is
        // unreferenced and may be collected right after — that is the
        // GC working as intended, so readability is not asserted.)
        if (!store_->PushAll(pool[static_cast<size_t>((t + i) % 8)]).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        for (size_t i = 0; i < live_ids.size(); ++i) {
          auto read = store_->ReadAll(live_ids[i]);
          if (!read.ok() || !(*read == live_data[i])) failures.fetch_add(1);
        }
      }
    });
  }
  std::thread sweeper([&] {
    while (!stop.load()) {
      auto stats = store_->Sweep(live_ids);
      if (!stats.ok()) failures.fetch_add(1);
    }
  });

  for (int t = 0; t < kPushers; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true);
  for (size_t t = kPushers; t < threads.size(); ++t) threads[t].join();
  sweeper.join();
  EXPECT_EQ(failures.load(), 0u);

  // The live blobs survived every sweep with their bytes intact.
  for (size_t i = 0; i < live_ids.size(); ++i) {
    EXPECT_EQ(*store_->ReadAll(live_ids[i]), live_data[i]);
  }
}

TEST_F(CasStoreTest, RacingPushNeverLosesBytes) {
  // A dedup push racing a sweep that condemns the same hash must pin
  // it: whatever id the push returns, the content behind it is either
  // fully readable or — if a *later* sweep collected the unreferenced
  // blob — cleanly absent. Never a live id with a missing or corrupt
  // file. Many rounds so the interleavings actually overlap.
  for (int round = 0; round < 50; ++round) {
    Bytes data = Pattern(4096, static_cast<uint8_t>(round));
    ASSERT_TRUE(store_->PushAll(data).ok());

    std::thread sweeper([&] {
      auto stats = store_->Sweep({});
      ASSERT_TRUE(stats.ok()) << stats.status();
    });
    auto second = store_->PushAll(data);
    sweeper.join();

    ASSERT_TRUE(second.ok()) << second.status();
    auto read = store_->ReadAll(*second);
    if (read.ok()) {
      ASSERT_EQ(*read, data) << "round " << round;
    } else {
      // The sweep ran after the push finished and collected the
      // unreferenced blob — allowed, but it must look fully deleted.
      ASSERT_TRUE(read.status().IsNotFound())
          << "round " << round << ": " << read.status();
      EXPECT_FALSE(store_->Exists(*second));
    }
    ASSERT_TRUE(store_->Sweep({}).ok());  // Clean slate for next round.
  }
}

}  // namespace
}  // namespace tbm

#include <gtest/gtest.h>

#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "compose/multimedia.h"
#include "compose/timeline.h"

namespace tbm {
namespace {

// ---------------------------------------------------------------------------
// Allen interval relations

struct RelationCase {
  TimeInterval a;
  TimeInterval b;
  IntervalRelation expected;
};

class RelationTest : public ::testing::TestWithParam<RelationCase> {};

TEST_P(RelationTest, Classifies) {
  const RelationCase& c = GetParam();
  Result<IntervalRelation> relation = Classify(c.a, c.b);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  EXPECT_EQ(*relation, c.expected) << IntervalRelationToString(*relation);
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, RelationTest,
    ::testing::Values(
        RelationCase{{0, 2}, {3, 5}, IntervalRelation::kBefore},
        RelationCase{{3, 5}, {0, 2}, IntervalRelation::kAfter},
        RelationCase{{0, 3}, {3, 5}, IntervalRelation::kMeets},
        RelationCase{{3, 5}, {0, 3}, IntervalRelation::kMetBy},
        RelationCase{{0, 4}, {2, 6}, IntervalRelation::kOverlaps},
        RelationCase{{2, 6}, {0, 4}, IntervalRelation::kOverlappedBy},
        RelationCase{{0, 2}, {0, 5}, IntervalRelation::kStarts},
        RelationCase{{0, 5}, {0, 2}, IntervalRelation::kStartedBy},
        RelationCase{{1, 3}, {0, 5}, IntervalRelation::kDuring},
        RelationCase{{0, 5}, {1, 3}, IntervalRelation::kContains},
        RelationCase{{3, 5}, {0, 5}, IntervalRelation::kFinishes},
        RelationCase{{0, 5}, {3, 5}, IntervalRelation::kFinishedBy},
        RelationCase{{1, 4}, {1, 4}, IntervalRelation::kEquals}));

TEST(RelationTest, ExactRationalBoundaries) {
  // 1/3 + 1/6 = 1/2 exactly: "meets", not "overlaps".
  TimeInterval a{Rational(0), Rational(1, 3) + Rational(1, 6)};
  TimeInterval b{Rational(1, 2), Rational(1)};
  Result<IntervalRelation> relation = Classify(a, b);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  EXPECT_EQ(*relation, IntervalRelation::kMeets);
}

TEST(RelationTest, RejectsEmptyAndInvalidIntervals) {
  TimeInterval proper{Rational(0), Rational(2)};
  TimeInterval empty{Rational(1), Rational(1)};
  TimeInterval backwards{Rational(3), Rational(1)};
  EXPECT_EQ(Classify(empty, proper).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Classify(proper, empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Classify(backwards, proper).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// MultimediaObject

VideoValue TestVideo(int64_t frames, uint32_t scene = 3) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(48, 32, frames, scene);
  return video;
}

TEST(MultimediaTest, AddComponentValidation) {
  DerivationGraph graph;
  NodeId audio = graph.AddLeaf(audiogen::Sine(8000, 1, 440, 0.5, 1.0), "a");
  MultimediaObject mm("m", &graph);
  EXPECT_TRUE(mm.AddComponent("c1", audio, Rational(0)).ok());
  EXPECT_TRUE(mm.AddComponent("c1", audio, Rational(1)).IsAlreadyExists());
  EXPECT_TRUE(mm.AddComponent("c2", audio, Rational(-1)).IsInvalidArgument());
  EXPECT_TRUE(mm.AddComponent("c3", 99, Rational(0)).IsNotFound());
}

TEST(MultimediaTest, TimelineAndDuration) {
  DerivationGraph graph;
  NodeId music = graph.AddLeaf(audiogen::Sine(8000, 1, 440, 0.5, 10.0),
                               "music");
  NodeId narration =
      graph.AddLeaf(audiogen::Narration(8000, 1, 5.0, 3), "narration");
  NodeId video = graph.AddLeaf(TestVideo(100), "video");  // 4 seconds.

  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", music, Rational(0)).ok());
  ASSERT_TRUE(mm.AddComponent("c2", narration, Rational(2)).ok());
  ASSERT_TRUE(mm.AddComponent("c3", video, Rational(1)).ok());

  auto timeline = mm.Timeline();
  ASSERT_TRUE(timeline.ok());
  ASSERT_EQ(timeline->size(), 3u);
  EXPECT_EQ((*timeline)[0].interval.start, Rational(0));
  EXPECT_EQ((*timeline)[0].interval.end, Rational(10));
  EXPECT_EQ((*timeline)[1].interval.start, Rational(2));
  EXPECT_EQ((*timeline)[2].kind, MediaKind::kVideo);
  EXPECT_EQ(*mm.Duration(), Rational(10));
}

TEST(MultimediaTest, RelationBetweenComponents) {
  DerivationGraph graph;
  NodeId a = graph.AddLeaf(audiogen::Sine(8000, 1, 440, 0.5, 4.0), "a");
  NodeId b = graph.AddLeaf(audiogen::Sine(8000, 1, 880, 0.5, 2.0), "b");
  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", a, Rational(0)).ok());
  ASSERT_TRUE(mm.AddComponent("c2", b, Rational(1)).ok());
  auto relation = mm.RelationBetween("c2", "c1");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(*relation, IntervalRelation::kDuring);
  EXPECT_TRUE(mm.RelationBetween("c1", "zz").status().IsNotFound());
}

TEST(MultimediaTest, AsciiTimelineShowsRows) {
  DerivationGraph graph;
  NodeId a = graph.AddLeaf(audiogen::Sine(8000, 1, 440, 0.5, 2.0), "audio1");
  NodeId v = graph.AddLeaf(TestVideo(50), "video3");
  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", a, Rational(0)).ok());
  ASSERT_TRUE(mm.AddComponent("c2", v, Rational(1)).ok());
  auto ascii = mm.RenderTimelineAscii(32);
  ASSERT_TRUE(ascii.ok());
  EXPECT_NE(ascii->find("audio1"), std::string::npos);
  EXPECT_NE(ascii->find("video3"), std::string::npos);
  EXPECT_NE(ascii->find('#'), std::string::npos);
}

TEST(MultimediaTest, MixAudioAtOffsets) {
  DerivationGraph graph;
  // 1 s tone at t=0, another at t=2; total 3 s.
  NodeId a = graph.AddLeaf(audiogen::Sine(8000, 1, 440, 0.4, 1.0), "a");
  NodeId b = graph.AddLeaf(audiogen::Sine(8000, 1, 880, 0.4, 1.0), "b");
  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", a, Rational(0)).ok());
  ASSERT_TRUE(mm.AddComponent("c2", b, Rational(2)).ok());
  auto mix = mm.MixAudio(8000, 1);
  ASSERT_TRUE(mix.ok());
  EXPECT_EQ(mix->FrameCount(), 3 * 8000);
  // The gap [1 s, 2 s) is silent.
  int64_t gap_peak = 0;
  for (int64_t f = 8400; f < 15600; ++f) {
    gap_peak = std::max<int64_t>(gap_peak, std::abs(mix->samples[f]));
  }
  EXPECT_EQ(gap_peak, 0);
  // Both tones are present.
  int64_t head_peak = 0, tail_peak = 0;
  for (int64_t f = 0; f < 8000; ++f) {
    head_peak = std::max<int64_t>(head_peak, std::abs(mix->samples[f]));
  }
  for (int64_t f = 16000; f < 24000; ++f) {
    tail_peak = std::max<int64_t>(tail_peak, std::abs(mix->samples[f]));
  }
  EXPECT_GT(head_peak, 10000);
  EXPECT_GT(tail_peak, 10000);
}

TEST(MultimediaTest, EmptyTimelineRenders) {
  DerivationGraph graph;
  MultimediaObject mm("empty", &graph);
  auto ascii = mm.RenderTimelineAscii();
  ASSERT_TRUE(ascii.ok());
  EXPECT_NE(ascii->find("empty timeline"), std::string::npos);
  EXPECT_EQ(*mm.Duration(), Rational(0));
  EXPECT_TRUE(mm.Timeline()->empty());
}

TEST(MultimediaTest, MixRejectsFormatMismatch) {
  DerivationGraph graph;
  NodeId a = graph.AddLeaf(audiogen::Sine(44100, 2, 440, 0.4, 1.0), "a");
  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", a, Rational(0)).ok());
  EXPECT_TRUE(mm.MixAudio(8000, 1).status().IsInvalidArgument());
}

TEST(MultimediaTest, SpatialCompositionLayers) {
  DerivationGraph graph;
  // Two stills placed at different positions and layers.
  Image red = Image::Zero(20, 20, ColorModel::kRgb24);
  Bytes red_px(red.data.size(), 0);
  for (size_t i = 0; i < red_px.size(); i += 3) red_px[i] = 255;
  red.data = std::move(red_px);
  Image blue = Image::Zero(20, 20, ColorModel::kRgb24);
  Bytes blue_px(blue.data.size(), 0);
  for (size_t i = 2; i < blue_px.size(); i += 3) blue_px[i] = 255;
  blue.data = std::move(blue_px);
  NodeId red_node = graph.AddLeaf(red, "red");
  NodeId blue_node = graph.AddLeaf(blue, "blue");
  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", red_node, Rational(0),
                              SpatialPlacement{0, 0, 0})
                  .ok());
  ASSERT_TRUE(mm.AddComponent("c2", blue_node, Rational(0),
                              SpatialPlacement{10, 10, 1})
                  .ok());
  auto frame = mm.RenderFrameAt(0.0, 40, 40);
  ASSERT_TRUE(frame.ok());
  auto pixel = [&](int x, int y) {
    return frame->data.data() + 3 * (static_cast<size_t>(y) * 40 + x);
  };
  EXPECT_EQ(pixel(5, 5)[0], 255);   // Red only.
  EXPECT_EQ(pixel(15, 15)[2], 255); // Overlap: blue wins (higher layer).
  EXPECT_EQ(pixel(15, 15)[0], 0);
  EXPECT_EQ(pixel(35, 35)[0], 0);   // Background.
}

TEST(MultimediaTest, VideoComponentSelectsFrameByTime) {
  DerivationGraph graph;
  NodeId video = graph.AddLeaf(TestVideo(50, 77), "v");  // 2 s at 25 fps.
  MultimediaObject mm("m", &graph);
  ASSERT_TRUE(mm.AddComponent("c1", video, Rational(1)).ok());
  // Before the component starts: black canvas.
  auto before = mm.RenderFrameAt(0.5, 48, 32);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*std::max_element(before->data.begin(), before->data.end()), 0);
  // At t = 2.0 s the component is 1 s in: frame 25.
  auto during = mm.RenderFrameAt(2.0, 48, 32);
  ASSERT_TRUE(during.ok());
  auto evaluated = graph.Evaluate(video);
  ASSERT_TRUE(evaluated.ok());
  const VideoValue& vv = std::get<VideoValue>(**evaluated);
  EXPECT_EQ(during->data, vv.frames[25].data);
  // After the end: black again.
  auto after = mm.RenderFrameAt(5.0, 48, 32);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*std::max_element(after->data.begin(), after->data.end()), 0);
}

}  // namespace
}  // namespace tbm
